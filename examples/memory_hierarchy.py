#!/usr/bin/env python3
"""Characterizing the memory hierarchy with generated kernels (section 5.1).

Reproduces the Figs. 11/12 methodology: one (Load|Store)+ input file
expands into 510 variants; measuring each at every hierarchy level and
taking per-unroll-group minima maps out the machine's latency bands —
and comparing ``movss`` against ``movaps`` shows where vectorized moves
win (everywhere, per byte) and what they cost (more bandwidth in RAM).

Also demonstrates the DVFS experiment (Fig. 13): core-domain levels move
in TSC units when the core slows down, uncore levels do not.

Run:  python examples/memory_hierarchy.py
"""

from repro.creator import MicroCreator
from repro.kernels import loadstore_family
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import MemLevel, nehalem_2s_x5650

LEVELS = (MemLevel.L1, MemLevel.L2, MemLevel.L3, MemLevel.RAM)


def hierarchy_map(launcher, machine, opcode: str) -> dict[int, dict[str, float]]:
    creator = MicroCreator()
    variants = creator.generate(loadstore_family(opcode))
    print(f"{opcode}: generated {len(variants)} variants from one description")
    table: dict[int, dict[str, float]] = {}
    for level in LEVELS:
        options = LauncherOptions(
            array_bytes=machine.footprint_for(level), trip_count=1 << 14,
            experiments=4, repetitions=8,
        )
        for variant in variants:
            if len(set(variant.mix)) != 1:
                continue  # plot pure-direction groups, as the paper does
            m = launcher.run(variant, options)
            row = table.setdefault(variant.unroll, {})
            value = m.cycles_per_memory_instruction
            if level.label not in row or value < row[level.label]:
                row[level.label] = value
    return table


def print_table(table: dict[int, dict[str, float]]) -> None:
    print(f"{'unroll':>6s} " + " ".join(f"{lvl.label:>7s}" for lvl in LEVELS))
    for unroll in sorted(table):
        row = table[unroll]
        print(f"{unroll:6d} " + " ".join(f"{row[lvl.label]:7.2f}" for lvl in LEVELS))
    print()


def frequency_study(launcher, machine) -> None:
    print("== DVFS study (Fig. 13): movaps 8-load kernel, TSC cycles/load ==")
    creator = MicroCreator()
    kernel = next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )
    print(f"{'GHz':>5s} " + " ".join(f"{lvl.label:>7s}" for lvl in LEVELS))
    for freq in machine.freq_steps:
        cells = []
        for level in LEVELS:
            options = LauncherOptions(
                array_bytes=machine.footprint_for(level),
                trip_count=1 << 14,
                frequency_ghz=freq,
                experiments=3,
                repetitions=8,
            )
            m = launcher.run(kernel, options)
            cells.append(f"{m.cycles_per_memory_instruction:7.2f}")
        print(f"{freq:5.2f} " + " ".join(cells))
    print("-> L1/L2 columns swell as the core slows (core clock domain);")
    print("   L3/RAM stay flat (uncore domain) — rdtsc counts wall time.\n")


def main() -> None:
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    print(f"machine: {machine.name}\n")

    print("== Fig. 11: cycles per movaps (16-byte) move ==")
    movaps = hierarchy_map(launcher, machine, "movaps")
    print_table(movaps)

    print("== Fig. 12: cycles per movss (4-byte) move ==")
    movss = hierarchy_map(launcher, machine, "movss")
    print_table(movss)

    # The paper's closing comparison: four movss equal one movaps of work.
    movaps_l3 = movaps[8]["L3"]
    movss_l3 = movss[8]["L3"]
    print(
        f"at unroll 8 from L3: movss = {movss_l3:.2f} c/move, movaps = "
        f"{movaps_l3:.2f} c/move; per byte the vector move costs "
        f"{movaps_l3 / 16:.3f} vs {movss_l3 / 4:.3f} — vectorized wins.\n"
    )

    frequency_study(launcher, machine)


if __name__ == "__main__":
    main()
