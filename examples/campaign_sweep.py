#!/usr/bin/env python3
"""Campaign sweep: a declarative grid, run in parallel, cached on disk.

The campaign engine replaces hand-written measurement loops:

1. one ``SweepSpec`` describes kernels x option axes (here the movaps
   unroll family swept over four memory footprints and three trip
   counts — variants stream lazily from the kernel description),
2. ``run_campaign`` expands it into content-hashed jobs, answers what
   it can from the cache, and schedules the rest on worker processes,
3. results come back in deterministic grid order — byte-identical no
   matter how many workers ran them,
4. a second run is pure cache hits: zero jobs execute.

Run:  python examples/campaign_sweep.py
"""

import tempfile
from pathlib import Path

from repro.engine import Campaign, SweepSpec, run_campaign
from repro.launcher import LauncherOptions
from repro.machine import MemLevel, nehalem_2s_x5650
from repro.spec import load_kernel

machine = nehalem_2s_x5650()
footprints = [machine.footprint_for(level) for level in
              (MemLevel.L1, MemLevel.L2, MemLevel.L3, MemLevel.RAM)]

campaign = Campaign(
    name="movaps_footprint_grid",
    machine=machine,
    description="movaps unroll family x memory level x trip count",
    sweeps=(
        SweepSpec(
            spec=load_kernel("movaps"),  # 8 unroll variants, streamed
            base=LauncherOptions(experiments=2, repetitions=4),
            axes={
                "array_bytes": tuple(footprints),
                "trip_count": (512, 2048, 8192),
            },
        ),
    ),
)

with tempfile.TemporaryDirectory() as cache_dir:
    print("— cold run (4 workers) —")
    run = run_campaign(campaign, jobs=4, cache_dir=cache_dir, progress=print)

    print()
    print(f"{run.stats.total_jobs} jobs, {run.stats.executed} executed, "
          f"{run.stats.cache_hits} cache hits")
    print(f"cache file: {Path(cache_dir) / 'results.jsonl'}")

    # Group rows by an axis without re-deriving the grid:
    print()
    print("best cycles/iteration per footprint:")
    for array_bytes, rows in sorted(run.grouped("array_bytes").items()):
        job, m = min(rows, key=lambda jm: jm[1].cycles_per_iteration)
        print(f"  {array_bytes:>9} B  {m.cycles_per_iteration:6.3f}  "
              f"({job.kernel_name}, trip={job.tags['trip_count']})")

    print()
    print("— warm run (same cache) —")
    warm = run_campaign(campaign, jobs=4, cache_dir=cache_dir, progress=print)
    assert warm.stats.executed == 0, "warm run must be pure cache hits"
    assert warm.measurements() == run.measurements()
    print(f"re-run executed {warm.stats.executed} jobs "
          f"({warm.stats.cache_hits} cache hits) — results identical")
