#!/usr/bin/env python3
"""The paper's motivation study (section 2): tuning a naive matmul.

Walks the exact narrative of the paper:

1. **Size study** (Fig. 3): sweep the matrix size, find where the kernel
   falls out of the cache — "500 is one of the cutting points".
2. **Alignment study** (Fig. 4): at the in-cache size 200, try per-matrix
   alignments — the choice does not matter (< 3 %).
3. **Unroll study** (Fig. 5): sweep compiler-hint unroll factors on the
   real (compiled) code AND on the MicroCreator-abstracted microbenchmark;
   the microbenchmark's predicted gain matches the real one.

Run:  python examples/matmul_tuning.py
"""

from repro.creator import MicroCreator
from repro.kernels.matmul import (
    matmul_kernel,
    matmul_microbench_spec,
    measure_matmul,
    microbench_bindings,
)
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import nehalem_2s_x5650


def size_study(launcher) -> None:
    print("== 1. size study (Fig. 3) ==")
    print(f"{'n':>8s} {'cycles/iter':>12s}")
    for n in (50, 100, 200, 400, 500, 600, 1000, 4000, 8000, 20000):
        m = measure_matmul(launcher, n)
        print(f"{n:8d} {m.cycles_per_element:12.2f}")
    print("-> performance steps up right after n = 500: the column stream's")
    print("   line footprint (64 n bytes) no longer fits L1.  Tile there.\n")


def alignment_study(launcher) -> None:
    print("== 2. alignment study at 200 x 200 (Fig. 4) ==")
    values = []
    for alignments in ((0, 0, 0), (64, 0, 512), (16, 1024, 64), (512, 512, 512)):
        m = measure_matmul(launcher, 200, alignments=alignments)
        values.append(m.cycles_per_element)
        print(f"alignments={alignments!s:18s} cycles/iter={m.cycles_per_element:.3f}")
    spread = (max(values) - min(values)) / min(values)
    print(f"-> spread {spread * 100:.2f} % — below 3 %, alignment does not matter")
    print("   for the in-cache size (it would for streaming kernels).\n")


def unroll_study(launcher, machine) -> None:
    print("== 3. unroll study (Fig. 5): compiled code vs microbenchmark ==")
    creator = MicroCreator()
    micro = {
        k.unroll: k for k in creator.generate(matmul_microbench_spec(200))
    }
    options = LauncherOptions(trip_count=200)
    print(f"{'unroll':>6s} {'compiled':>10s} {'microbench':>11s}")
    compiled_values, micro_values = {}, {}
    for unroll in range(1, 9):
        compiled = measure_matmul(launcher, 200, unroll=unroll)
        predicted = launcher.run_with_bindings(
            micro[unroll], microbench_bindings(200, machine), options
        )
        compiled_values[unroll] = compiled.cycles_per_element
        micro_values[unroll] = predicted.cycles_per_element
        print(
            f"{unroll:6d} {compiled.cycles_per_element:10.3f} "
            f"{predicted.cycles_per_element:11.3f}"
        )
    gain_c = 1 - compiled_values[8] / compiled_values[1]
    gain_m = 1 - micro_values[8] / micro_values[1]
    print(f"-> compiled gain {gain_c * 100:.1f} %, microbenchmark predicted "
          f"{gain_m * 100:.1f} % — the prediction matches the real behaviour,")
    print("   so the programmer can trust the microbenchmark sweep to pick")
    print("   the unroll factor (the paper saw 9 % vs 8.2 %).")


def main() -> None:
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    print(f"machine: {machine.name}\n")
    from repro.kernels.matmul import FIG1_SOURCE

    print("the kernel under study, as the paper's Fig. 1 C source:")
    print(FIG1_SOURCE.strip(), "\n")
    print("and its gcc-style lowering (the front-end parses that C text;")
    print("compare the paper's Fig. 2):")
    print(matmul_kernel(200, 1).asm_text())
    size_study(launcher)
    alignment_study(launcher)
    unroll_study(launcher, machine)


if __name__ == "__main__":
    main()
