#!/usr/bin/env python3
"""Parallel execution studies (paper section 5.2).

Three experiments:

1. **Fork saturation** (Fig. 14): the same RAM-streaming kernel forked
   onto 1..12 pinned cores of the dual-socket Nehalem — per-iteration
   latency is flat until six cores (three streams saturate one socket's
   channels), then climbs linearly.
2. **Multi-core alignment** (Figs. 15/16): a 4-array movss traversal on
   the quad-socket machine, alignment-swept at 8 and at 32 active cores —
   saturation widens the alignment band dramatically.
3. **OpenMP vs sequential** (Figs. 17/18, Table 2): unroll sweeps of a
   movss load kernel on the Sandy Bridge box; the sequential version
   rewards unrolling, the 4-thread OpenMP version is bandwidth-bound and
   flat.

Run:  python examples/parallel_scaling.py
"""

from repro.creator import MicroCreator
from repro.kernels import loadstore_family, multi_array_traversal
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import (
    MemLevel,
    nehalem_2s_x5650,
    nehalem_4s_x7550,
    sandy_bridge_e31240,
)


def fork_study() -> None:
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernel = next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        experiments=3,
        repetitions=8,
    )
    print(f"== Fig. 14: fork saturation on {machine.name} ==")
    print(f"{'cores':>5s} {'cycles/iter':>12s}")
    for n in range(1, machine.total_cores + 1):
        result = launcher.run_forked(kernel, options.with_(n_cores=n))
        bar = "#" * int(result.mean_cycles_per_iteration / 3)
        print(f"{n:5d} {result.mean_cycles_per_iteration:12.2f}  {bar}")
    print("-> knee at 6 cores: 2 sockets x (30 GB/s socket / 10 GB/s stream)\n")


def alignment_study() -> None:
    machine = nehalem_4s_x7550()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernel = creator.generate(multi_array_traversal(4, "movss", unroll=(6, 6)))[0]
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        alignment_min=0,
        alignment_max=1024,
        alignment_step=128,
        max_alignment_configs=2500,
        experiments=3,
        repetitions=8,
    )
    print(f"== Figs. 15/16: alignment sweeps on {machine.name} ==")
    for label, active in (("8 cores (2/socket)", 2), ("32 cores (8/socket)", 8)):
        sweep = launcher.run_alignment_sweep(
            kernel, options, active_cores_on_socket=active
        )
        values = [m.cycles_per_iteration for m in sweep]
        print(
            f"{label}: {len(values)} configs, "
            f"{min(values):.1f} -> {max(values):.1f} cycles/iter "
            f"(spread {(max(values) - min(values)) / min(values) * 100:.0f} %)"
        )
    print("-> under saturation, conflict misses also waste bandwidth, so the")
    print("   32-core band is both higher and wider.\n")


def openmp_study() -> None:
    machine = sandy_bridge_e31240()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernels = sorted(
        (k for k in creator.generate(loadstore_family("movss"))
         if set(k.mix) == {"L"}),
        key=lambda k: k.unroll,
    )
    print(f"== Figs. 17/18 + Table 2: OpenMP vs sequential on {machine.name} ==")
    for label, n_elements in (("128k elements", 128 * 1024), ("6M elements", 6_000_000)):
        options = LauncherOptions(
            array_bytes=n_elements * 4,
            trip_count=n_elements,
            omp_threads=machine.cores_per_socket,
            experiments=10,
            repetitions=2,
        )
        print(f"-- {label} --")
        print(f"{'unroll':>6s} {'seq c/elem':>11s} {'omp c/elem':>11s} {'speedup':>8s}")
        for kernel in kernels:
            seq = launcher.run(kernel, options)
            omp = launcher.run_openmp(kernel, options)
            speedup = seq.cycles_per_element / omp.measurement.cycles_per_element
            print(
                f"{kernel.unroll:6d} {seq.cycles_per_element:11.3f} "
                f"{omp.measurement.cycles_per_element:11.3f} {speedup:8.2f}"
            )
    print("-> sequential improves with unrolling then flattens; OpenMP is")
    print("   flat (bandwidth roofline) and the cache-resident size enjoys")
    print("   the better parallel speedup, exactly as the paper reports.")


def main() -> None:
    fork_study()
    alignment_study()
    openmp_study()


if __name__ == "__main__":
    main()
