#!/usr/bin/env python3
"""The MicroCreator plugin system (paper section 3.3).

Plugins are modules exposing ``pluginInit(pass_manager)``; through the
fully exposed pass-manager API they may add, remove, or replace passes and
redefine any pass's gate — without touching the tool.  This demo:

1. adds a **statistics pass** that reports the variant population as it
   flows by,
2. re-gates the default-off **scheduling pass** on (interleaving induction
   updates into the unrolled body),
3. replaces the **peephole pass** with one that also strips ``xorps``
   zeroing idioms,

then generates and prints a kernel to show all three effects.

Run:  python examples/plugin_demo.py
"""

from repro.creator import CreatorOptions, MicroCreator
from repro.creator.pass_manager import Pass
from repro.creator.passes.finalize import PeepholePass
from repro.spec import load_kernel


class StatisticsPass(Pass):
    """Reports how many variants each upstream stage produced."""

    name = "statistics"

    def run(self, variants, ctx):
        unrolls = sorted({v.unroll for v in variants if v.unroll})
        print(
            f"[statistics] {len(variants)} variants in flight "
            f"(unroll factors {unrolls})"
        )
        return list(variants)


class ZeroingAwarePeephole(PeepholePass):
    """The stock peephole, extended to drop xorps zeroing idioms too."""

    name = "peephole"

    @staticmethod
    def _is_noop(instr):
        if PeepholePass._is_noop(instr):
            return True
        return instr.opcode == "xorps" and len(set(instr.operands)) == 1


# --- the plugin ------------------------------------------------------------


def pluginInit(pm):
    """The entry point MicroCreator calls (the paper's required name)."""
    pm.insert_pass_before("code_generation", StatisticsPass())
    pm.set_gate("scheduling", lambda ctx: True)
    pm.replace_pass("peephole", ZeroingAwarePeephole())


def main() -> None:
    import sys

    this_module = sys.modules[__name__]
    creator = MicroCreator(
        CreatorOptions(schedule=True),  # scheduling consults this knob too
        plugins=[this_module],
    )
    print("pipeline passes after plugin initialization:")
    for name in creator.pass_manager.pass_names:
        print(f"  {name}")
    print()

    kernels = creator.generate(load_kernel("movaps", unroll=(6, 6)))
    print(f"\ngenerated {len(kernels)} kernel(s); unroll-6 body with the")
    print("scheduling pass interleaving the induction updates:\n")
    print(kernels[0].asm_text())


if __name__ == "__main__":
    main()
