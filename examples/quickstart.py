#!/usr/bin/env python3
"""Quickstart: describe a kernel, generate its variants, measure them.

The complete MicroTools loop in one file:

1. a kernel description (the paper's Fig. 6 XML, written inline),
2. MicroCreator expands it into variants (here: unroll factors 1..8),
3. MicroLauncher measures each on the simulated dual-socket Nehalem,
4. the results print as cycles/iteration — lower is better.

Run:  python examples/quickstart.py
"""

from repro.creator import MicroCreator
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import MemLevel, nehalem_2s_x5650

KERNEL_XML = """
<kernel name="quickstart">
  <instruction>
    <operation>movaps</operation>
    <memory>
      <register><name>r1</name></register>
      <offset>0</offset>
    </memory>
    <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
  </instruction>
  <unrolling><min>1</min><max>8</max></unrolling>
  <induction>
    <register><name>r1</name></register>
    <increment>16</increment>
    <offset>16</offset>
  </induction>
  <induction>
    <register><name>r0</name></register>
    <increment>-1</increment>
    <linked><register><name>r1</name></register></linked>
    <last_induction/>
  </induction>
  <induction>
    <register><phyName>%eax</phyName></register>
    <increment>1</increment>
    <not_affected_unroll/>
  </induction>
  <branch_information><label>L6</label><test>jge</test></branch_information>
</kernel>
"""


def main() -> None:
    machine = nehalem_2s_x5650()
    creator = MicroCreator()
    launcher = MicroLauncher(machine)

    kernels = creator.generate_from_xml(KERNEL_XML)
    print(f"MicroCreator generated {len(kernels)} variants on {machine.name}\n")

    print("generated assembly for the unroll-3 variant:")
    print(kernels[2].asm_text())

    # Measure every variant with the array sized for the L2 cache.
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L2),
        trip_count=1 << 14,
    )
    print(f"{'variant':24s} {'unroll':>6s} {'cycles/iter':>12s} {'cycles/load':>12s}")
    best = None
    for kernel in kernels:
        m = launcher.run(kernel, options)
        print(
            f"{kernel.name:24s} {kernel.unroll:6d} "
            f"{m.cycles_per_iteration:12.3f} {m.cycles_per_memory_instruction:12.3f}"
        )
        if best is None or m.cycles_per_memory_instruction < best[1]:
            best = (kernel, m.cycles_per_memory_instruction)

    kernel, per_load = best
    print(f"\nbest variant: {kernel.name} at {per_load:.3f} cycles per load")


if __name__ == "__main__":
    main()
