#!/usr/bin/env python3
"""The automated analysis workflow (paper section 7, future work).

The paper's conclusion sketches a closed loop: "applications drive
MicroCreator's generated code to test variations around the application's
hotspots ... data-mining techniques allow to process the MicroTools data
generated in order to automate the analysis."  This example runs that
loop end to end on the reproduction's extensions:

1. **Hotspot**: a compiled-looking loop arrives as plain assembly text
   (imagine it extracted from a profiler + disassembler).
2. **Abstraction**: `abstract_program` lifts it back into a MicroCreator
   kernel description — logical registers, re-opened unroll range, the
   load/store swap family around the original shape.
3. **Generation + auto-tune**: the family is generated, measured, and the
   variance attributed to the generation knobs.
4. **Energy**: the best and original variants are compared under DVFS
   (the conclusion's "power utilization" claim).

Run:  python examples/hotspot_workflow.py
"""

from repro.analysis.autotune import tune
from repro.creator import MicroCreator, abstract_program
from repro.isa.parser import parse_asm
from repro.launcher import LauncherOptions, MicroLauncher
from repro.launcher.kernel_input import as_sim_kernel
from repro.machine import (
    ArrayBinding,
    MemLevel,
    energy_frequency_sweep,
    nehalem_2s_x5650,
)

#: The "profiled hotspot": a twice-unrolled streaming load loop, as a
#: compiler might have emitted it.
HOTSPOT = """
.L4:
movaps (%rsi), %xmm0
movaps 16(%rsi), %xmm1
add $1, %eax
add $32, %rsi
sub $8, %rdi
jge .L4
"""


def main() -> None:
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    program = parse_asm(HOTSPOT, name="hotspot")

    print("== 1. the hotspot as profiled ==")
    print(HOTSPOT.strip(), "\n")

    print("== 2. abstraction back to a kernel description ==")
    spec = abstract_program(program, unroll=(1, 8), swap_after_unroll=True)
    from repro.spec import write_kernel_spec

    print(write_kernel_spec(spec))

    print("== 3. generation + auto-tune around the hotspot ==")
    family = MicroCreator().generate(spec)
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L1),
        trip_count=1 << 14,
        experiments=3,
        repetitions=8,
    )
    result = tune(
        family, launcher, options, objective="cycles_per_memory_instruction"
    )
    print(result.report())
    original = launcher.run(program, options)
    print(
        f"\noriginal hotspot: {original.cycles_per_memory_instruction:.3f} "
        f"cycles/move -> best variant "
        f"{result.best_value:.3f} ({original.cycles_per_memory_instruction / result.best_value:.2f}x)\n"
    )

    print("== 4. energy under DVFS (best variant, L1 vs RAM residence) ==")
    _, body = result.best.program.kernel_loop()
    from repro.machine import analyze_kernel

    analysis = analyze_kernel(body)
    print(f"{'GHz':>5s} {'L1 nJ/iter':>11s} {'RAM nJ/iter':>12s}")
    sweeps = {}
    for level in (MemLevel.L1, MemLevel.RAM):
        bindings = {"%rsi": ArrayBinding("%rsi", machine.footprint_for(level))}
        sweeps[level] = energy_frequency_sweep(analysis, bindings, machine)
    for freq in machine.freq_steps:
        print(
            f"{freq:5.2f} {sweeps[MemLevel.L1][freq].total_nj:11.2f} "
            f"{sweeps[MemLevel.RAM][freq].total_nj:12.2f}"
        )
    l1 = sweeps[MemLevel.L1]
    ram = sweeps[MemLevel.RAM]
    print(
        "-> lowering the frequency saves "
        f"{(1 - ram[machine.freq_steps[0]].total_nj / ram[machine.freq_ghz].total_nj) * 100:+.1f} % "
        "energy on the RAM-bound variant vs "
        f"{(1 - l1[machine.freq_steps[0]].total_nj / l1[machine.freq_ghz].total_nj) * 100:+.1f} % "
        "on the L1-bound one: DVFS pays where the uncore sets the pace."
    )


if __name__ == "__main__":
    main()
