#!/usr/bin/env python3
"""Characterize the simulated ISA and close the round-trip loop.

The uops.info workflow, against the analytic machine model:

1. auto-generate probe kernels for every opcode the ISA models —
   serial chains for latency, independent streams for throughput,
   blocking mixes for port attribution,
2. sweep them through the campaign engine (parallel, cached,
   adaptive-stopping) and solve the measurements into an instruction
   table,
3. derive a machine-config overlay from the table and verify that the
   derived config re-predicts every probe within the RCIW target,
4. diff the table against the modelled semantics — empty here, because
   the machine under test *is* the model.

Run:  python examples/characterize_isa.py
"""

from repro.characterize import (
    derive_machine_config,
    run_characterization,
    table_drift,
    verify_table,
)
from repro.machine import nehalem_2s_x5650

machine = nehalem_2s_x5650()

print(f"== probing {machine.name}")
result = run_characterization(machine)
table = result.table
probed = table.probed_entries()
print(
    f"   {result.run.stats.total_jobs} probe jobs -> "
    f"{len(probed)} of {len(table.entries)} opcodes characterized"
)

print("\n== a few solved entries")
for opcode in ("add", "imul", "addps", "mulps", "mov"):
    e = table.entries[opcode]
    lat = e.latency_cycles if e.latency_cycles is not None else "-"
    print(
        f"   {opcode:8s} latency={lat:>2}  slots={e.slots}  "
        f"rtp={e.reciprocal_throughput:.3f}  port={e.port_class}"
    )
print(f"   branch_cost (measured intercept) = {table.branch_cost:.3f}")

print("\n== deriving a machine-config overlay")
derived, overlay = derive_machine_config(table, machine)
print(f"   {machine.name} -> {derived.name}")
print(f"   overlay fields: {sorted(overlay)}")

print("\n== round-trip verification")
report = verify_table(table, machine)
print(
    f"   {report.n_checked} probes re-predicted, "
    f"max relative error {report.max_rel_err:.4f} "
    f"(tolerance {report.tolerance})"
)
assert report.ok, report.render()

drift = table_drift(table, machine)
assert not drift, drift
print("   no drift: the table matches the modelled semantics")
