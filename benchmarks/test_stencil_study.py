"""Benchmark: stencil modeling, compiled vs abstracted (section 3.5 use).

Run with ``pytest benchmarks/test_stencil_study.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_stencil_study(benchmark, regenerate):
    result = regenerate(benchmark, "stencil_study")
    assert result.notes
