"""Benchmark: regenerate Fig. 3: matmul cycles/iteration vs matrix size.

Run with ``pytest benchmarks/test_fig03_matmul_sizes.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig03_matmul_sizes(benchmark, regenerate):
    result = regenerate(benchmark, "fig03")
    # cycles climb the hierarchy with size
    assert result.notes["monotone_overall"]
