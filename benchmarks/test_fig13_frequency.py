"""Benchmark: regenerate Fig. 13: DVFS sweep, core vs uncore domains.

Run with ``pytest benchmarks/test_fig13_frequency.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig13_frequency(benchmark, regenerate):
    result = regenerate(benchmark, "fig13")
    # L1/L2 timings move with frequency
    assert result.notes["core_levels_vary"]
    # L3/RAM timings do not
    assert result.notes["uncore_levels_flat"]
