"""Benchmark: cache-heating ablation.

Run with ``pytest benchmarks/test_ablation_warmup.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_warmup(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_warmup")
    assert result.notes
