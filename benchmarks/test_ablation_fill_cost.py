"""Benchmark: line-fill occupancy ablation.

Run with ``pytest benchmarks/test_ablation_fill_cost.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_fill_cost(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_fill_cost")
    assert result.notes
