"""Benchmark: MPI-model weak scaling (future-work extension).

Run with ``pytest benchmarks/test_ext_mpi.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ext_mpi(benchmark, regenerate):
    result = regenerate(benchmark, "ext_mpi")
    assert result.notes
