#!/usr/bin/env python
"""Gate CI on measurement-throughput regressions.

Compares a fresh ``BENCH_measurement.json`` (written by
``benchmarks/test_measurement_throughput.py``) against the committed
baseline and fails when throughput dropped by more than the allowed
factor.  Machine-to-machine variance is why the gate is 2x, not a few
percent: the benchmark is single-threaded pure Python + numpy, so a
genuine regression (losing the vectorized path, breaking the stream
cache) shows up as 10x-50x, far outside the noise band.

Usage::

    python benchmarks/check_regression.py \
        --current BENCH_measurement.json \
        --baseline benchmarks/BENCH_measurement_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MAX_REGRESSION = 2.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default="BENCH_measurement.json")
    parser.add_argument(
        "--baseline", default="benchmarks/BENCH_measurement_baseline.json"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=MAX_REGRESSION,
        help="fail when baseline/current throughput exceeds this (default: 2.0)",
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    now = current["configs_per_second"]
    then = baseline["configs_per_second"]
    ratio = then / now if now else float("inf")
    print(
        f"throughput: {now:,.0f} configs/s (baseline {then:,.0f}); "
        f"slowdown {ratio:.2f}x (limit {args.max_regression:.1f}x)"
    )
    if ratio > args.max_regression:
        print(
            f"FAIL: measurement throughput regressed {ratio:.2f}x "
            f"vs the committed baseline",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
