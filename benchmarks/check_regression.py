#!/usr/bin/env python
"""Gate CI on benchmark regressions.

Compares a fresh ``BENCH_measurement.json`` (written by
``benchmarks/test_measurement_throughput.py``) against the committed
baseline and fails when throughput dropped by more than the allowed
factor.  Machine-to-machine variance is why the gate is 2x, not a few
percent: the benchmark is single-threaded pure Python + numpy, so a
genuine regression (losing the vectorized path, breaking the stream
cache) shows up as 10x-50x, far outside the noise band.

When ``BENCH_obs.json`` (written by ``benchmarks/test_obs_overhead.py``)
is present it is gated too: the observability layer's *disabled* span
must stay sub-microsecond per call — losing the no-op fast path would
tax every instrumented hot loop even with tracing off.

``BENCH_generation.json`` (written by
``benchmarks/test_generation_throughput.py``) is likewise gated when
present: warm-cache deferred campaign dispatch must not lose its
throughput edge over parent-side expansion — a regression here means the
generation cache or the KernelRef path stopped short-circuiting the pass
pipeline.

``BENCH_stopping.json`` (written by
``benchmarks/test_stopping_savings.py``) gates adaptive RCIW stopping
when present: the stable half of a stable/noisy mix must keep saving at
least 2x of the fixed experiment budget, and the noisy half must keep
receiving more experiments than the stable half.  Both quantities are
deterministic (seeded noise streams), so losing either means the
stopping rule itself changed — not the machine.

``BENCH_characterize.json`` (written by
``benchmarks/test_characterize.py``) gates the instruction-
characterization pipeline when present: the full-ISA probe campaign
must keep its jobs/s within the usual 2x band of the committed
baseline, and the table solve must stay a small fraction of the
campaign's wall time — the solve is closed-form arithmetic over a few
hundred readings, so a solve that rivals the campaign in cost means it
stopped being the cheap pass it is.

``BENCH_store.json`` (written by ``benchmarks/test_store_scale.py``)
gates the sharded result store when present.  Both gates are
machine-relative ratios measured within one run, so no cross-machine
baseline arithmetic is involved: cold-loading a 10^5-row cache must stay
>= 10x faster than the JSONL backend (losing this means the index is no
longer trusted and loads re-parse payloads), and membership-probe cost
must stay sublinear as the store grows 100x (losing this means lookups
degraded from binary search to scanning).

``BENCH_dispatch.json`` (written by
``benchmarks/test_dispatch_throughput.py``) gates the persistent worker
runtime when present.  Two gates are machine-relative ratios from one
run: warm dispatch must keep its >= 3x edge over the replicated pre-pool
executor path (losing this means the pool, packed transport, or memo
persistence stopped paying), and a warm back-to-back campaign must beat
the fresh one (losing this means pool reuse itself broke).  The third
gate compares warm jobs/s against the committed baseline within the
usual 2x cross-machine band.

Usage::

    python benchmarks/check_regression.py \
        --current BENCH_measurement.json \
        --baseline benchmarks/BENCH_measurement_baseline.json \
        --obs-current BENCH_obs.json \
        --gen-current BENCH_generation.json \
        --gen-baseline benchmarks/BENCH_generation_baseline.json \
        --stopping-current BENCH_stopping.json \
        --store-current BENCH_store.json \
        --charact-current BENCH_characterize.json \
        --charact-baseline benchmarks/BENCH_characterize_baseline.json \
        --dispatch-current BENCH_dispatch.json \
        --dispatch-baseline benchmarks/BENCH_dispatch_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

MAX_REGRESSION = 2.0
#: Absolute ceiling for the disabled observability path, ns per span.
#: An absolute gate (not a ratio) because the quantity is already a
#: delta over a bare loop and CI machines vary less in nanoseconds
#: added than in raw throughput.
MAX_OBS_DISABLED_NS = 2_000.0
#: Adaptive stopping must save at least this on the stable half of the
#: stable/noisy benchmark mix.  Deterministic (seeded noise), so the
#: floor is tight relative to the ~10x the current rule achieves.
MIN_STOPPING_SAVINGS = 2.0
#: Table solving must stay this fraction (or less) of probe-campaign
#: wall time — machine-relative, so no cross-machine arithmetic.
MAX_CHARACT_SOLVE_FRACTION = 0.25
#: Sharded cold-load must beat JSONL by at least this at 10^5 rows.
MIN_STORE_COLD_SPEEDUP = 10.0
#: Sharded membership cost over a 100x row increase; linear would be
#: ~100x, binary search is flat.
MAX_STORE_MEMBERSHIP_GROWTH = 10.0
#: Warm persistent-pool dispatch vs the replicated pre-pool executor
#: path, measured within one run — machine-relative, so the floor holds
#: on any host.  Mirrors MIN_SPEEDUP in the benchmark itself.
MIN_DISPATCH_SPEEDUP = 3.0


def _check_obs(current_path: str, max_ns: float) -> int:
    path = Path(current_path)
    if not path.exists():
        print(f"obs overhead: {path} not present, skipping")
        return 0
    current = json.loads(path.read_text())
    added = current["disabled_added_ns_per_span"]
    print(
        f"obs overhead: disabled span adds {added:,.0f}ns "
        f"(limit {max_ns:,.0f}ns)"
    )
    if added > max_ns:
        print(
            f"FAIL: disabled observability span costs {added:,.0f}ns; "
            "the no-op fast path regressed",
            file=sys.stderr,
        )
        return 1
    return 0


def _check_generation(
    current_path: str, baseline_path: str, max_regression: float
) -> int:
    path = Path(current_path)
    if not path.exists():
        print(f"generation throughput: {path} not present, skipping")
        return 0
    current = json.loads(path.read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    now = current["variants_per_second"]
    then = baseline["variants_per_second"]
    ratio = then / now if now else float("inf")
    print(
        f"generation: {now:,.0f} variants/s (baseline {then:,.0f}); "
        f"slowdown {ratio:.2f}x (limit {max_regression:.1f}x)"
    )
    if ratio > max_regression:
        print(
            f"FAIL: generation dispatch throughput regressed {ratio:.2f}x "
            "vs the committed baseline",
            file=sys.stderr,
        )
        return 1
    return 0


def _check_stopping(current_path: str, min_savings: float) -> int:
    path = Path(current_path)
    if not path.exists():
        print(f"stopping savings: {path} not present, skipping")
        return 0
    current = json.loads(path.read_text())
    stable = current["stable_savings"]
    noisy_spent = current["noisy_mean_spent"]
    stable_spent = current["stable_mean_spent"]
    print(
        f"stopping: stable half saves {stable:.1f}x "
        f"(floor {min_savings:.1f}x); spent {stable_spent:.1f} stable vs "
        f"{noisy_spent:.1f} noisy"
    )
    failed = 0
    if stable < min_savings:
        print(
            f"FAIL: adaptive stopping saves only {stable:.1f}x on the "
            "stable half; the stopping rule regressed",
            file=sys.stderr,
        )
        failed = 1
    if noisy_spent <= stable_spent:
        print(
            "FAIL: noisy configurations no longer receive more "
            "experiments than stable ones",
            file=sys.stderr,
        )
        failed = 1
    return failed


def _check_characterize(
    current_path: str,
    baseline_path: str,
    max_regression: float,
    max_solve_fraction: float,
) -> int:
    path = Path(current_path)
    if not path.exists():
        print(f"characterize: {path} not present, skipping")
        return 0
    current = json.loads(path.read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    now = current["probe_jobs_per_second"]
    then = baseline["probe_jobs_per_second"]
    ratio = then / now if now else float("inf")
    solve_fraction = current["solve_fraction"]
    print(
        f"characterize: {now:,.0f} probe jobs/s (baseline {then:,.0f}); "
        f"slowdown {ratio:.2f}x (limit {max_regression:.1f}x); solve is "
        f"{solve_fraction:.3f} of campaign time "
        f"(limit {max_solve_fraction:.2f})"
    )
    failed = 0
    if ratio > max_regression:
        print(
            f"FAIL: probe-campaign throughput regressed {ratio:.2f}x "
            "vs the committed baseline",
            file=sys.stderr,
        )
        failed = 1
    if solve_fraction > max_solve_fraction:
        print(
            f"FAIL: table solve takes {solve_fraction:.2f} of the probe "
            "campaign's wall time; the solver stopped being cheap",
            file=sys.stderr,
        )
        failed = 1
    return failed


def _check_store(
    current_path: str, min_speedup: float, max_growth: float
) -> int:
    path = Path(current_path)
    if not path.exists():
        print(f"store scale: {path} not present, skipping")
        return 0
    current = json.loads(path.read_text())
    speedup = current["cold_load_speedup_1e5"]
    growth = current["membership_growth"]
    linear = current["membership_growth_linear"]
    print(
        f"store: cold-load {speedup:.1f}x faster than JSONL at 1e5 rows "
        f"(floor {min_speedup:.0f}x); membership grew {growth:.1f}x over "
        f"{linear:.0f}x more rows (limit {max_growth:.0f}x)"
    )
    failed = 0
    if speedup < min_speedup:
        print(
            f"FAIL: sharded cold-load only {speedup:.1f}x faster than "
            "JSONL; the index read path regressed",
            file=sys.stderr,
        )
        failed = 1
    if growth > max_growth:
        print(
            f"FAIL: sharded membership cost grew {growth:.1f}x over a "
            f"{linear:.0f}x row increase; lookups are no longer sublinear",
            file=sys.stderr,
        )
        failed = 1
    return failed


def _check_dispatch(
    current_path: str,
    baseline_path: str,
    min_speedup: float,
    max_regression: float,
) -> int:
    path = Path(current_path)
    if not path.exists():
        print(f"dispatch: {path} not present, skipping")
        return 0
    current = json.loads(path.read_text())
    baseline = json.loads(Path(baseline_path).read_text())
    speedup = current["speedup_vs_prepr"]
    warm_s = current["spawn"]["warm_best_s"]
    fresh_s = current["spawn"]["fresh_s"]
    now = current["warm"]["jobs_per_s"]
    then = baseline["warm"]["jobs_per_s"]
    ratio = then / now if now else float("inf")
    print(
        f"dispatch: warm pool {speedup:.1f}x the pre-pool executor path "
        f"(floor {min_speedup:.0f}x); warm {warm_s:.3f}s vs fresh "
        f"{fresh_s:.3f}s; {now:,.0f} jobs/s (baseline {then:,.0f}); "
        f"slowdown {ratio:.2f}x (limit {max_regression:.1f}x)"
    )
    failed = 0
    if speedup < min_speedup:
        print(
            f"FAIL: warm dispatch only {speedup:.1f}x the pre-pool "
            "executor path; the persistent worker runtime stopped paying",
            file=sys.stderr,
        )
        failed = 1
    if warm_s >= fresh_s:
        print(
            f"FAIL: warm campaign ({warm_s:.3f}s) no faster than the "
            f"fresh one ({fresh_s:.3f}s); pool reuse broke",
            file=sys.stderr,
        )
        failed = 1
    if ratio > max_regression:
        print(
            f"FAIL: warm dispatch throughput regressed {ratio:.2f}x "
            "vs the committed baseline",
            file=sys.stderr,
        )
        failed = 1
    return failed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", default="BENCH_measurement.json")
    parser.add_argument(
        "--baseline", default="benchmarks/BENCH_measurement_baseline.json"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=MAX_REGRESSION,
        help="fail when baseline/current throughput exceeds this (default: 2.0)",
    )
    parser.add_argument(
        "--obs-current",
        default="BENCH_obs.json",
        help="obs-overhead result to gate (skipped when absent)",
    )
    parser.add_argument(
        "--obs-max-ns",
        type=float,
        default=MAX_OBS_DISABLED_NS,
        help="fail when a disabled span adds more ns than this "
        f"(default: {MAX_OBS_DISABLED_NS:.0f})",
    )
    parser.add_argument(
        "--gen-current",
        default="BENCH_generation.json",
        help="generation-throughput result to gate (skipped when absent)",
    )
    parser.add_argument(
        "--gen-baseline",
        default="benchmarks/BENCH_generation_baseline.json",
        help="committed generation-throughput baseline",
    )
    parser.add_argument(
        "--stopping-current",
        default="BENCH_stopping.json",
        help="stopping-savings result to gate (skipped when absent)",
    )
    parser.add_argument(
        "--stopping-min-savings",
        type=float,
        default=MIN_STOPPING_SAVINGS,
        help="fail when the stable half saves less than this "
        f"(default: {MIN_STOPPING_SAVINGS:.1f})",
    )
    parser.add_argument(
        "--charact-current",
        default="BENCH_characterize.json",
        help="characterization result to gate (skipped when absent)",
    )
    parser.add_argument(
        "--charact-baseline",
        default="benchmarks/BENCH_characterize_baseline.json",
        help="committed characterization baseline",
    )
    parser.add_argument(
        "--charact-max-solve-fraction",
        type=float,
        default=MAX_CHARACT_SOLVE_FRACTION,
        help="fail when table solving exceeds this fraction of probe-"
        f"campaign wall time (default: {MAX_CHARACT_SOLVE_FRACTION:.2f})",
    )
    parser.add_argument(
        "--store-current",
        default="BENCH_store.json",
        help="store-scale result to gate (skipped when absent)",
    )
    parser.add_argument(
        "--store-min-speedup",
        type=float,
        default=MIN_STORE_COLD_SPEEDUP,
        help="fail when sharded cold-load beats JSONL by less than this "
        f"at 1e5 rows (default: {MIN_STORE_COLD_SPEEDUP:.0f})",
    )
    parser.add_argument(
        "--store-max-growth",
        type=float,
        default=MAX_STORE_MEMBERSHIP_GROWTH,
        help="fail when sharded membership cost grows more than this over "
        f"a 100x row increase (default: {MAX_STORE_MEMBERSHIP_GROWTH:.0f})",
    )
    parser.add_argument(
        "--dispatch-current",
        default="BENCH_dispatch.json",
        help="dispatch-throughput result to gate (skipped when absent)",
    )
    parser.add_argument(
        "--dispatch-baseline",
        default="benchmarks/BENCH_dispatch_baseline.json",
        help="committed dispatch-throughput baseline",
    )
    parser.add_argument(
        "--dispatch-min-speedup",
        type=float,
        default=MIN_DISPATCH_SPEEDUP,
        help="fail when warm dispatch beats the pre-pool executor path "
        f"by less than this (default: {MIN_DISPATCH_SPEEDUP:.0f})",
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())

    now = current["configs_per_second"]
    then = baseline["configs_per_second"]
    ratio = then / now if now else float("inf")
    print(
        f"throughput: {now:,.0f} configs/s (baseline {then:,.0f}); "
        f"slowdown {ratio:.2f}x (limit {args.max_regression:.1f}x)"
    )
    failed = 0
    if ratio > args.max_regression:
        print(
            f"FAIL: measurement throughput regressed {ratio:.2f}x "
            f"vs the committed baseline",
            file=sys.stderr,
        )
        failed = 1
    failed |= _check_obs(args.obs_current, args.obs_max_ns)
    failed |= _check_generation(
        args.gen_current, args.gen_baseline, args.max_regression
    )
    failed |= _check_stopping(
        args.stopping_current, args.stopping_min_savings
    )
    failed |= _check_characterize(
        args.charact_current,
        args.charact_baseline,
        args.max_regression,
        args.charact_max_solve_fraction,
    )
    failed |= _check_store(
        args.store_current, args.store_min_speedup, args.store_max_growth
    )
    failed |= _check_dispatch(
        args.dispatch_current,
        args.dispatch_baseline,
        args.dispatch_min_speedup,
        args.max_regression,
    )
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
