"""Benchmark: auto-tune + variance attribution (future-work extension).

Run with ``pytest benchmarks/test_ext_autotune.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ext_autotune(benchmark, regenerate):
    result = regenerate(benchmark, "ext_autotune")
    assert result.notes
