"""Benchmark: conflict-miss traffic inflation ablation.

Run with ``pytest benchmarks/test_ablation_conflict_traffic.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_conflict_traffic(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_conflict_traffic")
    assert result.notes
