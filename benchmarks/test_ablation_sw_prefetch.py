"""Benchmark: software prefetch vs the demand-MLP latency floor.

Run with ``pytest benchmarks/test_ablation_sw_prefetch.py --benchmark-only -s``
to see the reproduced rows.
"""

def test_ablation_sw_prefetch(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_sw_prefetch")
    assert result.notes["prefetch_recovers"]
