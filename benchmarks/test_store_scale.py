"""Scale benchmark: sharded segment store vs single-file JSONL cache.

Populates result caches of 10^4, 10^5, and 10^6 rows in both layouts
and times the three operations the sharded store exists to accelerate:

- **cold-load**: constructing a cache over an existing directory.  The
  JSONL backend parses and checksums every line; the sharded backend
  reads ``index.bin`` (no JSON touched).
- **membership / resume-scan**: probing job IDs the way ``run_campaign``
  partitions a campaign on resume.  Membership is a dict hit for the
  loaded JSONL cache and a binary search over the index for the sharded
  store, so the *scan* cost (open + probes from a cold process) is where
  the layouts diverge.
- **aggregation-read**: every stored row's aggregated
  cycles-per-iteration.  The JSONL path re-materializes measurement
  dicts into :class:`Measurement` objects; the sharded path loads the
  sealed segments' columnar sidecars and reduces arrays directly.

Asserts cold-load of the 10^5-row cache is >= 10x faster sharded, that
sharded membership cost grows sublinearly in row count, and that both
backends aggregate to identical values; writes ``BENCH_store.json``
(repo root) for the CI regression gate — see
``benchmarks/check_regression.py``.  Scales can be overridden for local
iteration with ``STORE_BENCH_SCALES=10000,100000``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.engine import ResultCache, ShardedResultCache
from repro.engine.cache import record_check
from repro.engine.serialize import measurements_from_payload

SCALES = tuple(
    int(s)
    for s in os.environ.get("STORE_BENCH_SCALES", "10000,100000,1000000").split(",")
)
PROBES = 2_000
MIN_COLD_SPEEDUP_1E5 = 10.0
#: Membership cost may grow this much over a 100x row-count increase
#: before it stops counting as sublinear (linear growth would be ~100x).
MAX_MEMBERSHIP_GROWTH = 10.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_store.json"


def _record(i: int) -> dict:
    return {
        "job_id": f"{i:016x}",
        "kernel": f"kernel_{i % 64:04d}",
        "mode": "sequential",
        "measurements": [
            {
                "kernel_name": f"kernel_{i % 64:04d}",
                "label": "bench",
                "trip_count": 512,
                "repetitions": 32,
                "loop_iterations": 128,
                "elements_per_iteration": 4,
                "n_memory_instructions": 2,
                "experiment_tsc": [
                    float(1000 + (i * 7 + j * 13) % 97) for j in range(3)
                ],
                "freq_ghz": 2.66,
                "tsc_ghz": 2.66,
                "aggregator": "min",
            }
        ],
    }


def _populate_jsonl(directory: Path, rows: int) -> float:
    """Bulk-write the exact bytes a put-loop would produce (same record
    shape, same checksums) — populating through ``put`` would only time
    one open() syscall per row, which is not what this benchmark gates."""
    directory.mkdir(parents=True)
    start = time.perf_counter()
    lines = []
    for i in range(rows):
        record = _record(i)
        record["check"] = record_check(record)
        lines.append(json.dumps(record))
    (directory / "results.jsonl").write_text("\n".join(lines) + "\n")
    return time.perf_counter() - start


def _populate_sharded(directory: Path, rows: int) -> float:
    start = time.perf_counter()
    cache = ShardedResultCache(directory)
    for i in range(rows):
        record = _record(i)
        cache.put(
            record["job_id"],
            record["measurements"],
            kernel=record["kernel"],
            mode=record["mode"],
        )
    cache.store.close()
    return time.perf_counter() - start


def _probe_ids(rows: int) -> list[str]:
    """Half present, half absent — a resume over a partially-run sweep."""
    step = max(1, rows // (PROBES // 2))
    present = [f"{i:016x}" for i in range(0, rows, step)][: PROBES // 2]
    absent = [f"missing{i:09x}" for i in range(PROBES - len(present))]
    return present + absent


def _time_backend(directory: Path, rows: int, opener) -> dict:
    start = time.perf_counter()
    cache = opener(directory)
    cold_load = time.perf_counter() - start

    ids = _probe_ids(rows)
    start = time.perf_counter()
    hits = sum(1 for job_id in ids if job_id in cache)
    membership = time.perf_counter() - start
    assert hits == PROBES // 2, f"expected half the probes present, got {hits}"

    start = time.perf_counter()
    if isinstance(cache, ShardedResultCache):
        columns = cache.columns()
        values = columns.cycles_per_iteration()
        order = np.argsort(columns.job_ids)
    else:
        pairs = sorted(
            (record["job_id"], record["measurements"])
            for record in cache._records.values()
        )
        values = np.array(
            [
                m.cycles_per_iteration
                for _job_id, payload in pairs
                for m in measurements_from_payload(payload)
            ]
        )
        order = np.arange(len(values))
    aggregation = time.perf_counter() - start

    return {
        "rows": rows,
        "cold_load_seconds": round(cold_load, 5),
        "membership_seconds": round(membership, 5),
        "resume_scan_seconds": round(cold_load + membership, 5),
        "aggregation_seconds": round(aggregation, 5),
        "_values": values[order],
    }


def test_store_scale(tmp_path):
    report: dict = {
        "benchmark": "store_scale",
        "probes": PROBES,
        "scales": {},
    }
    sharded_membership: dict[int, float] = {}
    sharded_resume: dict[int, float] = {}
    cold_speedups: dict[int, float] = {}
    for rows in SCALES:
        jsonl_dir = tmp_path / f"jsonl-{rows}"
        sharded_dir = tmp_path / f"sharded-{rows}"
        jsonl_populate = _populate_jsonl(jsonl_dir, rows)
        sharded_populate = _populate_sharded(sharded_dir, rows)

        jsonl = _time_backend(jsonl_dir, rows, ResultCache)
        sharded = _time_backend(sharded_dir, rows, ShardedResultCache)
        np.testing.assert_array_equal(
            jsonl.pop("_values"), sharded.pop("_values")
        )
        jsonl["populate_seconds"] = round(jsonl_populate, 5)
        sharded["populate_seconds"] = round(sharded_populate, 5)

        speedup = jsonl["cold_load_seconds"] / max(
            sharded["cold_load_seconds"], 1e-9
        )
        cold_speedups[rows] = speedup
        sharded_membership[rows] = sharded["membership_seconds"]
        sharded_resume[rows] = sharded["resume_scan_seconds"]
        report["scales"][str(rows)] = {
            "jsonl": jsonl,
            "sharded": sharded,
            "cold_load_speedup": round(speedup, 2),
            "aggregation_speedup": round(
                jsonl["aggregation_seconds"]
                / max(sharded["aggregation_seconds"], 1e-9),
                2,
            ),
        }
        print(
            f"\n{rows:>9,} rows: cold {jsonl['cold_load_seconds']:.3f}s -> "
            f"{sharded['cold_load_seconds']:.3f}s ({speedup:.1f}x)  "
            f"membership {sharded['membership_seconds'] * 1e3:.1f}ms  "
            f"aggregate {jsonl['aggregation_seconds']:.3f}s -> "
            f"{sharded['aggregation_seconds']:.3f}s"
        )

    lo, hi = min(SCALES), max(SCALES)
    growth = sharded_membership[hi] / max(sharded_membership[lo], 1e-9)
    linear_growth = hi / lo
    report["cold_load_speedup_1e5"] = round(
        cold_speedups.get(100_000, cold_speedups[hi]), 2
    )
    report["membership_growth"] = round(growth, 2)
    report["membership_growth_linear"] = linear_growth
    report["resume_scan_growth"] = round(
        sharded_resume[hi] / max(sharded_resume[lo], 1e-9), 2
    )
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"cold-load speedup @1e5: {report['cold_load_speedup_1e5']}x  "
        f"membership growth {lo:,}->{hi:,}: {growth:.1f}x "
        f"(linear would be {linear_growth}x)  -> {RESULT_PATH.name}"
    )

    if 100_000 in cold_speedups:
        assert cold_speedups[100_000] >= MIN_COLD_SPEEDUP_1E5, (
            f"sharded cold-load only {cold_speedups[100_000]:.1f}x faster at "
            f"1e5 rows (need >= {MIN_COLD_SPEEDUP_1E5}x); see {RESULT_PATH}"
        )
    assert growth <= MAX_MEMBERSHIP_GROWTH, (
        f"sharded membership cost grew {growth:.1f}x over a "
        f"{linear_growth}x row increase — no longer sublinear"
    )
