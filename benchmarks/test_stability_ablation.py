"""Benchmark: regenerate Section 4.7: stabilization controls.

Run with ``pytest benchmarks/test_stability_ablation.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_stability_ablation(benchmark, regenerate):
    result = regenerate(benchmark, "stability")
    # removing controls destroys repeatability
    assert result.notes["controls_matter"]
