"""Benchmark-harness helpers.

Every benchmark regenerates one paper exhibit through the experiment
registry, prints the series/rows the paper reports, and asserts the shape
claims.  ``pytest benchmarks/ --benchmark-only`` times the full
(non-quick) regeneration of each exhibit.
"""

from __future__ import annotations

import pytest

from repro.analysis import run_experiment
from repro.analysis.experiments import ExperimentResult


@pytest.fixture()
def regenerate():
    """Run one exhibit under pytest-benchmark and print its report."""

    def _regenerate(benchmark, exhibit: str, **kwargs) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiment(exhibit, **kwargs), rounds=1, iterations=1
        )
        print()
        print(result.render())
        failures = {
            k: v for k, v in result.notes.items() if isinstance(v, bool) and not v
        }
        assert not failures, f"{exhibit} shape claims failed: {failures}"
        return result

    return _regenerate
