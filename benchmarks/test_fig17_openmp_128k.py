"""Benchmark: regenerate Fig. 17: OpenMP vs sequential, 128k elements.

Run with ``pytest benchmarks/test_fig17_openmp_128k.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig17_openmp_128k(benchmark, regenerate):
    result = regenerate(benchmark, "fig17")
    # OpenMP wins at every unroll factor
    assert result.notes["omp_below_seq"]
