"""Benchmark: adaptive RCIW stopping spends experiments where the noise is.

Measures a mixed population — a *stable* half (long inner repetition
loops, so baseline jitter is tiny) and a *noisy* half (short loops,
jitter scales as ``1/sqrt(repetitions)``) — under adaptive stopping, and
compares the experiments actually spent against the fixed-count budget a
non-adaptive run would burn on every configuration.

The headline number is ``stable_savings``: how many times fewer
experiments the stable half needed.  Aggregated over several noise seeds
so one unusually tight stream cannot flatter the result.  Writes
``BENCH_stopping.json`` (repo root) for the CI regression gate — see
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

from repro.launcher import LauncherOptions, MeasurementRequest
from repro.launcher.measurement import run_measurement_batch
from repro.machine.noise import NoiseModel

N_CONFIGS = 32
FIXED_EXPERIMENTS = 32
RCIW_TARGET = 0.004
SEEDS = (7, 99, 123, 2024, 31337)
MIN_STABLE_SAVINGS = 2.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_stopping.json"


def _requests():
    return [
        MeasurementRequest(
            ideal_call_ns=120.0 + 3.0 * k,
            kernel_name=f"config{k:03d}",
            loop_iterations=32,
            elements_per_iteration=4,
            n_memory_instructions=2,
        )
        for k in range(N_CONFIGS)
    ]


def _spent(options: LauncherOptions) -> list[int]:
    out: list[int] = []
    for seed in SEEDS:
        out += [
            m.experiments_spent
            for m in run_measurement_batch(
                _requests(),
                options=options,
                freq_ghz=2.67,
                tsc_ghz=2.67,
                noise=NoiseModel(seed=seed),
            )
        ]
    return out


def test_stable_half_saves_experiments():
    adaptive = LauncherOptions(
        rciw_target=RCIW_TARGET,
        min_experiments=3,
        max_experiments=FIXED_EXPERIMENTS,
        batch_size=4,
    )
    spent_stable = _spent(adaptive.with_(repetitions=64))
    spent_noisy = _spent(adaptive.with_(repetitions=2))

    mean_stable = statistics.fmean(spent_stable)
    mean_noisy = statistics.fmean(spent_noisy)
    stable_savings = FIXED_EXPERIMENTS / mean_stable
    noisy_savings = FIXED_EXPERIMENTS / mean_noisy
    total = len(spent_stable) + len(spent_noisy)
    overall_savings = (total * FIXED_EXPERIMENTS) / (
        sum(spent_stable) + sum(spent_noisy)
    )
    record = {
        "benchmark": "stopping_savings",
        "configs": N_CONFIGS,
        "seeds": len(SEEDS),
        "rciw_target": RCIW_TARGET,
        "fixed_experiments": FIXED_EXPERIMENTS,
        "stable_mean_spent": round(mean_stable, 2),
        "noisy_mean_spent": round(mean_noisy, 2),
        "stable_savings": round(stable_savings, 2),
        "noisy_savings": round(noisy_savings, 2),
        "overall_savings": round(overall_savings, 2),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nstable: {mean_stable:.1f} spent ({stable_savings:.1f}x saved)  "
        f"noisy: {mean_noisy:.1f} spent ({noisy_savings:.1f}x saved)  "
        f"overall: {overall_savings:.1f}x  -> {RESULT_PATH.name}"
    )
    # The budget concentrates on the noisy half...
    assert mean_noisy > mean_stable
    # ...and the stable half costs a fraction of the fixed budget.
    assert stable_savings >= MIN_STABLE_SAVINGS, (
        f"stable half saved only {stable_savings:.1f}x "
        f"(need >= {MIN_STABLE_SAVINGS}x); see {RESULT_PATH}"
    )
