"""Benchmark: hotspot abstraction (future-work extension).

Run with ``pytest benchmarks/test_ext_abstraction.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ext_abstraction(benchmark, regenerate):
    result = regenerate(benchmark, "ext_abstraction")
    assert result.notes
