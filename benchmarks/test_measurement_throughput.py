"""Throughput benchmark: vectorized measurement core vs the scalar loop.

Times a 1000-configuration x 32-experiment sweep two ways:

- **sequential**: the pre-batching ``run_measurement`` implementation,
  kept verbatim below — one noise-stream construction per (config,
  experiment) pair, exactly what the launcher did before the vectorized
  core landed;
- **batch**: one :func:`run_measurement_batch` call, stream-primitive
  cache cleared first so the comparison is cold-start fair.

Asserts the batch path is at least 5x faster and writes the numbers to
``BENCH_measurement.json`` (repo root) for the CI regression gate — see
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.launcher import LauncherOptions, MeasurementRequest
from repro.launcher.measurement import (
    CALL_OVERHEAD_NS,
    Measurement,
    run_measurement_batch,
)
from repro.machine.noise import NoiseEnvironment, NoiseModel

N_CONFIGS = 1000
N_EXPERIMENTS = 32
MIN_SPEEDUP = 5.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_measurement.json"


def _sequential_reference(requests, *, options, freq_ghz, tsc_ghz, noise):
    """The pre-batching measurement loop, verbatim (the timing baseline)."""
    env = NoiseEnvironment(
        pinned=options.pin,
        interrupts_disabled=options.disable_interrupts,
        warmed_up=options.warmup,
        inner_repetitions=options.repetitions,
    )
    out = []
    for request in requests:
        overhead_estimate_ns = 0.0
        if options.subtract_overhead:
            raw = options.repetitions * CALL_OVERHEAD_NS
            overhead_estimate_ns = noise.perturb(raw, env, experiment=-1)
        experiment_tsc = []
        for e in range(options.experiments):
            duration_ns = options.repetitions * (
                request.ideal_call_ns + CALL_OVERHEAD_NS
            )
            duration_ns = noise.perturb(
                duration_ns, env, experiment=e, first_run=(e == 0)
            )
            duration_ns -= overhead_estimate_ns
            experiment_tsc.append(max(duration_ns, 0.0) * tsc_ghz)
        out.append(
            Measurement(
                kernel_name=request.kernel_name,
                label=options.label,
                trip_count=options.trip_count,
                repetitions=options.repetitions,
                loop_iterations=request.loop_iterations,
                elements_per_iteration=request.elements_per_iteration,
                n_memory_instructions=request.n_memory_instructions,
                experiment_tsc=tuple(experiment_tsc),
                freq_ghz=freq_ghz,
                tsc_ghz=tsc_ghz,
                aggregator=options.aggregator,
            )
        )
    return out


def _requests():
    return [
        MeasurementRequest(
            ideal_call_ns=100.0 + 0.5 * k,
            kernel_name=f"config{k:04d}",
            loop_iterations=128,
            elements_per_iteration=4,
            n_memory_instructions=2,
        )
        for k in range(N_CONFIGS)
    ]


def test_batch_speedup_over_sequential():
    options = LauncherOptions(experiments=N_EXPERIMENTS, repetitions=32)
    noise = NoiseModel(seed=2012)
    requests = _requests()
    shared = dict(options=options, freq_ghz=2.67, tsc_ghz=2.66, noise=noise)

    start = time.perf_counter()
    sequential = _sequential_reference(requests, **shared)
    seq_seconds = time.perf_counter() - start

    NoiseModel.clear_stream_cache()  # cold-start fair
    start = time.perf_counter()
    batch = run_measurement_batch(requests, **shared)
    batch_seconds = time.perf_counter() - start

    assert batch == sequential  # speed means nothing if the bits moved
    speedup = seq_seconds / batch_seconds
    record = {
        "benchmark": "measurement_throughput",
        "configs": N_CONFIGS,
        "experiments": N_EXPERIMENTS,
        "sequential_seconds": round(seq_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "speedup": round(speedup, 2),
        "configs_per_second": round(N_CONFIGS / batch_seconds, 1),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nsequential: {seq_seconds:.3f}s  batch: {batch_seconds:.3f}s  "
          f"speedup: {speedup:.1f}x  -> {RESULT_PATH.name}")
    assert speedup >= MIN_SPEEDUP, (
        f"batch path only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x); "
        f"see {RESULT_PATH}"
    )
