"""Benchmark: warm-cache campaign re-run must execute zero jobs.

Run with ``pytest benchmarks/test_engine_cache.py --benchmark-only -s``.
The first (cold) run measures a 64-job grid and fills the cache; the
timed re-run answers every job from disk.
"""

from repro.engine import Campaign, SweepSpec, run_campaign
from repro.launcher import LauncherOptions


def _campaign():
    from repro.creator import MicroCreator
    from repro.machine import nehalem_2s_x5650
    from repro.spec import load_kernel

    variants = MicroCreator().generate(load_kernel("movaps"))
    sweep = SweepSpec(
        kernels=tuple(variants),
        base=LauncherOptions(array_bytes=16 * 1024, experiments=2, repetitions=2),
        axes={"trip_count": (256, 512, 1024, 2048), "repetitions": (2, 4)},
    )
    return Campaign(name="engine_cache_bench", machine=nehalem_2s_x5650(), sweeps=(sweep,))


def test_engine_cache_rerun_executes_nothing(benchmark, tmp_path):
    campaign = _campaign()
    cold = run_campaign(campaign, cache_dir=tmp_path)
    assert cold.stats.total_jobs >= 64
    assert cold.stats.executed == cold.stats.total_jobs

    warm = benchmark.pedantic(
        lambda: run_campaign(campaign, cache_dir=tmp_path), rounds=1, iterations=1
    )
    print()
    print(
        f"warm re-run: {warm.stats.total_jobs} jobs, "
        f"{warm.stats.cache_hits} hits, {warm.stats.executed} executed"
    )
    assert warm.stats.executed == 0
    assert warm.stats.cache_hits == warm.stats.total_jobs
    assert warm.stats.cache_hit_rate == 1.0
    assert warm.measurements() == cold.measurements()
