"""Benchmark: dot-product accumulator splitting (chain-breaking study).

Run with ``pytest benchmarks/test_reduction_study.py --benchmark-only -s``
to see the reproduced rows.
"""

def test_reduction_study(benchmark, regenerate):
    result = regenerate(benchmark, "reduction_study")
    assert result.notes["splitting_helps"]
