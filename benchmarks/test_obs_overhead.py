"""Overhead benchmark: the observability layer's disabled fast path.

The instrumentation in the creator/engine/launcher hot loops is only
acceptable because a *disabled* span costs roughly one module-global
read: ``obs.span(...)`` returns the shared no-op singleton without
building anything.  This benchmark times that path directly:

- **bare**: an uninstrumented loop over a tiny workload;
- **disabled**: the same loop wrapped in ``obs.span`` / ``obs.count``
  with the session off — the state every production run is in unless
  ``--trace`` / ``--metrics-out`` was passed;
- **enabled**: the same loop with a live session, for scale.

Asserts the disabled span adds sub-microsecond cost per iteration and
stays well under the enabled path, then writes ``BENCH_obs.json`` (repo
root) for the CI regression gate — see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro import obs

N_ITERS = 200_000
#: Generous noise band: a disabled span must cost less than this per
#: iteration on any machine CI runs on (measured ~0.1-0.3 us locally).
MAX_DISABLED_NS = 2_000.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _work(x: int) -> int:
    """A tiny stand-in for real per-span work (keeps loops comparable)."""
    return x + 1


def _time_bare(n: int) -> float:
    start = time.perf_counter()
    acc = 0
    for _ in range(n):
        acc = _work(acc)
    return (time.perf_counter() - start) / n * 1e9


def _time_instrumented(n: int) -> float:
    start = time.perf_counter()
    acc = 0
    for i in range(n):
        with obs.span("bench.iter", i=i):
            acc = _work(acc)
        obs.count("bench.iterations")
    return (time.perf_counter() - start) / n * 1e9


def test_disabled_path_is_noise():
    obs.disable()  # make sure no earlier test left a session on
    _time_instrumented(10_000)  # warm the bytecode before timing

    bare_ns = _time_bare(N_ITERS)
    disabled_ns = _time_instrumented(N_ITERS)

    obs.enable()
    try:
        enabled_ns = _time_instrumented(N_ITERS // 10)
    finally:
        obs.disable()

    added_ns = max(disabled_ns - bare_ns, 0.0)
    record = {
        "benchmark": "obs_overhead",
        "iterations": N_ITERS,
        "bare_ns_per_iter": round(bare_ns, 1),
        "disabled_ns_per_iter": round(disabled_ns, 1),
        "disabled_added_ns_per_span": round(added_ns, 1),
        "enabled_ns_per_iter": round(enabled_ns, 1),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nbare: {bare_ns:.0f}ns  disabled: {disabled_ns:.0f}ns  "
          f"enabled: {enabled_ns:.0f}ns  -> {RESULT_PATH.name}")

    assert added_ns < MAX_DISABLED_NS, (
        f"disabled span adds {added_ns:.0f}ns/iter "
        f"(limit {MAX_DISABLED_NS:.0f}ns); the no-op fast path regressed"
    )
    # The fast path must actually short-circuit: a disabled span has to
    # be far cheaper than a recorded one.
    assert disabled_ns < enabled_ns, (
        f"disabled path ({disabled_ns:.0f}ns) is not cheaper than the "
        f"enabled path ({enabled_ns:.0f}ns)"
    )


def test_disabled_span_is_the_shared_noop():
    """The disabled helpers allocate nothing per call."""
    obs.disable()
    assert obs.span("a", x=1) is obs.span("b") is obs.NOOP_SPAN
    assert obs.metrics_snapshot() == {}
