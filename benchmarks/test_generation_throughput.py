"""Throughput benchmark: deferred generation vs parent-side expansion.

Times a four-spec campaign dispatch (the full ``(Load|Store)+`` families
for ``movss``/``movsd``/``movaps``/``movapd``, ~510 variants each) two
ways:

- **parent**: ``Campaign.job_list()`` with no generation cache and no
  deferral — the parent process runs the whole pass pipeline for every
  spec and each job carries a fully rendered kernel, which is what gets
  pickled to worker processes;
- **deferred**: ``Campaign.job_list(gen_cache=..., defer=True)`` against
  a warm :class:`~repro.engine.GenerationCache` — variant expansion is a
  cache read (no pipeline) and each spec-derived job carries a
  :class:`~repro.engine.KernelRef` instead of the kernel.

Both paths are charged for pickling their jobs in worker-sized chunks,
because the serialized payload is exactly what the deferral exists to
shrink.  Asserts the deferred path is at least 3x faster and that both
paths produce identical job ids (deferral must not change *what* is
measured), then writes the numbers to ``BENCH_generation.json`` (repo
root) for the CI regression gate — see ``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import json
import pickle
import time
from pathlib import Path

import pytest

from repro.engine import Campaign, GenerationCache, SweepSpec, expand_spec_variants
from repro.kernels import loadstore_family
from repro.launcher import LauncherOptions
from repro.machine import nehalem_2s_x5650

OPCODES = ("movss", "movsd", "movaps", "movapd")
CHUNK_SIZE = 16
MIN_SPEEDUP = 3.0

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_generation.json"


def _campaign() -> Campaign:
    base = LauncherOptions(array_bytes=16 * 1024, trip_count=1 << 12)
    return Campaign(
        name="generation_throughput",
        machine=nehalem_2s_x5650(),
        sweeps=tuple(
            SweepSpec(spec=loadstore_family(op), base=base) for op in OPCODES
        ),
    )


def _pickled_chunks(jobs) -> int:
    """Serialize jobs in worker-sized chunks; returns total payload bytes."""
    total = 0
    for start in range(0, len(jobs), CHUNK_SIZE):
        total += len(
            pickle.dumps(jobs[start : start + CHUNK_SIZE], pickle.HIGHEST_PROTOCOL)
        )
    return total


def test_deferred_dispatch_speedup(tmp_path):
    campaign = _campaign()
    cache = GenerationCache(tmp_path / "gencache")
    for sweep in campaign.sweeps:  # warm: one pipeline run per spec
        expand_spec_variants(sweep.spec, sweep.creator_options, cache)

    start = time.perf_counter()
    parent_jobs = campaign.job_list()
    parent_bytes = _pickled_chunks(parent_jobs)
    parent_seconds = time.perf_counter() - start

    start = time.perf_counter()
    deferred_jobs = campaign.job_list(gen_cache=cache, defer=True)
    deferred_bytes = _pickled_chunks(deferred_jobs)
    deferred_seconds = time.perf_counter() - start

    # Speed means nothing if the campaign changed: same jobs, same order.
    assert [j.job_id for j in deferred_jobs] == [j.job_id for j in parent_jobs]

    n_jobs = len(parent_jobs)
    speedup = parent_seconds / deferred_seconds
    record = {
        "benchmark": "generation_throughput",
        "specs": len(OPCODES),
        "jobs": n_jobs,
        "chunk_size": CHUNK_SIZE,
        "parent_seconds": round(parent_seconds, 4),
        "deferred_seconds": round(deferred_seconds, 4),
        "parent_payload_bytes": parent_bytes,
        "deferred_payload_bytes": deferred_bytes,
        "speedup": round(speedup, 2),
        "variants_per_second": round(n_jobs / deferred_seconds, 1),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\nparent: {parent_seconds:.3f}s ({parent_bytes:,}B)  "
        f"deferred: {deferred_seconds:.3f}s ({deferred_bytes:,}B)  "
        f"speedup: {speedup:.1f}x  -> {RESULT_PATH.name}"
    )
    assert deferred_bytes < parent_bytes, "refs should pickle smaller than kernels"
    assert speedup >= MIN_SPEEDUP, (
        f"deferred dispatch only {speedup:.1f}x faster (need >= {MIN_SPEEDUP}x); "
        f"see {RESULT_PATH}"
    )
