"""Benchmark: a 4-worker campaign run is byte-identical to an inline run.

Run with ``pytest benchmarks/test_engine_parallel_determinism.py
--benchmark-only -s``.  Noise seeds derive from each job's content hash,
so worker count and completion order cannot change a single output byte.
"""

from repro.engine import Campaign, SweepSpec, run_campaign
from repro.launcher import LauncherOptions


def _campaign():
    from repro.creator import MicroCreator
    from repro.machine import nehalem_2s_x5650
    from repro.spec import load_kernel

    variants = MicroCreator().generate(load_kernel("movaps"))
    sweep = SweepSpec(
        kernels=tuple(variants),
        base=LauncherOptions(array_bytes=16 * 1024, experiments=2, repetitions=2),
        axes={"trip_count": (256, 512, 1024, 2048), "repetitions": (2, 4)},
    )
    return Campaign(
        name="engine_determinism_bench", machine=nehalem_2s_x5650(), sweeps=(sweep,)
    )


def test_engine_parallel_matches_inline(benchmark, tmp_path):
    campaign = _campaign()
    serial = run_campaign(campaign, jobs=1)
    assert serial.stats.total_jobs >= 64

    parallel = benchmark.pedantic(
        lambda: run_campaign(campaign, jobs=4), rounds=1, iterations=1
    )
    print()
    print(
        f"{parallel.stats.total_jobs} jobs on {parallel.stats.workers} workers "
        f"(inline fallback: {parallel.stats.fell_back_inline})"
    )
    serial_csv = serial.write_csv(tmp_path / "serial.csv")
    parallel_csv = parallel.write_csv(tmp_path / "parallel.csv")
    assert serial_csv.read_bytes() == parallel_csv.read_bytes()
    serial_jsonl = serial.write_jsonl(tmp_path / "serial.jsonl")
    parallel_jsonl = parallel.write_jsonl(tmp_path / "parallel.jsonl")
    assert serial_jsonl.read_bytes() == parallel_jsonl.read_bytes()
