"""Benchmark: min-vs-mean aggregation under noise.

Run with ``pytest benchmarks/test_ablation_aggregator.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_aggregator(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_aggregator")
    assert result.notes
