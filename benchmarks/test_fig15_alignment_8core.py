"""Benchmark: regenerate Fig. 15: 8-core alignment sweep.

Run with ``pytest benchmarks/test_fig15_alignment_8core.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig15_alignment_8core(benchmark, regenerate):
    result = regenerate(benchmark, "fig15")
    assert result.notes
