"""Benchmark: regenerate Fig. 18: OpenMP vs sequential, 6M elements.

Run with ``pytest benchmarks/test_fig18_openmp_6m.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig18_openmp_6m(benchmark, regenerate):
    result = regenerate(benchmark, "fig18")
    # OpenMP still wins, by less
    assert result.notes["omp_below_seq"]
