"""Benchmark: regenerate Fig. 4: matmul alignment sensitivity at 200x200.

Run with ``pytest benchmarks/test_fig04_matmul_alignment.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig04_matmul_alignment(benchmark, regenerate):
    result = regenerate(benchmark, "fig04")
    # alignment is immaterial for the in-cache size
    assert result.notes["below_3_percent"]
