"""Benchmark: regenerate Fig. 2: naive matmul's compiled inner loop.

Run with ``pytest benchmarks/test_fig02_matmul_lowering.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig02_matmul_lowering(benchmark, regenerate):
    result = regenerate(benchmark, "fig02")
    # the mini front-end reproduces GCC's instruction mix
    assert result.notes["has_load_mul_add_store"]
