"""Benchmark: regenerate Fig. 12: movss loads/stores, unroll x hierarchy.

Run with ``pytest benchmarks/test_fig12_movss_unroll.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig12_movss_unroll(benchmark, regenerate):
    result = regenerate(benchmark, "fig12")
    assert result.notes
