"""Benchmark: regenerate Fig. 14: forked multi-core bandwidth saturation.

Run with ``pytest benchmarks/test_fig14_fork_saturation.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig14_fork_saturation(benchmark, regenerate):
    result = regenerate(benchmark, "fig14")
    assert result.notes
