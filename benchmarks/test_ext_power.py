"""Benchmark: energy vs frequency (power-utilization extension).

Run with ``pytest benchmarks/test_ext_power.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ext_power(benchmark, regenerate):
    result = regenerate(benchmark, "ext_power")
    assert result.notes
