"""Dispatch throughput: persistent worker pool vs per-campaign executor.

Times the *dispatch machinery* of a 2000+-job small-kernel campaign —
the characterization-style workload (hundreds of distinct variants,
a few configurations each) that per-campaign pool churn penalizes most:

- **oracle** replicates the pre-persistent-pool path: a fresh
  ``ProcessPoolExecutor`` per campaign, static auto-sized chunks through
  ``_execute_chunk`` futures.  Every campaign re-pays worker spawn and
  re-warms ``_SIM_MEMO`` (kernel-model normalization) from nothing.
- **fresh** runs the new scheduler (``_parallel_execute`` on the shared
  :class:`WorkerPool`, packed transport, dynamic chunking) with no pool
  alive — the first campaign of a process.
- **warm** repeats the same campaign back-to-back: the pool and its
  worker-side memos persist, so the second campaign pays near-zero
  spawn cost.

Job *bodies* are stubbed to isolate dispatch: the stub still routes
through ``_sim_kernel_for`` (kernel-ref resolution + model normalization,
the worker-side state a fresh pool must rebuild) but skips the launcher's
measurement simulation, which is identical in both paths and benchmarked
in ``BENCH_measurement.json``.  The stub is installed before workers
fork, so both executors inherit it equally.

Also times per-row ``ResultCache.put`` against the chunk-boundary
``put_many`` batch path for both store backends.

Asserts warm dispatch is >= 3x oracle throughput and that the warm
campaign beats the fresh one (pool reuse must pay); writes
``BENCH_dispatch.json`` (repo root) for the CI regression gate — see
``benchmarks/check_regression.py``.  Scale knobs:
``DISPATCH_BENCH_LABELS`` (configurations per variant) and
``DISPATCH_BENCH_WORKERS``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from collections import defaultdict
from concurrent import futures as cf
from pathlib import Path

import pytest

from repro.engine import Campaign, SweepSpec
from repro.engine import runner
from repro.engine.pool import shutdown_worker_pool
from repro.engine.runner import (
    DEFAULT_CHUNK_TARGET_MS,
    RunStats,
    _execute_chunk,
    _parallel_execute,
    _SEED_CHUNK_SIZE,
    resolve_chunk_size,
)
from repro.engine.store import open_result_cache
from repro.kernels import loadstore_family
from repro.launcher import LauncherOptions
from repro.machine import nehalem_2s_x5650

#: Configurations measured per variant; 254 variants x 8 = 2032 jobs.
N_LABELS = int(os.environ.get("DISPATCH_BENCH_LABELS", "8"))
WORKERS = int(os.environ.get("DISPATCH_BENCH_WORKERS", "4"))
RUNS = 3
MIN_SPEEDUP = 3.0
BATCH_ROWS = 2_000
CHUNK_ROWS = 256

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dispatch.json"


def _campaign() -> Campaign:
    """A many-small-jobs campaign: one (Load|Store)+ family, unroll 1..7
    (254 distinct variants), ``N_LABELS`` labelled configurations each."""
    spec = loadstore_family("movaps", unroll=(1, 7))
    base = LauncherOptions(
        array_bytes=4096, trip_count=16, experiments=1, repetitions=1
    )
    sweep = SweepSpec(
        spec=spec,
        base=base,
        axes={"label": tuple(f"L{i:05d}" for i in range(N_LABELS))},
    )
    return Campaign(
        name="dispatch-bench", machine=nehalem_2s_x5650(), sweeps=(sweep,)
    )


def _stub_run_job(launcher, job, faults=None, attempt=0):
    """A job body with the dispatch-relevant work only.

    Resolving and normalizing the kernel model is worker-side state a
    fresh pool rebuilds per campaign — that stays.  The launcher's
    measurement loop (pure simulation, identical in both paths) is
    replaced by a canned payload of realistic shape.
    """
    runner._sim_kernel_for(job)
    return [
        {
            "kernel_name": job.kernel_name,
            "cycles_per_iteration": 4.25,
            "experiment_tsc": [1.5, 2.25, 3.5],
            "trip_count": job.options.trip_count,
            "metadata": {"mode": "sequential"},
        }
    ]


def _run_oracle(campaign, jobs) -> tuple[float, dict]:
    """The pre-persistent-pool dispatch: fresh executor, static chunks."""
    chunk = resolve_chunk_size(None, n_jobs=len(jobs), workers=WORKERS)
    out: dict = {}
    started = time.perf_counter()
    with cf.ProcessPoolExecutor(max_workers=WORKERS) as pool:
        pending = [
            pool.submit(_execute_chunk, campaign.machine, jobs[i : i + chunk])
            for i in range(0, len(jobs), chunk)
        ]
        for future in cf.as_completed(pending):
            for job_id, payload in future.result():
                out[job_id] = payload
    return time.perf_counter() - started, out


def _run_new(campaign, jobs) -> tuple[float, dict]:
    """The persistent-pool dispatch (spawns only if no pool is alive)."""
    out: dict = {}
    stats = RunStats(
        total_jobs=len(jobs),
        workers=WORKERS,
        chunk_policy="dynamic",
        chunk_size=_SEED_CHUNK_SIZE,
    )

    def record_batch(pairs):
        for job, dicts in pairs:
            out[job.job_id] = dicts
        return [True] * len(pairs)

    started = time.perf_counter()
    leftover = _parallel_execute(
        campaign,
        jobs,
        stats=stats,
        faults=None,
        attempts=defaultdict(int),
        max_retries=0,
        job_timeout=None,
        retry_backoff=0.0,
        chunk_target_ms=DEFAULT_CHUNK_TARGET_MS,
        record_batch=record_batch,
        quarantine=lambda job, reason: None,
        say=lambda line: None,
    )
    assert leftover is None
    return time.perf_counter() - started, out


def _bench_cache_batching() -> dict:
    """Per-row ``put`` vs chunk-boundary ``put_many`` for both backends."""
    payload = [
        {
            "kernel_name": "k",
            "cycles_per_iteration": 4.25,
            "experiment_tsc": [1.5, 2.25, 3.5],
            "trip_count": 16,
            "metadata": {"mode": "sequential"},
        }
    ]
    section: dict = {}
    for fmt in ("jsonl", "sharded"):
        root = Path(tempfile.mkdtemp(prefix="bench-dispatch-"))
        try:
            cache = open_result_cache(root / "per-row", store_format=fmt)
            started = time.perf_counter()
            for i in range(BATCH_ROWS):
                cache.put(f"job-{i:08d}", payload, kernel="k", mode="m")
            put_s = time.perf_counter() - started

            cache = open_result_cache(root / "batched", store_format=fmt)
            entries = [
                (f"job-{i:08d}", payload, "k", "m") for i in range(BATCH_ROWS)
            ]
            started = time.perf_counter()
            for i in range(0, BATCH_ROWS, CHUNK_ROWS):
                cache.put_many(entries[i : i + CHUNK_ROWS])
            put_many_s = time.perf_counter() - started
        finally:
            shutil.rmtree(root, ignore_errors=True)
        section[fmt] = {
            "rows": BATCH_ROWS,
            "put_us_per_row": put_s / BATCH_ROWS * 1e6,
            "put_many_us_per_row": put_many_s / BATCH_ROWS * 1e6,
        }
    return section


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="the job-body stub reaches workers by fork inheritance",
)
def test_dispatch_throughput():
    campaign = _campaign()
    jobs = campaign.job_list(defer=True)
    assert len(jobs) >= 2000

    real_run_job = runner._run_job
    runner._run_job = _stub_run_job
    shutdown_worker_pool()  # any earlier pool predates the stub
    try:
        oracle_seconds = []
        oracle_out: dict = {}
        for _ in range(RUNS):
            seconds, oracle_out = _run_oracle(campaign, jobs)
            oracle_seconds.append(seconds)

        fresh_s, fresh_out = _run_new(campaign, jobs)
        warm_seconds = []
        warm_out: dict = {}
        for _ in range(RUNS):
            seconds, warm_out = _run_new(campaign, jobs)
            warm_seconds.append(seconds)
    finally:
        runner._run_job = real_run_job
        shutdown_worker_pool()  # stub-forked workers must not outlive this

    assert len(oracle_out) == len(jobs)
    assert fresh_out == oracle_out and warm_out == oracle_out

    oracle_best = min(oracle_seconds)
    warm_best = min(warm_seconds)
    speedup = (len(jobs) / warm_best) / (len(jobs) / oracle_best)

    report = {
        "config": {
            "jobs": len(jobs),
            "distinct_kernels": len({j.kernel_digest for j in jobs}),
            "workers": WORKERS,
            "oracle_chunk": resolve_chunk_size(
                None, n_jobs=len(jobs), workers=WORKERS
            ),
            "runs": RUNS,
        },
        "oracle": {
            "seconds": oracle_seconds,
            "best_s": oracle_best,
            "jobs_per_s": len(jobs) / oracle_best,
        },
        "fresh": {"seconds": fresh_s, "jobs_per_s": len(jobs) / fresh_s},
        "warm": {
            "seconds": warm_seconds,
            "best_s": warm_best,
            "jobs_per_s": len(jobs) / warm_best,
        },
        "speedup_vs_prepr": speedup,
        "spawn": {
            "fresh_s": fresh_s,
            "warm_best_s": warm_best,
            "overhead_s": fresh_s - warm_best,
            "warm_over_fresh": warm_best / fresh_s,
        },
        "cache_batching": _bench_cache_batching(),
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(
        f"\ndispatch: {len(jobs)} jobs x {WORKERS} workers "
        f"({report['config']['distinct_kernels']} distinct kernels)"
    )
    print(
        f"  oracle (fresh executor/campaign): {oracle_best:.3f}s  "
        f"{report['oracle']['jobs_per_s']:,.0f} jobs/s"
    )
    print(
        f"  new fresh (pool spawn included):  {fresh_s:.3f}s  "
        f"{report['fresh']['jobs_per_s']:,.0f} jobs/s"
    )
    print(
        f"  new warm (pool + memos reused):   {warm_best:.3f}s  "
        f"{report['warm']['jobs_per_s']:,.0f} jobs/s"
    )
    print(f"  speedup vs pre-PR path: {speedup:.1f}x")
    print(f"wrote {RESULT_PATH}")

    assert speedup >= MIN_SPEEDUP, (
        f"warm dispatch only {speedup:.2f}x the pre-PR executor path "
        f"(floor {MIN_SPEEDUP}x)"
    )
    assert warm_best < fresh_s, (
        f"pool reuse did not pay: warm {warm_best:.3f}s >= "
        f"fresh {fresh_s:.3f}s"
    )
