"""Benchmark: regenerate Sections 3/5.1: 510 and >2000 variants.

Run with ``pytest benchmarks/test_generation_scale.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_generation_scale(benchmark, regenerate):
    result = regenerate(benchmark, "generation_scale")
    # each family yields exactly 510
    assert result.notes["per_family_510"]
    # one four-family file yields >2000
    assert result.notes["over_2000"]
