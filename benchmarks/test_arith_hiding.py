"""Benchmark: arithmetic hidden by memory latency (section 3.5 use).

Run with ``pytest benchmarks/test_arith_hiding.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_arith_hiding(benchmark, regenerate):
    result = regenerate(benchmark, "arith_hiding")
    assert result.notes
