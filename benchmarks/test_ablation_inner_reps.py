"""Benchmark: inner-repetition ablation.

Run with ``pytest benchmarks/test_ablation_inner_reps.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_inner_reps(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_inner_reps")
    assert result.notes
