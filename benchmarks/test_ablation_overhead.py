"""Benchmark: overhead-subtraction ablation.

Run with ``pytest benchmarks/test_ablation_overhead.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_overhead(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_overhead")
    assert result.notes
