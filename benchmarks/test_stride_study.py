"""Benchmark: stride effects on a RAM-streaming load (section 3.5 use).

Run with ``pytest benchmarks/test_stride_study.py --benchmark-only -s`` to
see the reproduced rows.
"""

def test_stride_study(benchmark, regenerate):
    result = regenerate(benchmark, "stride_study")
    assert result.notes["line_jump_visible"]
