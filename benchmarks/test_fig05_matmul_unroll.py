"""Benchmark: regenerate Fig. 5: matmul unroll, compiled vs microbenchmark.

Run with ``pytest benchmarks/test_fig05_matmul_unroll.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig05_matmul_unroll(benchmark, regenerate):
    result = regenerate(benchmark, "fig05")
    assert result.notes
