"""Characterization cost benchmark: probe campaign + table solve.

Times the two halves of ``python -m repro.characterize run`` on the
default machine — the full-ISA probe campaign through the engine, and
the pure-Python solve that turns measurements into an instruction
table — and writes both to ``BENCH_characterize.json`` (repo root) for
the CI regression gate (``benchmarks/check_regression.py``).

The campaign half is gated against a committed baseline as a
throughput ratio (probe jobs/s, 2x band, like the generation gate).
The solve half is gated machine-relatively: solving must stay a small
fraction of measuring, because a solver that rivals the campaign in
cost means it stopped being the cheap closed-form pass it is.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.characterize.driver import (
    characterization_campaign,
    characterization_options,
)
from repro.characterize.solve import solve_table
from repro.engine import machine_digest, run_campaign
from repro.machine import nehalem_2s_x5650

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_characterize.json"

#: Solving is closed-form arithmetic over a few hundred readings; it must
#: never approach the cost of actually running the probes.
MAX_SOLVE_FRACTION = 0.25


def test_characterization_cost():
    machine = nehalem_2s_x5650()
    options = characterization_options()
    campaign = characterization_campaign(machine, options=options)
    n_jobs = len(campaign.job_list())

    start = time.perf_counter()
    run = run_campaign(campaign)
    campaign_seconds = time.perf_counter() - start
    assert not run.failures

    start = time.perf_counter()
    table = solve_table(
        run.measurements(),
        machine=machine,
        machine_digest=machine_digest(machine),
        rciw_target=options.rciw_target,
        noise_seed=options.noise_seed,
        trip_count=options.trip_count,
    )
    solve_seconds = time.perf_counter() - start

    probed = len(table.probed_entries())
    result = {
        "probe_jobs": n_jobs,
        "opcodes_probed": probed,
        "campaign_seconds": campaign_seconds,
        "probe_jobs_per_second": n_jobs / campaign_seconds,
        "solve_seconds": solve_seconds,
        "solve_fraction": solve_seconds / campaign_seconds,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(
        f"characterize: {n_jobs} probe jobs in {campaign_seconds:.2f}s "
        f"({result['probe_jobs_per_second']:,.0f} jobs/s), solved "
        f"{probed} opcodes in {solve_seconds * 1e3:.1f}ms "
        f"({result['solve_fraction']:.3f} of campaign time)"
    )

    assert probed > 0
    assert result["solve_fraction"] < MAX_SOLVE_FRACTION
