"""Benchmark: regenerate Fig. 16: 32-core alignment sweep (saturated).

Run with ``pytest benchmarks/test_fig16_alignment_32core.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig16_alignment_32core(benchmark, regenerate):
    result = regenerate(benchmark, "fig16")
    assert result.notes
