"""Benchmark: regenerate Fig. 11: movaps loads/stores, unroll x hierarchy.

Run with ``pytest benchmarks/test_fig11_movaps_unroll.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig11_movaps_unroll(benchmark, regenerate):
    result = regenerate(benchmark, "fig11")
    # unrolling is advantageous
    assert result.notes["unroll_helps_L1"]
    # L1 < L2 < L3 < RAM
    assert result.notes["levels_ordered_at_8"]
