"""Benchmark: regenerate Table 1: architecture/figure association.

Run with ``pytest benchmarks/test_table1_presets.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_table1_presets(benchmark, regenerate):
    result = regenerate(benchmark, "table1")
    assert result.notes
