"""Benchmark: regenerate Table 2: OpenMP vs sequential seconds over unroll.

Run with ``pytest benchmarks/test_table2_openmp_times.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_table2_openmp_times(benchmark, regenerate):
    result = regenerate(benchmark, "table2")
    # the OpenMP column is essentially flat
    assert result.notes["omp_flat"]
    # OpenMP beats sequential throughout
    assert result.notes["omp_always_faster"]
