"""Benchmark: footprint vs trace-driven residence.

Run with ``pytest benchmarks/test_ablation_residence.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_ablation_residence(benchmark, regenerate):
    result = regenerate(benchmark, "ablation_residence")
    assert result.notes
