"""Benchmark: regenerate Fig. 8: unroll-3 output for the Fig. 6 description.

Run with ``pytest benchmarks/test_fig08_golden_output.py --benchmark-only -s`` to see
the reproduced rows.
"""

def test_fig08_golden_output(benchmark, regenerate):
    result = regenerate(benchmark, "fig08")
    # the generated variant is the paper's verbatim
    assert result.notes["matches_figure"]
