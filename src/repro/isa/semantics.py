"""Per-opcode semantics: classification, payload size, latency, port usage.

The table models the subset of x86-64 (SSE2 era, matching the paper's GCC
4.4.3 / Nehalem setting) that MicroCreator emits and the machine model
executes.  Latencies are register-form result latencies in core cycles,
calibrated to Nehalem; memory costs are added by the machine model from the
cache hierarchy, so a load's total latency is ``info.latency`` (address
generation + L1 pipeline) only when it hits in L1.

Execution resources are abstract port *classes*; the machine config says how
many slots per cycle each class offers (e.g. Nehalem: one load port, one
store port, three ALU ports).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpcodeKind(enum.Enum):
    MOVE = "move"          # data movement (the mov* family)
    FP_ADD = "fp_add"      # SSE floating add/sub
    FP_MUL = "fp_mul"      # SSE floating multiply
    FP_MISC = "fp_misc"    # xorps & friends (zeroing idioms)
    INT_ALU = "int_alu"    # scalar integer ALU (add/sub/cmp/lea/...)
    BRANCH = "branch"      # conditional and unconditional jumps
    PREFETCH = "prefetch"  # software prefetch hints (prefetcht0/...)
    NOP = "nop"


@dataclass(frozen=True, slots=True)
class OpcodeInfo:
    """Static description of one opcode.

    Attributes
    ----------
    name:
        AT&T mnemonic.
    kind:
        Broad class used by scheduling and the port model.
    bytes_moved:
        Payload bytes per executed instruction for the MOVE family
        (``movss`` = 4, ``movsd`` = 8, ``movaps``/``movapd`` = 16);
        0 for non-moves.
    vector:
        True for packed SSE operations.
    requires_alignment:
        True for opcodes that architecturally require 16-byte-aligned
        memory operands (``movaps``/``movapd``); the machine model charges
        a penalty (instead of faulting) for misaligned use, mirroring the
        unaligned-variant comparison studies.
    latency:
        Register-form result latency in core cycles.
    ports:
        Execution-port classes consumed by the register form.  Memory
        forms additionally consume ``"load"``/``"store"`` as classified
        per-instruction.
    """

    name: str
    kind: OpcodeKind
    bytes_moved: int = 0
    vector: bool = False
    requires_alignment: bool = False
    latency: int = 1
    ports: tuple[str, ...] = field(default=("alu",))

    @property
    def is_move(self) -> bool:
        return self.kind is OpcodeKind.MOVE

    @property
    def is_branch(self) -> bool:
        return self.kind is OpcodeKind.BRANCH


def _mov(name: str, nbytes: int, *, vector: bool, aligned: bool = False) -> OpcodeInfo:
    return OpcodeInfo(
        name=name,
        kind=OpcodeKind.MOVE,
        bytes_moved=nbytes,
        vector=vector,
        requires_alignment=aligned,
        latency=1,
        ports=(),  # register-to-register moves use any ALU port; memory
                   # forms are classified per-instruction as load/store.
    )


def _fp(name: str, kind: OpcodeKind, latency: int, port: str, *, vector: bool) -> OpcodeInfo:
    return OpcodeInfo(name=name, kind=kind, latency=latency, ports=(port,), vector=vector)


def _alu(name: str, latency: int = 1) -> OpcodeInfo:
    return OpcodeInfo(name=name, kind=OpcodeKind.INT_ALU, latency=latency, ports=("alu",))


def _br(name: str) -> OpcodeInfo:
    return OpcodeInfo(name=name, kind=OpcodeKind.BRANCH, latency=1, ports=("branch",))


_TABLE: dict[str, OpcodeInfo] = {}


def _register(info: OpcodeInfo) -> None:
    _TABLE[info.name] = info


# --- data movement -------------------------------------------------------
_register(_mov("movss", 4, vector=False))
_register(_mov("movsd", 8, vector=False))
_register(_mov("movaps", 16, vector=True, aligned=True))
_register(_mov("movapd", 16, vector=True, aligned=True))
_register(_mov("movups", 16, vector=True))
_register(_mov("movupd", 16, vector=True))
_register(_mov("movdqa", 16, vector=True, aligned=True))
_register(_mov("movdqu", 16, vector=True))
_register(_mov("mov", 8, vector=False))
_register(_mov("movq", 8, vector=False))
_register(_mov("movl", 4, vector=False))
_register(_mov("movd", 4, vector=False))

# --- SSE floating point --------------------------------------------------
for _n in ("addss", "addsd"):
    _register(_fp(_n, OpcodeKind.FP_ADD, 3, "fp_add", vector=False))
for _n in ("addps", "addpd", "subps", "subpd"):
    _register(_fp(_n, OpcodeKind.FP_ADD, 3, "fp_add", vector=True))
for _n in ("subss", "subsd"):
    _register(_fp(_n, OpcodeKind.FP_ADD, 3, "fp_add", vector=False))
for _n in ("mulss", "mulsd"):
    _register(_fp(_n, OpcodeKind.FP_MUL, 5, "fp_mul", vector=False))
for _n in ("mulps", "mulpd"):
    _register(_fp(_n, OpcodeKind.FP_MUL, 5, "fp_mul", vector=True))
for _n in ("xorps", "xorpd", "pxor"):
    _register(OpcodeInfo(_n, OpcodeKind.FP_MISC, latency=1, ports=("fp_add",), vector=True))

# --- scalar integer ------------------------------------------------------
for _n in ("add", "addq", "addl", "sub", "subq", "subl", "and", "or", "xor"):
    _register(_alu(_n))
for _n in ("inc", "incq", "incl", "dec", "decq", "decl", "neg"):
    _register(_alu(_n))
for _n in ("cmp", "cmpq", "cmpl", "test", "testq", "testl"):
    _register(_alu(_n))
_register(_alu("imul", latency=3))
_register(_alu("lea"))
_register(_alu("leaq"))

# --- control flow --------------------------------------------------------
for _n in ("jmp", "jge", "jg", "jl", "jle", "je", "jne", "jz", "jnz", "ja", "jae", "jb", "jbe", "js", "jns"):
    _register(_br(_n))

# --- software prefetch hints ---------------------------------------------
for _n in ("prefetcht0", "prefetcht1", "prefetcht2", "prefetchnta"):
    _register(OpcodeInfo(_n, OpcodeKind.PREFETCH, latency=0, ports=("load",)))

_register(OpcodeInfo("nop", OpcodeKind.NOP, latency=0, ports=()))
_register(OpcodeInfo("ret", OpcodeKind.BRANCH, latency=1, ports=("branch",)))


#: The move family indexed by (payload bytes, wants_vector, wants_aligned):
#: used by the move-semantics expansion pass, which lets a kernel
#: description say "move N bytes" and have MicroCreator try the aligned,
#: unaligned, vector and scalar encodings (section 3.1).
MOVE_FAMILY: dict[tuple[int, bool, bool], str] = {
    (4, False, False): "movss",
    (4, False, True): "movss",
    (8, False, False): "movsd",
    (8, False, True): "movsd",
    (16, True, True): "movaps",
    (16, True, False): "movups",
}

#: Scalar/vector alternatives offering the same total payload: the
#: expansion pass uses this to compare e.g. four ``movss`` against one
#: ``movaps`` (the Fig. 11 vs. Fig. 12 comparison).
MOVE_ALTERNATIVES: dict[str, tuple[str, ...]] = {
    "movaps": ("movaps", "movups", "movss"),
    "movapd": ("movapd", "movupd", "movsd"),
    "movss": ("movss",),
    "movsd": ("movsd",),
}


def opcode_info(name: str) -> OpcodeInfo:
    """Look up the semantics of ``name``.

    Raises
    ------
    KeyError
        If the opcode is not modelled.  The error message lists close
        candidates to make template typos easy to spot.
    """
    try:
        return _TABLE[name]
    except KeyError:
        close = [k for k in _TABLE if k.startswith(name[:3])]
        raise KeyError(
            f"unmodelled opcode {name!r}" + (f"; did you mean one of {sorted(close)}?" if close else "")
        ) from None


def known_opcodes() -> frozenset[str]:
    """All modelled mnemonics."""
    return frozenset(_TABLE)


def iter_opcodes() -> tuple[OpcodeInfo, ...]:
    """Every modelled opcode, sorted by mnemonic.

    The characterization driver enumerates the ISA through this — a
    stable order is what makes probe campaigns (and the instruction
    tables solved from them) deterministic.
    """
    return tuple(_TABLE[name] for name in sorted(_TABLE))


#: Opcodes whose register form takes exactly one register operand.
UNARY_OPCODES = frozenset(
    {"inc", "incq", "incl", "dec", "decq", "decl", "neg"}
)

#: Register-form operands live in 32-bit GPRs for these mnemonics (the
#: ``l``-suffixed ALU forms plus the 4-byte scalar moves).
_GPR32_OPCODES = frozenset(
    {"addl", "subl", "incl", "decl", "cmpl", "testl", "movl", "movd"}
)

#: MOVE-family mnemonics whose operands are XMM registers.
_XMM_MOVES = frozenset(
    {"movss", "movsd", "movaps", "movapd", "movups", "movupd", "movdqa", "movdqu"}
)

#: Opcodes that only make sense with a memory operand in the modelled
#: ISA — no register-to-register form exists to probe.
MEMORY_ONLY_OPCODES = frozenset({"lea", "leaq"})


def operand_regclass(name: str) -> str | None:
    """Register class of ``name``'s register-form operands.

    Returns ``"xmm"``, ``"gpr64"``, ``"gpr32"``, or ``None`` when the
    opcode has no register form to speak of (branches, prefetch hints,
    ``nop``, and the memory-only address-generation opcodes).  The
    classes reflect the *modelled* semantics table: the characterization
    driver uses them to pick probe registers, and the parser/writer
    round-trip tests enumerate exactly these combinations.
    """
    info = opcode_info(name)
    if name in MEMORY_ONLY_OPCODES:
        return None
    if info.kind in (OpcodeKind.FP_ADD, OpcodeKind.FP_MUL, OpcodeKind.FP_MISC):
        return "xmm"
    if info.kind is OpcodeKind.MOVE:
        if name in _XMM_MOVES:
            return "xmm"
        return "gpr32" if name in _GPR32_OPCODES else "gpr64"
    if info.kind is OpcodeKind.INT_ALU:
        return "gpr32" if name in _GPR32_OPCODES else "gpr64"
    return None


def register_operand_count(name: str) -> int:
    """How many register operands ``name``'s register form takes.

    2 for the binary ALU/SSE/move forms, 1 for the unary ALU forms,
    0 for opcodes without a register form (``operand_regclass`` is
    ``None`` exactly when this is 0).
    """
    if operand_regclass(name) is None:
        return 0
    return 1 if name in UNARY_OPCODES else 2
