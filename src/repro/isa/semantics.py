"""Per-opcode semantics: classification, payload size, latency, port usage.

The table models the subset of x86-64 (SSE2 era, matching the paper's GCC
4.4.3 / Nehalem setting) that MicroCreator emits and the machine model
executes.  Latencies are register-form result latencies in core cycles,
calibrated to Nehalem; memory costs are added by the machine model from the
cache hierarchy, so a load's total latency is ``info.latency`` (address
generation + L1 pipeline) only when it hits in L1.

Execution resources are abstract port *classes*; the machine config says how
many slots per cycle each class offers (e.g. Nehalem: one load port, one
store port, three ALU ports).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpcodeKind(enum.Enum):
    MOVE = "move"          # data movement (the mov* family)
    FP_ADD = "fp_add"      # SSE floating add/sub
    FP_MUL = "fp_mul"      # SSE floating multiply
    FP_MISC = "fp_misc"    # xorps & friends (zeroing idioms)
    INT_ALU = "int_alu"    # scalar integer ALU (add/sub/cmp/lea/...)
    BRANCH = "branch"      # conditional and unconditional jumps
    PREFETCH = "prefetch"  # software prefetch hints (prefetcht0/...)
    NOP = "nop"


@dataclass(frozen=True, slots=True)
class OpcodeInfo:
    """Static description of one opcode.

    Attributes
    ----------
    name:
        AT&T mnemonic.
    kind:
        Broad class used by scheduling and the port model.
    bytes_moved:
        Payload bytes per executed instruction for the MOVE family
        (``movss`` = 4, ``movsd`` = 8, ``movaps``/``movapd`` = 16);
        0 for non-moves.
    vector:
        True for packed SSE operations.
    requires_alignment:
        True for opcodes that architecturally require 16-byte-aligned
        memory operands (``movaps``/``movapd``); the machine model charges
        a penalty (instead of faulting) for misaligned use, mirroring the
        unaligned-variant comparison studies.
    latency:
        Register-form result latency in core cycles.
    ports:
        Execution-port classes consumed by the register form.  Memory
        forms additionally consume ``"load"``/``"store"`` as classified
        per-instruction.
    """

    name: str
    kind: OpcodeKind
    bytes_moved: int = 0
    vector: bool = False
    requires_alignment: bool = False
    latency: int = 1
    ports: tuple[str, ...] = field(default=("alu",))

    @property
    def is_move(self) -> bool:
        return self.kind is OpcodeKind.MOVE

    @property
    def is_branch(self) -> bool:
        return self.kind is OpcodeKind.BRANCH


def _mov(name: str, nbytes: int, *, vector: bool, aligned: bool = False) -> OpcodeInfo:
    return OpcodeInfo(
        name=name,
        kind=OpcodeKind.MOVE,
        bytes_moved=nbytes,
        vector=vector,
        requires_alignment=aligned,
        latency=1,
        ports=(),  # register-to-register moves use any ALU port; memory
                   # forms are classified per-instruction as load/store.
    )


def _fp(name: str, kind: OpcodeKind, latency: int, port: str, *, vector: bool) -> OpcodeInfo:
    return OpcodeInfo(name=name, kind=kind, latency=latency, ports=(port,), vector=vector)


def _alu(name: str, latency: int = 1) -> OpcodeInfo:
    return OpcodeInfo(name=name, kind=OpcodeKind.INT_ALU, latency=latency, ports=("alu",))


def _br(name: str) -> OpcodeInfo:
    return OpcodeInfo(name=name, kind=OpcodeKind.BRANCH, latency=1, ports=("branch",))


_TABLE: dict[str, OpcodeInfo] = {}


def _register(info: OpcodeInfo) -> None:
    _TABLE[info.name] = info


# --- data movement -------------------------------------------------------
_register(_mov("movss", 4, vector=False))
_register(_mov("movsd", 8, vector=False))
_register(_mov("movaps", 16, vector=True, aligned=True))
_register(_mov("movapd", 16, vector=True, aligned=True))
_register(_mov("movups", 16, vector=True))
_register(_mov("movupd", 16, vector=True))
_register(_mov("movdqa", 16, vector=True, aligned=True))
_register(_mov("movdqu", 16, vector=True))
_register(_mov("mov", 8, vector=False))
_register(_mov("movq", 8, vector=False))
_register(_mov("movl", 4, vector=False))
_register(_mov("movd", 4, vector=False))

# --- SSE floating point --------------------------------------------------
for _n in ("addss", "addsd"):
    _register(_fp(_n, OpcodeKind.FP_ADD, 3, "fp_add", vector=False))
for _n in ("addps", "addpd", "subps", "subpd"):
    _register(_fp(_n, OpcodeKind.FP_ADD, 3, "fp_add", vector=True))
for _n in ("subss", "subsd"):
    _register(_fp(_n, OpcodeKind.FP_ADD, 3, "fp_add", vector=False))
for _n in ("mulss", "mulsd"):
    _register(_fp(_n, OpcodeKind.FP_MUL, 5, "fp_mul", vector=False))
for _n in ("mulps", "mulpd"):
    _register(_fp(_n, OpcodeKind.FP_MUL, 5, "fp_mul", vector=True))
for _n in ("xorps", "xorpd", "pxor"):
    _register(OpcodeInfo(_n, OpcodeKind.FP_MISC, latency=1, ports=("fp_add",), vector=True))

# --- scalar integer ------------------------------------------------------
for _n in ("add", "addq", "addl", "sub", "subq", "subl", "and", "or", "xor"):
    _register(_alu(_n))
for _n in ("inc", "incq", "incl", "dec", "decq", "decl", "neg"):
    _register(_alu(_n))
for _n in ("cmp", "cmpq", "cmpl", "test", "testq", "testl"):
    _register(_alu(_n))
_register(_alu("imul", latency=3))
_register(_alu("lea"))
_register(_alu("leaq"))

# --- control flow --------------------------------------------------------
for _n in ("jmp", "jge", "jg", "jl", "jle", "je", "jne", "jz", "jnz", "ja", "jae", "jb", "jbe", "js", "jns"):
    _register(_br(_n))

# --- software prefetch hints ---------------------------------------------
for _n in ("prefetcht0", "prefetcht1", "prefetcht2", "prefetchnta"):
    _register(OpcodeInfo(_n, OpcodeKind.PREFETCH, latency=0, ports=("load",)))

_register(OpcodeInfo("nop", OpcodeKind.NOP, latency=0, ports=()))
_register(OpcodeInfo("ret", OpcodeKind.BRANCH, latency=1, ports=("branch",)))


#: The move family indexed by (payload bytes, wants_vector, wants_aligned):
#: used by the move-semantics expansion pass, which lets a kernel
#: description say "move N bytes" and have MicroCreator try the aligned,
#: unaligned, vector and scalar encodings (section 3.1).
MOVE_FAMILY: dict[tuple[int, bool, bool], str] = {
    (4, False, False): "movss",
    (4, False, True): "movss",
    (8, False, False): "movsd",
    (8, False, True): "movsd",
    (16, True, True): "movaps",
    (16, True, False): "movups",
}

#: Scalar/vector alternatives offering the same total payload: the
#: expansion pass uses this to compare e.g. four ``movss`` against one
#: ``movaps`` (the Fig. 11 vs. Fig. 12 comparison).
MOVE_ALTERNATIVES: dict[str, tuple[str, ...]] = {
    "movaps": ("movaps", "movups", "movss"),
    "movapd": ("movapd", "movupd", "movsd"),
    "movss": ("movss",),
    "movsd": ("movsd",),
}


def opcode_info(name: str) -> OpcodeInfo:
    """Look up the semantics of ``name``.

    Raises
    ------
    KeyError
        If the opcode is not modelled.  The error message lists close
        candidates to make template typos easy to spot.
    """
    try:
        return _TABLE[name]
    except KeyError:
        close = [k for k in _TABLE if k.startswith(name[:3])]
        raise KeyError(
            f"unmodelled opcode {name!r}" + (f"; did you mean one of {sorted(close)}?" if close else "")
        ) from None


def known_opcodes() -> frozenset[str]:
    """All modelled mnemonics."""
    return frozenset(_TABLE)
