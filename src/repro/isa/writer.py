"""AT&T-syntax assembly emission.

The writer produces text in the style of the paper's Fig. 8::

    .L6:
    #Unrolling iterations
    movaps %xmm0, 0(%rsi)
    movaps 16(%rsi), %xmm1
    #Induction variables
    add $48, %rsi
    sub $12, %rdi
    jge .L6

plus, when asked for a complete file, the surrounding function scaffolding
for the MicroLauncher kernel ABI ``int name(int n, void *a0, ...)``.
"""

from __future__ import annotations

from repro.isa.instructions import (
    AsmProgram,
    Comment,
    Directive,
    Instruction,
    LabelDef,
)
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)


def format_operand(op: Operand) -> str:
    """Render a single operand in AT&T syntax."""
    if isinstance(op, RegisterOperand):
        return str(op.reg)
    if isinstance(op, ImmediateOperand):
        return f"${op.value}"
    if isinstance(op, LabelOperand):
        return op.name
    if isinstance(op, MemoryOperand):
        base = str(op.base)
        if op.index is not None:
            inner = f"({base},{op.index},{op.scale})"
        else:
            inner = f"({base})"
        return f"{op.offset}{inner}" if op.offset else inner
    raise TypeError(f"unknown operand type {type(op).__name__}")


def format_instruction(instr: Instruction) -> str:
    """Render one instruction line (without indentation or newline)."""
    text = instr.opcode
    if instr.operands:
        text += " " + ", ".join(format_operand(op) for op in instr.operands)
    if instr.comment:
        text += f"  # {instr.comment}"
    return text


def write_program(program: AsmProgram, *, full_file: bool = False, indent: str = "") -> str:
    """Render a program to assembly text.

    Parameters
    ----------
    program:
        The kernel to render.
    full_file:
        When true, wrap the items in ``.text``/``.globl`` scaffolding and a
        ``ret`` epilogue so the output is a self-contained ``.s`` file whose
        entry point follows the MicroLauncher kernel ABI.
    indent:
        Prefix applied to instruction lines (labels stay in column 0).
    """
    lines: list[str] = []
    if full_file:
        lines.append("\t.text")
        lines.append(f"\t.globl {program.name}")
        lines.append(f"\t.type {program.name}, @function")
        lines.append(f"{program.name}:")
    for item in program.items:
        if isinstance(item, LabelDef):
            lines.append(f"{item.name}:")
        elif isinstance(item, Directive):
            lines.append(item.text)
        elif isinstance(item, Comment):
            lines.append(f"#{item.text}")
        elif isinstance(item, Instruction):
            lines.append(indent + format_instruction(item))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown asm item {type(item).__name__}")
    if full_file:
        if not any(
            isinstance(it, Instruction) and it.opcode == "ret" for it in program.items
        ):
            lines.append(indent + "ret")
        lines.append(f"\t.size {program.name}, .-{program.name}")
    return "\n".join(lines) + "\n"
