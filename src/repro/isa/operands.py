"""Instruction operands in AT&T order (sources first, destination last)."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

from repro.isa.registers import LogicalReg, PhysReg

AnyReg = Union[PhysReg, LogicalReg]


class Operand:
    """Base class for instruction operands (marker; operands are frozen)."""

    __slots__ = ()

    def registers(self) -> tuple[AnyReg, ...]:
        """All registers referenced by this operand."""
        return ()

    def substitute(self, mapping: dict[str, AnyReg]) -> "Operand":
        """Return a copy with logical register names rewritten via ``mapping``.

        Unmapped logical registers are left in place so that substitution
        passes can run incrementally.
        """
        return self


def _subst_reg(reg: AnyReg, mapping: dict[str, AnyReg]) -> AnyReg:
    if isinstance(reg, LogicalReg) and reg.name in mapping:
        return mapping[reg.name]
    return reg


@dataclass(frozen=True, slots=True)
class RegisterOperand(Operand):
    """A direct register operand, e.g. ``%xmm1`` or logical ``r1``."""

    reg: AnyReg

    def registers(self) -> tuple[AnyReg, ...]:
        return (self.reg,)

    def substitute(self, mapping: dict[str, AnyReg]) -> "RegisterOperand":
        return RegisterOperand(_subst_reg(self.reg, mapping))


@dataclass(frozen=True, slots=True)
class MemoryOperand(Operand):
    """A memory reference ``offset(base, index, scale)``.

    Only the forms MicroCreator emits are supported: a base register with a
    constant byte offset, optionally an index register with a power-of-two
    scale.
    """

    base: AnyReg
    offset: int = 0
    index: AnyReg | None = None
    scale: int = 1

    def __post_init__(self) -> None:
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"memory scale must be 1/2/4/8, got {self.scale}")

    def registers(self) -> tuple[AnyReg, ...]:
        if self.index is not None:
            return (self.base, self.index)
        return (self.base,)

    def substitute(self, mapping: dict[str, AnyReg]) -> "MemoryOperand":
        return replace(
            self,
            base=_subst_reg(self.base, mapping),
            index=_subst_reg(self.index, mapping) if self.index is not None else None,
        )

    def with_offset(self, offset: int) -> "MemoryOperand":
        """Copy of this operand with a different constant offset."""
        return replace(self, offset=offset)


@dataclass(frozen=True, slots=True)
class ImmediateOperand(Operand):
    """An immediate constant, rendered ``$value``."""

    value: int


@dataclass(frozen=True, slots=True)
class LabelOperand(Operand):
    """A branch target label, e.g. ``.L6``."""

    name: str
