"""Instruction IR nodes and the assembly-program container."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Union

from repro.isa.operands import (
    AnyReg,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.semantics import OpcodeInfo, OpcodeKind, opcode_info

#: Opcodes whose last operand is read but not written (flag setters).
_READ_ONLY_DEST = frozenset({"cmp", "cmpq", "cmpl", "test", "testq", "testl"})


@dataclass(frozen=True, slots=True)
class Instruction:
    """One machine instruction with operands in AT&T order (src..., dst)."""

    opcode: str
    operands: tuple[Operand, ...] = ()
    comment: str | None = None

    def __post_init__(self) -> None:
        # Validate the opcode eagerly so malformed templates fail at
        # construction, not deep inside a pass.
        opcode_info(self.opcode)

    # -- classification ---------------------------------------------------

    @property
    def info(self) -> OpcodeInfo:
        return opcode_info(self.opcode)

    @property
    def memory_operands(self) -> tuple[MemoryOperand, ...]:
        return tuple(op for op in self.operands if isinstance(op, MemoryOperand))

    @property
    def is_load(self) -> bool:
        """True if the instruction reads memory.

        In AT&T syntax a memory operand in any non-destination slot is a
        read; flag-setting opcodes (``cmp``) read even their last operand.
        """
        if not self.operands or self.info.kind is OpcodeKind.PREFETCH:
            return False
        srcs = self.operands if self.opcode in _READ_ONLY_DEST else self.operands[:-1]
        if any(isinstance(op, MemoryOperand) for op in srcs):
            return True
        # Read-modify-write memory destination (e.g. ``add $1, (%rsi)``).
        if (
            isinstance(self.operands[-1], MemoryOperand)
            and self.info.kind is not OpcodeKind.MOVE
            and self.opcode not in _READ_ONLY_DEST
        ):
            return True
        return False

    @property
    def is_store(self) -> bool:
        """True if the instruction writes memory (memory destination)."""
        if (
            not self.operands
            or self.opcode in _READ_ONLY_DEST
            or self.info.kind is OpcodeKind.PREFETCH
        ):
            return False
        return isinstance(self.operands[-1], MemoryOperand)

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def branch_target(self) -> str | None:
        for op in self.operands:
            if isinstance(op, LabelOperand):
                return op.name
        return None

    @property
    def bytes_moved(self) -> int:
        """Payload bytes transferred if this is a memory move, else 0."""
        if self.info.is_move and (self.is_load or self.is_store):
            return self.info.bytes_moved
        return 0

    # -- dataflow ----------------------------------------------------------

    def registers_read(self) -> tuple[AnyReg, ...]:
        """Registers whose values this instruction consumes.

        Address registers inside memory operands are always reads.  The
        destination register is a read for everything except pure moves
        (``mov`` overwrites; ``add`` accumulates).
        """
        if not self.operands:
            return ()
        if self._is_zeroing_idiom():
            return ()  # xor r, r depends on nothing
        reads: list[AnyReg] = []
        for op in self.operands[:-1]:
            reads.extend(op.registers())
        last = self.operands[-1]
        if isinstance(last, MemoryOperand):
            reads.extend(last.registers())
        elif isinstance(last, RegisterOperand):
            dest_is_read = (
                self.info.kind is not OpcodeKind.MOVE or self.opcode in _READ_ONLY_DEST
            )
            if dest_is_read and not self._is_zeroing_idiom():
                reads.append(last.reg)
        return tuple(reads)

    def registers_written(self) -> tuple[AnyReg, ...]:
        """Registers this instruction defines."""
        if not self.operands or self.opcode in _READ_ONLY_DEST or self.is_branch:
            return ()
        last = self.operands[-1]
        if isinstance(last, RegisterOperand):
            return (last.reg,)
        return ()

    def _is_zeroing_idiom(self) -> bool:
        """``xorps %xmm0, %xmm0`` breaks the dependence on its source."""
        if self.opcode not in ("xor", "xorps", "xorpd", "pxor") or len(self.operands) != 2:
            return False
        a, b = self.operands
        return (
            isinstance(a, RegisterOperand)
            and isinstance(b, RegisterOperand)
            and a.reg == b.reg
        )

    # -- rewriting ----------------------------------------------------------

    def substitute(self, mapping: dict[str, AnyReg]) -> "Instruction":
        """Rewrite logical registers through ``mapping``."""
        return replace(self, operands=tuple(op.substitute(mapping) for op in self.operands))

    def with_operands(self, operands: Iterable[Operand]) -> "Instruction":
        return replace(self, operands=tuple(operands))

    def with_opcode(self, opcode: str) -> "Instruction":
        return replace(self, opcode=opcode)

    def with_comment(self, comment: str | None) -> "Instruction":
        return replace(self, comment=comment)


@dataclass(frozen=True, slots=True)
class LabelDef:
    """A label definition line, e.g. ``.L6:``."""

    name: str


@dataclass(frozen=True, slots=True)
class Directive:
    """An assembler directive line kept verbatim, e.g. ``.text``."""

    text: str


@dataclass(frozen=True, slots=True)
class Comment:
    """A standalone comment line."""

    text: str


AsmItem = Union[Instruction, LabelDef, Directive, Comment]


@dataclass(slots=True)
class AsmProgram:
    """A generated assembly kernel: items plus descriptive metadata.

    ``metadata`` records how the variant was produced (unroll factor,
    instruction mix, stride, ...) so analysis can group results the way
    the paper's figures do.
    """

    name: str
    items: list[AsmItem] = field(default_factory=list)
    metadata: dict[str, object] = field(default_factory=dict)

    def instructions(self) -> Iterator[Instruction]:
        for item in self.items:
            if isinstance(item, Instruction):
                yield item

    def __len__(self) -> int:
        return sum(1 for _ in self.instructions())

    def kernel_loop(self) -> tuple[str, list[Instruction]]:
        """Extract the innermost loop: its label and body instructions.

        The loop is identified as the last backward branch whose target
        label is defined earlier in the stream — the structure every
        MicroCreator kernel has.

        Returns
        -------
        (label, body)
            ``body`` includes the closing branch.

        Raises
        ------
        ValueError
            If the program contains no backward branch.
        """
        label_pos: dict[str, int] = {}
        for i, item in enumerate(self.items):
            if isinstance(item, LabelDef):
                label_pos[item.name] = i
        for i in range(len(self.items) - 1, -1, -1):
            item = self.items[i]
            if (
                isinstance(item, Instruction)
                and item.is_branch
                and item.branch_target in label_pos
                and label_pos[item.branch_target] < i
            ):
                start = label_pos[item.branch_target]
                body = [
                    it for it in self.items[start + 1 : i + 1] if isinstance(it, Instruction)
                ]
                return item.branch_target, body
        raise ValueError(f"program {self.name!r} has no kernel loop")

    def copy(self) -> "AsmProgram":
        return AsmProgram(self.name, list(self.items), dict(self.metadata))
