"""AT&T-syntax assembly parsing.

Round-trips :mod:`repro.isa.writer` output and accepts compiler-style text
such as the paper's Fig. 2 (``movsd (%rdx,%rax,8), %xmm0`` ...).  The
parser is intentionally strict about what it understands — unknown opcodes
raise, since the machine model could not execute them anyway — but lenient
about layout (whitespace, blank lines, ``#`` comments, directives).
"""

from __future__ import annotations

import re

from repro.isa.instructions import (
    AsmItem,
    AsmProgram,
    Comment,
    Directive,
    Instruction,
    LabelDef,
)
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
)
from repro.isa.operands import RegisterOperand
from repro.isa.registers import parse_register
from repro.isa.semantics import known_opcodes, opcode_info


class AsmParseError(ValueError):
    """Raised on malformed assembly, with line information."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


_MEM_RE = re.compile(
    r"^(?P<offset>-?\d+)?\(\s*(?P<base>%[a-z0-9]+)"
    r"(?:\s*,\s*(?P<index>%[a-z0-9]+)\s*(?:,\s*(?P<scale>[1248]))?)?\s*\)$"
)
_LABEL_RE = re.compile(r"^(?P<name>[.A-Za-z_][\w.$]*):$")


def _parse_operand(text: str, *, branch: bool, line_no: int, line: str) -> Operand:
    text = text.strip()
    if not text:
        raise AsmParseError("empty operand", line_no, line)
    if text.startswith("$"):
        try:
            return ImmediateOperand(int(text[1:], 0))
        except ValueError:
            raise AsmParseError(f"bad immediate {text!r}", line_no, line) from None
    if text.startswith("%"):
        try:
            return RegisterOperand(parse_register(text))
        except ValueError as exc:
            raise AsmParseError(str(exc), line_no, line) from None
    m = _MEM_RE.match(text)
    if m:
        try:
            base = parse_register(m.group("base"))
            index = parse_register(m.group("index")) if m.group("index") else None
        except ValueError as exc:
            raise AsmParseError(str(exc), line_no, line) from None
        return MemoryOperand(
            base=base,
            offset=int(m.group("offset") or 0),
            index=index,
            scale=int(m.group("scale") or 1),
        )
    if branch:
        return LabelOperand(text)
    raise AsmParseError(f"cannot parse operand {text!r}", line_no, line)


def _split_operands(text: str) -> list[str]:
    """Split an operand list on commas not inside parentheses."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def parse_instruction(text: str, *, line_no: int = 0) -> Instruction:
    """Parse a single instruction line (no label / directive handling)."""
    line = text
    code = text.split("#", 1)[0].strip()
    comment = text.split("#", 1)[1].strip() if "#" in text else None
    if not code:
        raise AsmParseError("no instruction on line", line_no, line)
    fields = code.split(None, 1)
    opcode = fields[0]
    if opcode not in known_opcodes():
        raise AsmParseError(f"unmodelled opcode {opcode!r}", line_no, line)
    is_branch = opcode_info(opcode).is_branch
    operand_texts = _split_operands(fields[1]) if len(fields) > 1 else []
    operands = tuple(
        _parse_operand(t, branch=is_branch, line_no=line_no, line=line) for t in operand_texts
    )
    return Instruction(opcode, operands, comment=comment)


def parse_asm(text: str, *, name: str = "kernel") -> AsmProgram:
    """Parse assembly text into an :class:`AsmProgram`.

    ``.globl``/``.type``/function-name scaffolding emitted by
    :func:`repro.isa.writer.write_program` is recognised: the first
    ``.globl`` symbol becomes the program name and its defining label is
    not kept as a loop label.
    """
    items: list[AsmItem] = []
    program_name = name
    globl_symbol: str | None = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            items.append(Comment(stripped[1:]))
            continue
        if stripped.startswith("."):
            m = _LABEL_RE.match(stripped)
            if m:
                items.append(LabelDef(m.group("name")))
            else:
                if stripped.startswith(".globl"):
                    globl_symbol = stripped.split()[-1]
                    program_name = globl_symbol
                items.append(Directive("\t" + stripped))
            continue
        m = _LABEL_RE.match(stripped)
        if m:
            if m.group("name") == globl_symbol:
                continue  # function entry label, not part of the kernel body
            items.append(LabelDef(m.group("name")))
            continue
        items.append(parse_instruction(stripped, line_no=line_no))
    # Drop the scaffolding directives: they carry no semantics for the model.
    items = [it for it in items if not isinstance(it, Directive)]
    return AsmProgram(program_name, items)
