"""x86-64 instruction-set model.

This subpackage is the ISA substrate shared by MicroCreator (which *emits*
instruction streams) and the machine model (which *executes* them).  It
provides:

- :mod:`repro.isa.registers` -- physical and logical register descriptions,
- :mod:`repro.isa.operands` -- register / memory / immediate / label operands,
- :mod:`repro.isa.instructions` -- the :class:`Instruction` IR node and the
  :class:`AsmProgram` container,
- :mod:`repro.isa.semantics` -- the per-opcode semantics table (bytes moved,
  load/store classification, latency class, execution-port usage),
- :mod:`repro.isa.writer` -- AT&T-syntax assembly emission,
- :mod:`repro.isa.parser` -- AT&T-syntax assembly parsing (round-trips the
  writer's output, and accepts GCC-style output such as the paper's Fig. 2).
"""

from repro.isa.registers import (
    RegClass,
    PhysReg,
    LogicalReg,
    GPR64_POOL,
    XMM_POOL,
    parse_register,
    widen_to_64,
)
from repro.isa.operands import (
    Operand,
    RegisterOperand,
    MemoryOperand,
    ImmediateOperand,
    LabelOperand,
)
from repro.isa.instructions import Instruction, LabelDef, Directive, Comment, AsmProgram
from repro.isa.semantics import (
    OpcodeInfo,
    OpcodeKind,
    opcode_info,
    known_opcodes,
    MOVE_FAMILY,
)
from repro.isa.writer import format_operand, format_instruction, write_program
from repro.isa.parser import parse_asm, parse_instruction, AsmParseError

__all__ = [
    "RegClass",
    "PhysReg",
    "LogicalReg",
    "GPR64_POOL",
    "XMM_POOL",
    "parse_register",
    "widen_to_64",
    "Operand",
    "RegisterOperand",
    "MemoryOperand",
    "ImmediateOperand",
    "LabelOperand",
    "Instruction",
    "LabelDef",
    "Directive",
    "Comment",
    "AsmProgram",
    "OpcodeInfo",
    "OpcodeKind",
    "opcode_info",
    "known_opcodes",
    "MOVE_FAMILY",
    "format_operand",
    "format_instruction",
    "write_program",
    "parse_asm",
    "parse_instruction",
    "AsmParseError",
]
