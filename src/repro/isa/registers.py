"""Register descriptions: physical x86-64 registers and logical placeholders.

MicroCreator kernel descriptions name registers *logically* (``r0``, ``r1``,
...); the register-allocation pass later binds each logical name to a
physical register (``%rsi``, ``%rdi``, ...) exactly as the paper describes
("The hardware detection system associates *r1* to a physical register such
as *%rsi* or *%rdi*", section 3.1).

XMM register *ranges* (``<phyName>%xmm</phyName><min>0</min><max>8</max>``)
are represented by :class:`RegRange` in :mod:`repro.spec`; after unrolling,
each unroll iteration receives a distinct register from the range to break
dependences, producing plain :class:`PhysReg` operands here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class RegClass(enum.Enum):
    """Architectural register class."""

    GPR64 = "gpr64"
    GPR32 = "gpr32"
    XMM = "xmm"

    @property
    def width_bytes(self) -> int:
        """Width of a register of this class in bytes."""
        return {RegClass.GPR64: 8, RegClass.GPR32: 4, RegClass.XMM: 16}[self]


#: 64-bit general-purpose register names, in the order the register
#: allocator hands them out.  ``%rsi``/``%rdi`` lead because the paper's
#: examples (Fig. 8) use them for the array pointer and the loop counter.
GPR64_NAMES = (
    "%rsi",
    "%rdi",
    "%rdx",
    "%rcx",
    "%r8",
    "%r9",
    "%r10",
    "%r11",
    "%rax",
    "%rbx",
    "%r12",
    "%r13",
    "%r14",
    "%r15",
    "%rbp",
    "%rsp",
)

GPR32_NAMES = (
    "%esi",
    "%edi",
    "%edx",
    "%ecx",
    "%r8d",
    "%r9d",
    "%r10d",
    "%r11d",
    "%eax",
    "%ebx",
    "%r12d",
    "%r13d",
    "%r14d",
    "%r15d",
    "%ebp",
    "%esp",
)

XMM_NAMES = tuple(f"%xmm{i}" for i in range(16))

#: Mapping from each 32-bit GPR name to its 64-bit parent.
_GPR32_TO_64 = dict(zip(GPR32_NAMES, GPR64_NAMES))
_GPR64_TO_32 = dict(zip(GPR64_NAMES, GPR32_NAMES))


@dataclass(frozen=True, slots=True)
class PhysReg:
    """A concrete architectural register, e.g. ``%rsi`` or ``%xmm3``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name.startswith("%"):
            raise ValueError(f"physical register name must start with '%': {self.name!r}")

    @property
    def regclass(self) -> RegClass:
        if self.name in GPR64_NAMES:
            return RegClass.GPR64
        if self.name in GPR32_NAMES:
            return RegClass.GPR32
        if self.name in XMM_NAMES:
            return RegClass.XMM
        raise ValueError(f"unknown physical register {self.name!r}")

    @property
    def canonical64(self) -> "PhysReg":
        """The 64-bit architectural register backing this name.

        ``%eax`` and ``%rax`` alias the same architectural register; the
        machine model tracks state per canonical name.  XMM registers are
        their own canonical form.
        """
        if self.name in _GPR32_TO_64:
            return PhysReg(_GPR32_TO_64[self.name])
        return self

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True, slots=True)
class LogicalReg:
    """A logical register placeholder from a kernel description (``r0``...).

    Logical registers carry no class by themselves; the allocation pass
    infers GPR vs. XMM from how the register is used (address computation
    vs. data movement).
    """

    name: str

    def __post_init__(self) -> None:
        if self.name.startswith("%"):
            raise ValueError(
                f"logical register must not start with '%' (got {self.name!r}); "
                "use PhysReg for physical names"
            )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


#: Allocation pools.  ``%rsp``/``%rbp`` are excluded: the launcher's
#: generated functions must keep a valid stack frame.  ``%rax`` is excluded
#: because the kernel ABI (section 4.4) reserves ``%eax`` for the returned
#: iteration count.
GPR64_POOL = tuple(r for r in GPR64_NAMES if r not in ("%rsp", "%rbp", "%rax"))
XMM_POOL = XMM_NAMES

ALL_REG_NAMES = frozenset(GPR64_NAMES) | frozenset(GPR32_NAMES) | frozenset(XMM_NAMES)


def parse_register(text: str) -> PhysReg | LogicalReg:
    """Parse a register token into a physical or logical register.

    ``%``-prefixed names must be known architectural registers; anything
    else is treated as a logical name.

    >>> parse_register("%rsi")
    PhysReg(name='%rsi')
    >>> parse_register("r1")
    LogicalReg(name='r1')
    """
    text = text.strip()
    if text.startswith("%"):
        if text not in ALL_REG_NAMES:
            raise ValueError(f"unknown physical register {text!r}")
        return PhysReg(text)
    return LogicalReg(text)


def widen_to_64(reg: PhysReg) -> PhysReg:
    """Return the 64-bit name aliasing ``reg`` (identity for XMM/GPR64)."""
    return reg.canonical64
