"""Miniature C loop-nest front-end.

The paper's motivation study (section 2) compares GCC-compiled C (the
naive matrix multiply of Fig. 1, whose ``-O3`` inner loop is Fig. 2)
against MicroCreator-generated kernels.  We cannot run GCC output, so this
package closes the loop inside the simulation: a small loop-nest AST
(:mod:`repro.compiler.ast`) and a naive lowering pass
(:mod:`repro.compiler.lower`) that translate C-like inner loops into the
same ISA the machine model executes — including a compiler-hint unroll
knob, so "rewrite with compiler-assisted unrolling" is expressible.

The front-end is deliberately naive (no tiling, no vectorization beyond
what the source states): its job is to reproduce what ``gcc -O3`` emits
for these simple loops, not to be a good compiler.
"""

from repro.compiler.ast import (
    Add,
    ArrayDecl,
    ArrayRef,
    Assign,
    Accumulate,
    Const,
    Expr,
    InnerLoop,
    LoweringError,
    Mul,
    ScalarVar,
    Stmt,
)
from repro.compiler.lower import CompiledKernel, lower_loop
from repro.compiler.cparse import CParseError, ParsedKernel, compile_c, parse_c
from repro.compiler.fparse import (
    FortranParseError,
    ParsedFortranKernel,
    compile_fortran,
    parse_fortran,
)

__all__ = [
    "Add",
    "ArrayDecl",
    "ArrayRef",
    "Assign",
    "Accumulate",
    "Const",
    "Expr",
    "InnerLoop",
    "LoweringError",
    "Mul",
    "ScalarVar",
    "Stmt",
    "CompiledKernel",
    "lower_loop",
    "CParseError",
    "ParsedKernel",
    "compile_c",
    "parse_c",
    "FortranParseError",
    "ParsedFortranKernel",
    "compile_fortran",
    "parse_fortran",
]
