"""Naive lowering from the loop-nest AST to the simulated ISA.

Reproduces the shape of ``gcc -O3 -fno-unroll-loops`` on simple scalar
loops: one load per array read (with memory-operand fusion into the
arithmetic where x86 allows it), scalar SSE arithmetic (``mulsd`` /
``addsd``), a store per iteration for pointer-carried accumulators, one
pointer induction per array stream, and a counted loop closed by
``sub``/``jge``.  A compiler-hint unroll factor replicates the body with
bumped offsets and rotated temporaries — the "compiler assisted hints to
correctly unroll the code" of section 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ast import (
    Accumulate,
    Add,
    ArrayDecl,
    ArrayRef,
    Assign,
    Const,
    Expr,
    InnerLoop,
    LoweringError,
    Mul,
    ScalarVar,
)
from repro.isa.instructions import AsmProgram, Comment, Instruction, LabelDef
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    RegisterOperand,
)
from repro.isa.registers import PhysReg

_POINTER_POOL = ("%rsi", "%rdx", "%rcx", "%r8", "%r9", "%r10", "%r11")
_COUNTER = "%rdi"
_LOOP_LABEL = ".L3"

#: Temporary XMM registers rotate through the low half; persistent
#: accumulators live in the high half so unrolling never clobbers them.
_TEMP_XMM = tuple(f"%xmm{i}" for i in range(8))
_PERSIST_XMM = tuple(f"%xmm{i}" for i in range(8, 16))


@dataclass(slots=True)
class _Stream:
    """One pointer walk: a distinct (array, stride) combination."""

    register: str
    array: ArrayDecl
    stride_bytes: int  # per source iteration


@dataclass(slots=True)
class CompiledKernel:
    """The mini front-end's output: launchable like any generated kernel."""

    name: str
    program: AsmProgram
    loop: InnerLoop
    n: int
    unroll: int
    streams: dict[str, _Stream] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)

    def asm_text(self, *, full_file: bool = False) -> str:
        from repro.isa.writer import write_program

        return write_program(self.program, full_file=full_file)

    def stream_for_array(self, array_name: str) -> list[str]:
        """Pointer registers walking ``array_name`` (one per stride)."""
        return [r for r, s in self.streams.items() if s.array.name == array_name]


class _Lowering:
    def __init__(self, loop: InnerLoop, n: int, unroll: int) -> None:
        if unroll < 1:
            raise LoweringError(f"unroll factor must be >= 1, got {unroll}")
        self.loop = loop
        self.n = n
        self.unroll = unroll
        self.streams: dict[tuple[str, int], _Stream] = {}
        self.persistent: dict[str, str] = {}  # scalar/accumulator name -> xmm
        self._pointer_pool = list(_POINTER_POOL)
        self._persist_pool = list(_PERSIST_XMM)
        self._temp_index = 0
        self.body: list[Instruction] = []

    # -- resource allocation ---------------------------------------------

    def _stream_for(self, ref: ArrayRef) -> _Stream:
        stride = ref.resolved_stride(self.n) * ref.array.element_size
        key = (ref.array.name, stride)
        if key not in self.streams:
            if not self._pointer_pool:
                raise LoweringError("out of pointer registers")
            self.streams[key] = _Stream(
                register=self._pointer_pool.pop(0),
                array=ref.array,
                stride_bytes=stride,
            )
        return self.streams[key]

    def _persistent_reg(self, name: str) -> str:
        if name not in self.persistent:
            if not self._persist_pool:
                raise LoweringError("out of accumulator registers")
            self.persistent[name] = self._persist_pool.pop(0)
        return self.persistent[name]

    def _fresh_temp(self, copy: int) -> str:
        reg = _TEMP_XMM[(self._temp_index + copy) % len(_TEMP_XMM)]
        self._temp_index += 1
        return reg

    # -- emission helpers ----------------------------------------------------

    @staticmethod
    def _mov_for(element_size: int) -> str:
        return "movss" if element_size == 4 else "movsd"

    @staticmethod
    def _arith_for(kind: str, element_size: int) -> str:
        suffix = "ss" if element_size == 4 else "sd"
        return ("mul" if kind == "mul" else "add") + suffix

    def _mem(self, ref: ArrayRef, copy: int) -> MemoryOperand:
        stream = self._stream_for(ref)
        offset = (
            ref.offset_elements * ref.array.element_size + copy * stream.stride_bytes
        )
        return MemoryOperand(base=PhysReg(stream.register), offset=offset)

    def _emit(self, opcode: str, *operands) -> None:
        self.body.append(Instruction(opcode, tuple(operands)))

    # -- expression lowering ----------------------------------------------

    def _lower_expr(self, expr: Expr, copy: int) -> str:
        """Lower ``expr`` into a register; returns the register name."""
        if isinstance(expr, ArrayRef):
            temp = self._fresh_temp(copy)
            self._emit(
                self._mov_for(expr.array.element_size),
                self._mem(expr, copy),
                RegisterOperand(PhysReg(temp)),
            )
            return temp
        if isinstance(expr, ScalarVar):
            return self._persistent_reg(expr.name)
        if isinstance(expr, Const):
            # Constants live in a persistent register, materialized outside
            # the loop (zeroed here, as GCC's xorps does).
            return self._persistent_reg(f"$const_{expr.value}")
        if isinstance(expr, (Mul, Add)):
            kind = "mul" if isinstance(expr, Mul) else "add"
            dest = self._lower_expr(expr.left, copy)
            esize = self._element_size_of(expr)
            # x86 folds a memory operand into the arithmetic op (Fig. 2's
            # ``mulsd (%r8), %xmm0``).
            if isinstance(expr.right, ArrayRef):
                self._emit(
                    self._arith_for(kind, esize),
                    self._mem(expr.right, copy),
                    RegisterOperand(PhysReg(dest)),
                )
            else:
                src = self._lower_expr(expr.right, copy)
                self._emit(
                    self._arith_for(kind, esize),
                    RegisterOperand(PhysReg(src)),
                    RegisterOperand(PhysReg(dest)),
                )
            return dest
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _element_size_of(self, expr: Expr) -> int:
        """Element width driving the ss/sd opcode choice.

        Array references carry their declared width; constants and bare
        scalars adapt to whatever they combine with (a ``2.0f`` literal
        multiplying a float array stays single precision).
        """
        if isinstance(expr, ArrayRef):
            return expr.array.element_size
        if isinstance(expr, (Mul, Add)):
            width = max(
                self._width_or_zero(expr.left), self._width_or_zero(expr.right)
            )
            return width or 8
        return 8

    def _width_or_zero(self, expr: Expr) -> int:
        if isinstance(expr, ArrayRef):
            return expr.array.element_size
        if isinstance(expr, (Mul, Add)):
            return max(self._width_or_zero(expr.left), self._width_or_zero(expr.right))
        return 0

    # -- statement lowering ----------------------------------------------

    def _lower_stmt(self, stmt, copy: int) -> None:
        if isinstance(stmt, Accumulate):
            value = self._lower_expr(stmt.expr, copy)
            if isinstance(stmt.target, ScalarVar):
                acc = self._persistent_reg(stmt.target.name)
                esize = self._element_size_of(stmt.expr)
            elif isinstance(stmt.target, ArrayRef):
                if stmt.target.resolved_stride(self.n) != 0:
                    raise LoweringError(
                        "accumulating into a moving array reference is not a "
                        "loop-carried reduction; use Assign"
                    )
                acc = self._persistent_reg(f"@{stmt.target.array.name}")
                esize = stmt.target.array.element_size
            else:
                raise LoweringError(f"bad accumulate target {stmt.target!r}")
            self._emit(
                self._arith_for("add", esize),
                RegisterOperand(PhysReg(value)),
                RegisterOperand(PhysReg(acc)),
            )
            if isinstance(stmt.target, ArrayRef) and self.loop.store_target_each_iteration:
                # GCC cannot prove the pointer-carried accumulator dead, so
                # it stores it back every iteration (Fig. 2).
                self._emit(
                    self._mov_for(esize),
                    RegisterOperand(PhysReg(acc)),
                    self._mem(stmt.target, 0),
                )
            return
        if isinstance(stmt, Assign):
            value = self._lower_expr(stmt.expr, copy)
            if isinstance(stmt.target, ArrayRef):
                self._emit(
                    self._mov_for(stmt.target.array.element_size),
                    RegisterOperand(PhysReg(value)),
                    self._mem(stmt.target, copy),
                )
            elif isinstance(stmt.target, ScalarVar):
                acc = self._persistent_reg(stmt.target.name)
                self._emit(
                    "movsd",
                    RegisterOperand(PhysReg(value)),
                    RegisterOperand(PhysReg(acc)),
                )
            else:
                raise LoweringError(f"bad assign target {stmt.target!r}")
            return
        raise LoweringError(f"cannot lower statement {stmt!r}")

    # -- driver -------------------------------------------------------------

    def run(self, name: str) -> CompiledKernel:
        for copy in range(self.unroll):
            for stmt in self.loop.body:
                self._lower_stmt(stmt, copy)
        # Induction updates: one per moving stream, counter last.
        updates: list[Instruction] = []
        for stream in self.streams.values():
            step = stream.stride_bytes * self.unroll
            if step:
                updates.append(
                    Instruction(
                        "add" if step > 0 else "sub",
                        (
                            ImmediateOperand(abs(step)),
                            RegisterOperand(PhysReg(stream.register)),
                        ),
                    )
                )
        updates.append(
            Instruction(
                "sub",
                (ImmediateOperand(self.unroll), RegisterOperand(PhysReg(_COUNTER))),
            )
        )
        branch = Instruction("jge", (LabelOperand(_LOOP_LABEL),))

        items = [LabelDef(_LOOP_LABEL), Comment("loop body")]
        items.extend(self.body)
        items.append(Comment("induction variables"))
        items.extend(updates)
        items.append(branch)
        program = AsmProgram(name=name, items=items)
        streams_by_reg = {s.register: s for s in self.streams.values()}
        program.metadata.update(unroll=self.unroll, n=self.n, compiler="mini-c")
        return CompiledKernel(
            name=name,
            program=program,
            loop=self.loop,
            n=self.n,
            unroll=self.unroll,
            streams=streams_by_reg,
            metadata=dict(program.metadata),
        )


def lower_loop(
    loop: InnerLoop, *, n: int, unroll: int = 1, name: str = "compiled_kernel"
) -> CompiledKernel:
    """Lower an innermost loop at problem size ``n`` with a compiler-hint
    unroll factor."""
    return _Lowering(loop, n, unroll).run(name)
