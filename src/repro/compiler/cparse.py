"""A restricted C parser for kernel source (paper section 4.1).

"As input, the launcher accepts any assembly, **source code (C or
Fortran)**, object file, or even a dynamic library."  This module parses
the C subset those kernels live in — a function whose innermost counted
loop reads/writes arrays at affine indices — into the mini front-end's
AST, so C text flows through the same lowering as programmatically-built
loops::

    kernel = compile_c(source, n=200, unroll=4)
    launcher.run(kernel, options)

Accepted shape (deliberately close to the paper's Fig. 1 inner loop):

.. code-block:: c

    void kernel(int n, double *res, double *second, double *third)
    {
        int k;
        #pragma omp parallel for          /* optional, noted in metadata */
        for (k = 0; k < n; k++) {
            *res += second[k] * third[k * n];
        }
    }

Supported pieces:

- parameters: ``int n`` plus ``float*`` / ``double*`` arrays,
- one innermost ``for (k = 0; k < n; k++)`` (or ``++k``, ``k += 1``),
- statements ``lhs = expr;`` and ``lhs += expr;`` where ``lhs`` is
  ``*ptr`` or ``array[index]``,
- expressions over ``+`` and ``*`` with operands ``array[index]``,
  ``*ptr``, scalar variables, and numeric literals,
- indices ``k``, ``k + c``, ``k - c``, ``k * n``, ``k * c``, ``n * k``,
  ``c`` (affine in the loop variable),
- ``// ...`` and ``/* ... */`` comments, ``#pragma omp parallel for``.

Anything else raises :class:`CParseError` naming the offending token —
a kernel that silently lowered wrong would be worse than one rejected.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.compiler.ast import (
    Accumulate,
    Add,
    ArrayDecl,
    ArrayRef,
    Assign,
    Const,
    Expr,
    InnerLoop,
    Mul,
    ScalarVar,
    Stmt,
)
from repro.compiler.lower import CompiledKernel, lower_loop


class CParseError(ValueError):
    """The source is outside the supported C subset."""


_TOKEN_RE = re.compile(
    r"\s*(?:(?P<num>\d+\.?\d*)|(?P<id>[A-Za-z_]\w*)"
    r"|(?P<op>\+=|\+\+|[-+*/=;,(){}\[\]<])|(?P<bad>\S))"
)

_KEYWORDS = frozenset({"void", "int", "float", "double", "for", "return"})


def _tokenize(source: str) -> list[str]:
    source = re.sub(r"//[^\n]*", " ", source)
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.DOTALL)
    tokens: list[str] = []
    for match in _TOKEN_RE.finditer(source):
        if match.group("bad"):
            raise CParseError(f"unexpected character {match.group('bad')!r}")
        token = match.group("num") or match.group("id") or match.group("op")
        if token:
            tokens.append(token)
    return tokens


@dataclass(slots=True)
class ParsedKernel:
    """A parsed C kernel: the loop, its arrays, and source-level facts."""

    name: str
    loop: InnerLoop
    arrays: dict[str, ArrayDecl]
    trip_symbol: str
    loop_var: str
    openmp: bool = False
    metadata: dict[str, object] = field(default_factory=dict)


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- primitives --------------------------------------------------------

    def peek(self, ahead: int = 0) -> str | None:
        index = self.pos + ahead
        return self.tokens[index] if index < len(self.tokens) else None

    def next(self) -> str:
        if self.pos >= len(self.tokens):
            raise CParseError("unexpected end of source")
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise CParseError(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    # -- grammar -------------------------------------------------------------

    def parse_function(self) -> ParsedKernel:
        self._skip_pragmas_before_function()
        return_type = self.next()
        if return_type not in ("void", "int"):
            raise CParseError(f"unsupported return type {return_type!r}")
        name = self.next()
        if name in _KEYWORDS:
            raise CParseError(f"bad function name {name!r}")
        self.expect("(")
        arrays, trip_symbol = self._parse_params()
        self.expect(")")
        self.expect("{")
        openmp = self._parse_body_preamble()
        loop_var, loop = self._parse_for(arrays, trip_symbol)
        self._parse_epilogue()
        return ParsedKernel(
            name=name,
            loop=loop,
            arrays=arrays,
            trip_symbol=trip_symbol,
            loop_var=loop_var,
            openmp=openmp,
        )

    def _skip_pragmas_before_function(self) -> None:
        # pragmas are stripped by the pragma scanner before tokenizing;
        # nothing to do, kept for symmetry/clarity.
        return

    def _parse_params(self) -> tuple[dict[str, ArrayDecl], str]:
        arrays: dict[str, ArrayDecl] = {}
        trip_symbol = "n"
        first = True
        while self.peek() != ")":
            if not first:
                self.expect(",")
            first = False
            ctype = self.next()
            if ctype == "int":
                trip_symbol = self.next()
            elif ctype in ("float", "double"):
                self.expect("*")
                name = self.next()
                arrays[name] = ArrayDecl(
                    name, element_size=4 if ctype == "float" else 8
                )
            else:
                raise CParseError(f"unsupported parameter type {ctype!r}")
        return arrays, trip_symbol

    def _parse_body_preamble(self) -> bool:
        """Local declarations before the loop; returns the OpenMP flag."""
        openmp = False
        while True:
            token = self.peek()
            if token == "__omp_parallel_for__":
                self.next()
                openmp = True
            elif token in ("int", "float", "double"):
                self.next()
                self.next()  # variable name
                while self.accept(","):
                    self.next()
                self.expect(";")
            else:
                return openmp

    def _parse_for(self, arrays, trip_symbol) -> tuple[str, InnerLoop]:
        self.expect("for")
        self.expect("(")
        loop_var = self.next()
        self.expect("=")
        if self.next() != "0":
            raise CParseError("loop must start at 0")
        self.expect(";")
        if self.next() != loop_var:
            raise CParseError("loop condition must test the loop variable")
        self.expect("<")
        bound = self.next()
        if bound != trip_symbol:
            raise CParseError(
                f"loop bound must be the trip-count parameter {trip_symbol!r}"
            )
        self.expect(";")
        self._parse_increment(loop_var)
        self.expect(")")
        body = self._parse_block(arrays, loop_var, trip_symbol)
        if not body:
            raise CParseError("empty loop body")
        return loop_var, InnerLoop(
            trip_var=loop_var,
            body=tuple(body),
            store_target_each_iteration=True,
        )

    def _parse_increment(self, loop_var: str) -> None:
        token = self.next()
        if token == "++" and self.next() == loop_var:
            return
        if token == loop_var:
            follow = self.next()
            if follow == "++":
                return
            if follow == "+=" and self.next() == "1":
                return
        raise CParseError("loop must increment by one")

    def _parse_block(self, arrays, loop_var, trip_symbol) -> list[Stmt]:
        statements: list[Stmt] = []
        if self.accept("{"):
            while not self.accept("}"):
                statements.append(self._parse_statement(arrays, loop_var, trip_symbol))
        else:
            statements.append(self._parse_statement(arrays, loop_var, trip_symbol))
        return statements

    def _parse_statement(self, arrays, loop_var, trip_symbol) -> Stmt:
        target = self._parse_lvalue(arrays, loop_var, trip_symbol)
        op = self.next()
        if op not in ("=", "+="):
            raise CParseError(f"unsupported assignment operator {op!r}")
        expr = self._parse_expr(arrays, loop_var, trip_symbol)
        self.expect(";")
        if op == "+=":
            return Accumulate(target, expr)
        return Assign(target, expr)

    def _parse_lvalue(self, arrays, loop_var, trip_symbol) -> Union[ArrayRef, ScalarVar]:
        if self.accept("*"):
            name = self.next()
            if name not in arrays:
                raise CParseError(f"*{name}: not an array parameter")
            return ArrayRef(arrays[name], stride_elements=0)
        name = self.next()
        if name in arrays:
            return self._parse_index(arrays[name], loop_var, trip_symbol)
        return ScalarVar(name)

    def _parse_expr(self, arrays, loop_var, trip_symbol) -> Expr:
        left = self._parse_term(arrays, loop_var, trip_symbol)
        while self.accept("+"):
            right = self._parse_term(arrays, loop_var, trip_symbol)
            left = Add(left, right)
        return left

    def _parse_term(self, arrays, loop_var, trip_symbol) -> Expr:
        left = self._parse_factor(arrays, loop_var, trip_symbol)
        while self.accept("*"):
            right = self._parse_factor(arrays, loop_var, trip_symbol)
            left = Mul(left, right)
        return left

    def _parse_factor(self, arrays, loop_var, trip_symbol) -> Expr:
        if self.accept("("):
            inner = self._parse_expr(arrays, loop_var, trip_symbol)
            self.expect(")")
            return inner
        if self.accept("*"):
            name = self.next()
            if name not in arrays:
                raise CParseError(f"*{name}: not an array parameter")
            return ArrayRef(arrays[name], stride_elements=0)
        token = self.next()
        if re.fullmatch(r"\d+\.?\d*", token):
            return Const(float(token))
        if token in arrays:
            return self._parse_index(arrays[token], loop_var, trip_symbol)
        if token in _KEYWORDS:
            raise CParseError(f"unexpected keyword {token!r} in expression")
        return ScalarVar(token)

    def _parse_index(self, array: ArrayDecl, loop_var, trip_symbol) -> ArrayRef:
        """``array[<affine index>]`` — the supported index forms."""
        self.expect("[")
        stride: Union[int, str] = 0
        offset = 0
        token = self.next()
        if token == loop_var:
            stride = 1
            if self.accept("*"):
                factor = self.next()
                if factor == trip_symbol:
                    stride = "n"
                elif factor.isdigit():
                    stride = int(factor)
                else:
                    raise CParseError(f"unsupported index factor {factor!r}")
            if self.accept("+"):
                offset = self._int_token()
            elif self.accept("-"):
                offset = -self._int_token()
        elif token == trip_symbol and self.accept("*"):
            if self.next() != loop_var:
                raise CParseError("index n*<var> must use the loop variable")
            stride = "n"
        elif token.isdigit():
            offset = int(token)
        else:
            raise CParseError(f"unsupported index expression at {token!r}")
        self.expect("]")
        return ArrayRef(array, stride_elements=stride, offset_elements=offset)

    def _int_token(self) -> int:
        token = self.next()
        if not token.isdigit():
            raise CParseError(f"expected integer, got {token!r}")
        return int(token)

    def _parse_epilogue(self) -> None:
        # Optional `return <scalar>;` then the closing brace.
        if self.accept("return"):
            self.next()
            self.expect(";")
        self.expect("}")
        if self.peek() is not None:
            raise CParseError(f"trailing tokens after function: {self.peek()!r}")


def parse_c(source: str) -> ParsedKernel:
    """Parse one C kernel function into its loop AST."""
    openmp_marker = " __omp_parallel_for__ "
    source, n_pragmas = re.subn(
        r"#\s*pragma\s+omp\s+parallel\s+for[^\n]*", openmp_marker, source
    )
    if re.search(r"#\s*pragma", source.replace("__omp_parallel_for__", "")):
        raise CParseError("only '#pragma omp parallel for' is supported")
    tokens = _tokenize(source)
    parsed = _Parser(tokens).parse_function()
    if n_pragmas:
        parsed.openmp = True
    return parsed


def compile_c(
    source: str, *, n: int, unroll: int = 1, name: str | None = None
) -> CompiledKernel:
    """Parse and lower a C kernel at problem size ``n``.

    The returned kernel launches like any other; ``metadata['openmp']``
    records a ``#pragma omp parallel for``, which callers can honour by
    running it through :meth:`MicroLauncher.run_openmp`.
    """
    parsed = parse_c(source)
    kernel = lower_loop(
        parsed.loop, n=n, unroll=unroll, name=name or f"{parsed.name}_n{n}_u{unroll}"
    )
    kernel.metadata["openmp"] = parsed.openmp
    kernel.program.metadata["openmp"] = parsed.openmp
    return kernel
