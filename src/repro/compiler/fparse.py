"""A restricted Fortran parser for kernel source (paper section 4.1).

The launcher "accepts any assembly, source code (C **or Fortran**)" —
this module handles the Fortran side, covering the fixed-stride DO-loop
kernels the paper's studies use::

    subroutine saxpy(n, y, x)
      integer n, i
      real y(n), x(n)
      do i = 1, n
        y(i) = y(i) + x(i) * 2.0
      end do
    end subroutine

Parsed into the same :class:`~repro.compiler.ast.InnerLoop` AST as the C
front-end, so both languages share one lowering.  Supported subset:

- ``subroutine name(args)`` ... ``end subroutine`` (case-insensitive),
- declarations ``integer ...``, ``real arr(n)``, ``real*8`` /
  ``double precision`` arrays (8-byte elements),
- one ``do var = 1, n`` ... ``end do`` loop (unit step),
- assignments ``lhs = expr`` over ``+`` and ``*`` with array references
  ``arr(index)``, scalars, and literals,
- indices ``i``, ``i+c``, ``i-c``, ``i*c``, ``i*n``, ``n*i``, ``c``
  (1-based, converted to 0-based offsets),
- ``! ...`` comments and ``!$omp parallel do`` directives.

Accumulations are recognized structurally: ``s = s + expr`` with a
scalar or stationary target becomes :class:`Accumulate`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Union

from repro.compiler.ast import (
    Accumulate,
    Add,
    ArrayDecl,
    ArrayRef,
    Assign,
    Const,
    Expr,
    InnerLoop,
    Mul,
    ScalarVar,
    Stmt,
)
from repro.compiler.lower import CompiledKernel, lower_loop


class FortranParseError(ValueError):
    """The source is outside the supported Fortran subset."""


@dataclass(slots=True)
class ParsedFortranKernel:
    """A parsed Fortran kernel."""

    name: str
    loop: InnerLoop
    arrays: dict[str, ArrayDecl]
    trip_symbol: str
    loop_var: str
    openmp: bool = False
    metadata: dict[str, object] = field(default_factory=dict)


_TYPE_SIZES = {
    "real": 4,
    "real*4": 4,
    "real*8": 8,
    "doubleprecision": 8,
}


def _strip_comment(line: str) -> str:
    # A '!' starts a comment unless it begins an OpenMP sentinel, which
    # the caller inspects before stripping.
    index = line.find("!")
    return line if index < 0 else line[:index]


def parse_fortran(source: str) -> ParsedFortranKernel:
    """Parse one Fortran subroutine into its loop AST."""
    lines = [ln.strip() for ln in source.lower().splitlines()]
    lines = [ln for ln in lines if ln]

    name = ""
    params: list[str] = []
    arrays: dict[str, ArrayDecl] = {}
    integers: set[str] = set()
    trip_symbol = "n"
    openmp = False
    loop_var = ""
    body_lines: list[str] = []
    state = "header"

    for raw in lines:
        if raw.startswith("!$omp"):
            if "parallel do" in raw:
                openmp = True
                continue
            raise FortranParseError(f"unsupported directive {raw!r}")
        line = _strip_comment(raw).strip()
        if not line:
            continue

        if state == "header":
            match = re.fullmatch(r"subroutine\s+(\w+)\s*\(([^)]*)\)", line)
            if not match:
                raise FortranParseError(f"expected 'subroutine name(...)', got {line!r}")
            name = match.group(1)
            params = [p.strip() for p in match.group(2).split(",") if p.strip()]
            state = "decls"
            continue

        if state == "decls":
            decl = re.fullmatch(r"(real\*?\d*|double\s+precision|integer)\s+(.*)", line)
            if decl:
                ftype = decl.group(1).replace(" ", "")
                entities = [e.strip() for e in re.split(r",(?![^()]*\))", decl.group(2))]
                for entity in entities:
                    array = re.fullmatch(r"(\w+)\s*\(\s*(\w+)\s*\)", entity)
                    if ftype == "integer":
                        integers.add(entity)
                    elif array:
                        size = _TYPE_SIZES.get(ftype)
                        if size is None:
                            raise FortranParseError(f"unsupported type {ftype!r}")
                        arrays[array.group(1)] = ArrayDecl(array.group(1), size)
                    else:
                        # scalar real: a register-resident temporary
                        pass
                continue
            state = "loop"
            # fall through to loop handling

        if state == "loop":
            do = re.fullmatch(r"do\s+(\w+)\s*=\s*1\s*,\s*(\w+)", line)
            if not do:
                raise FortranParseError(f"expected 'do var = 1, n', got {line!r}")
            loop_var = do.group(1)
            trip_symbol = do.group(2)
            if trip_symbol not in params and trip_symbol not in integers:
                raise FortranParseError(
                    f"loop bound {trip_symbol!r} is not a parameter"
                )
            state = "body"
            continue

        if state == "body":
            if line in ("end do", "enddo"):
                state = "epilogue"
                continue
            body_lines.append(line)
            continue

        if state == "epilogue":
            if line in ("end subroutine", "end", f"end subroutine {name}"):
                state = "done"
                continue
            raise FortranParseError(f"unexpected line after loop: {line!r}")

    if state != "done":
        raise FortranParseError(f"incomplete subroutine (stopped in {state!r})")
    if not body_lines:
        raise FortranParseError("empty loop body")

    statements = tuple(
        _parse_statement(line, arrays, loop_var, trip_symbol) for line in body_lines
    )
    loop = InnerLoop(
        trip_var=loop_var, body=statements, store_target_each_iteration=True
    )
    return ParsedFortranKernel(
        name=name,
        loop=loop,
        arrays=arrays,
        trip_symbol=trip_symbol,
        loop_var=loop_var,
        openmp=openmp,
    )


def _parse_statement(line: str, arrays, loop_var, trip_symbol) -> Stmt:
    if "=" not in line:
        raise FortranParseError(f"expected an assignment, got {line!r}")
    lhs_text, rhs_text = line.split("=", 1)
    target = _parse_operand(lhs_text.strip(), arrays, loop_var, trip_symbol)
    if isinstance(target, (Const,)):
        raise FortranParseError(f"cannot assign to {lhs_text.strip()!r}")
    expr = _parse_expr(rhs_text.strip(), arrays, loop_var, trip_symbol)
    # Recognize `s = s + ...` as an accumulation when the target is a
    # scalar (register accumulator).  Addition parses left-associative,
    # so for `s = s + a + b` the target sits at the bottom of the left
    # spine; peel it off and rebuild the remainder.
    if isinstance(target, ScalarVar):
        spine: list[Expr] = []
        node: Expr = expr
        while isinstance(node, Add):
            spine.append(node.right)
            node = node.left
        if node == target and spine:
            rest = spine[-1]
            for term in reversed(spine[:-1]):
                rest = Add(rest, term)
            return Accumulate(target, rest)
    return Assign(target, expr)


def _split_top(text: str, op: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == op and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    parts.append("".join(current))
    return [p.strip() for p in parts]


def _parse_expr(text: str, arrays, loop_var, trip_symbol) -> Expr:
    terms = _split_top(text, "+")
    expr: Expr | None = None
    for term in terms:
        factors = _split_top(term, "*")
        term_expr: Expr | None = None
        for factor in factors:
            operand = _parse_operand(factor, arrays, loop_var, trip_symbol)
            term_expr = operand if term_expr is None else Mul(term_expr, operand)
        if term_expr is None:
            raise FortranParseError(f"empty term in {text!r}")
        expr = term_expr if expr is None else Add(expr, term_expr)
    if expr is None:
        raise FortranParseError(f"empty expression {text!r}")
    return expr


def _parse_operand(text: str, arrays, loop_var, trip_symbol) -> Expr:
    text = text.strip()
    if text.startswith("(") and text.endswith(")"):
        return _parse_expr(text[1:-1], arrays, loop_var, trip_symbol)
    if re.fullmatch(r"\d+\.?\d*(?:[ed]0?)?", text):
        return Const(float(text.rstrip("ed0") or text))
    ref = re.fullmatch(r"(\w+)\s*\(([^)]*)\)", text)
    if ref:
        array_name = ref.group(1)
        if array_name not in arrays:
            raise FortranParseError(f"{array_name!r} is not a declared array")
        stride, offset = _parse_index(ref.group(2).strip(), loop_var, trip_symbol)
        return ArrayRef(
            arrays[array_name], stride_elements=stride, offset_elements=offset
        )
    if re.fullmatch(r"\w+", text):
        return ScalarVar(text)
    raise FortranParseError(f"cannot parse operand {text!r}")


def _parse_index(text: str, loop_var, trip_symbol) -> tuple[Union[int, str], int]:
    """Affine Fortran index -> (stride, 0-based offset)."""
    text = text.replace(" ", "")
    if text == loop_var:
        return 1, -1  # 1-based
    match = re.fullmatch(rf"{loop_var}([+-])(\d+)", text)
    if match:
        delta = int(match.group(2)) * (1 if match.group(1) == "+" else -1)
        return 1, delta - 1
    match = re.fullmatch(rf"{loop_var}\*(\w+)", text) or re.fullmatch(
        rf"(\w+)\*{loop_var}", text
    )
    if match:
        factor = match.group(1)
        if factor == trip_symbol:
            return "n", 0  # offset -stride elided: dominant-term model
        if factor.isdigit():
            return int(factor), 0
        raise FortranParseError(f"unsupported index factor {factor!r}")
    if text.isdigit():
        return 0, int(text) - 1
    raise FortranParseError(f"unsupported index {text!r}")


def compile_fortran(
    source: str, *, n: int, unroll: int = 1, name: str | None = None
) -> CompiledKernel:
    """Parse and lower a Fortran kernel at problem size ``n``."""
    parsed = parse_fortran(source)
    kernel = lower_loop(
        parsed.loop, n=n, unroll=unroll, name=name or f"{parsed.name}_n{n}_u{unroll}"
    )
    kernel.metadata["openmp"] = parsed.openmp
    kernel.program.metadata["openmp"] = parsed.openmp
    return kernel
