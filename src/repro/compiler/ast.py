"""Loop-nest AST for the mini C front-end.

Just enough C to express the paper's kernels: an innermost counted loop
whose body reads/writes arrays at affine addresses (base + loop-index *
stride) and accumulates into scalars.  The naive matmul inner loop of
Fig. 1 is::

    for (k = 0; k < n; k++)
        res += second[k] * third[j];          // third walks by n doubles

which in this AST is::

    second = ArrayDecl("second", element_size=8)
    third = ArrayDecl("third", element_size=8)
    loop = InnerLoop(
        trip_var="k",
        body=[
            Accumulate(
                ScalarVar("res"),
                Mul(ArrayRef(second, stride_elements=1),
                    ArrayRef(third, stride_elements="n")),
            )
        ],
    )

Strides are in *elements* of the declared array; the symbolic stride
``"n"`` is resolved at lowering time (the column walk of the matmul).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


class LoweringError(ValueError):
    """The mini front-end cannot express or lower this construct."""


@dataclass(frozen=True, slots=True)
class ArrayDecl:
    """An array parameter of the kernel (a pointer argument)."""

    name: str
    element_size: int = 8  # double by default, matching Fig. 1

    def __post_init__(self) -> None:
        if self.element_size not in (4, 8):
            raise LoweringError(
                f"array {self.name!r}: only float (4) and double (8) elements "
                f"are supported, got {self.element_size}"
            )


class Expr:
    """Base class for expressions (marker)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Const(Expr):
    value: float


@dataclass(frozen=True, slots=True)
class ScalarVar(Expr):
    """A scalar kept in a register across the loop (e.g. the accumulator)."""

    name: str


@dataclass(frozen=True, slots=True)
class ArrayRef(Expr):
    """``array[k * stride + offset]`` with ``k`` the innermost index.

    ``stride_elements`` may be the literal string ``"n"`` for a stride
    equal to the (runtime) problem size — the matmul column walk.
    """

    array: ArrayDecl
    stride_elements: Union[int, str] = 1
    offset_elements: int = 0

    def resolved_stride(self, n: int) -> int:
        if isinstance(self.stride_elements, str):
            if self.stride_elements != "n":
                raise LoweringError(
                    f"unknown symbolic stride {self.stride_elements!r}"
                )
            return n
        return self.stride_elements


@dataclass(frozen=True, slots=True)
class Mul(Expr):
    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Add(Expr):
    left: Expr
    right: Expr


class Stmt:
    """Base class for statements (marker)."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    """``target = expr`` where target is an array element or scalar."""

    target: Union[ArrayRef, ScalarVar]
    expr: Expr


@dataclass(frozen=True, slots=True)
class Accumulate(Stmt):
    """``target += expr`` — the matmul reduction."""

    target: Union[ArrayRef, ScalarVar]
    expr: Expr


@dataclass(frozen=True, slots=True)
class InnerLoop:
    """An innermost counted loop ``for (k = 0; k < trip; k++) body``.

    ``store_target_each_iteration`` mirrors what ``gcc -O3`` does to
    Fig. 1: because ``res`` is accessed through a pointer, the compiler
    cannot keep it in a register and stores it back every iteration
    (Fig. 2's ``movsd %xmm1, (%r10,%r9)``).  Setting it to ``False``
    models the scalarized variant a human (or a better compiler) writes.
    """

    trip_var: str
    body: tuple[Stmt, ...] = ()
    store_target_each_iteration: bool = True

    def __post_init__(self) -> None:
        if not self.body:
            raise LoweringError("empty loop body")

    def arrays(self) -> list[ArrayDecl]:
        """Distinct arrays referenced, in first-appearance order."""
        seen: dict[str, ArrayDecl] = {}

        def visit_expr(e: Expr) -> None:
            if isinstance(e, ArrayRef):
                seen.setdefault(e.array.name, e.array)
            elif isinstance(e, (Mul, Add)):
                visit_expr(e.left)
                visit_expr(e.right)

        for stmt in self.body:
            if isinstance(stmt, (Assign, Accumulate)):
                if isinstance(stmt.target, ArrayRef):
                    seen.setdefault(stmt.target.array.name, stmt.target.array)
                visit_expr(stmt.expr)
        return list(seen.values())
