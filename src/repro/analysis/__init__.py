"""Result analysis: series, tables, shape statistics, and the experiment
registry that regenerates every figure and table of the paper.

- :mod:`repro.analysis.series` -- labelled data series and ASCII tables,
- :mod:`repro.analysis.stats` -- shape statistics (knees, monotonicity,
  crossovers, stability bands),
- :mod:`repro.analysis.experiments` -- one callable per paper exhibit
  (``fig03`` ... ``fig18``, ``table1``, ``table2``, generation-scale and
  stability claims), each returning an :class:`ExperimentResult` that the
  benchmark harness prints and asserts against.
"""

from repro.analysis.series import Series, Table
from repro.analysis.stats import (
    find_knee,
    is_monotone_decreasing,
    is_monotone_increasing,
    relative_change,
    relative_spread,
)
from repro.analysis.autotune import TuneResult, tune, variance_attribution
from repro.analysis.experiments import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)

__all__ = [
    "Series",
    "Table",
    "find_knee",
    "is_monotone_decreasing",
    "is_monotone_increasing",
    "relative_change",
    "relative_spread",
    "TuneResult",
    "tune",
    "variance_attribution",
    "ExperimentResult",
    "available_experiments",
    "run_experiment",
]
