"""Parallel-execution experiments: Figs. 14-18, Table 2 (section 5.2)."""

from __future__ import annotations

import statistics

from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Series, Table
from repro.analysis.stats import find_knee, relative_change, relative_spread
from repro.creator import MicroCreator
from repro.engine import Campaign, SweepSpec, run_campaign
from repro.kernels import loadstore_family, multi_array_traversal
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import MemLevel, nehalem_2s_x5650, nehalem_4s_x7550, sandy_bridge_e31240


def _eight_load_ram_kernel(creator: MicroCreator):
    return next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )


@register("fig14")
def fig14(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Fig. 14: forked multi-core RAM kernel — bandwidth saturation.

    "The breaking point for the dual-socket Nehalem machine is six cores.
    Under six cores, the latency is not greatly affected; over six cores"
    contention grows with every added process.
    """
    machine = nehalem_2s_x5650()
    kernel = _eight_load_ram_kernel(MicroCreator())
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        experiments=4,
        repetitions=8,
    )
    counts = (1, 2, 4, 6, 8, 12) if quick else tuple(range(1, machine.total_cores + 1))
    sweep = SweepSpec(
        kernels=(kernel,), base=options, axes={"n_cores": counts}, mode="forked"
    )
    run = run_campaign(
        Campaign(name="fig14_forked", machine=machine, sweeps=(sweep,)),
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    by_cores = {
        job.tags["n_cores"]: statistics.fmean(m.cycles_per_iteration for m in ms)
        for job, ms in run.per_job()
    }
    ys = [by_cores[n] for n in counts]
    series = Series("8-load movaps, RAM", tuple(float(c) for c in counts), tuple(ys))
    knee = find_knee(series.x, series.y, threshold=0.10)
    return ExperimentResult(
        exhibit="fig14",
        title="forked execution: cycles/iteration vs core count (log scale)",
        paper_expectation="flat up to six cores, then latency climbs (knee at 6)",
        series=[series],
        x_label="cores",
        notes={
            "knee_cores": knee,
            "max_over_min": max(ys) / min(ys),
        },
    )


def _alignment_sweep(active_cores_on_socket: int, *, quick: bool):
    machine = nehalem_4s_x7550()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernel = creator.generate(multi_array_traversal(4, "movss", unroll=(6, 6)))[0]
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        alignment_min=0,
        alignment_max=1024,
        alignment_step=256 if quick else 128,
        max_alignment_configs=256 if quick else 2500,
        experiments=3,
        repetitions=8,
    )
    sweep = launcher.run_alignment_sweep(
        kernel, options, active_cores_on_socket=active_cores_on_socket
    )
    values = [m.cycles_per_iteration for m in sweep]
    return machine, values


@register("fig15")
def fig15(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Fig. 15: alignment sweep, 4-array movss traversal, 8 of 32 cores.

    Eight cores scattered over four sockets leave DRAM unsaturated, so
    the baseline is pipeline-bound and alignment conflicts swing the
    cycle count by roughly the 20 -> 33 band the paper reports.
    """
    machine, values = _alignment_sweep(active_cores_on_socket=2, quick=quick)
    series = Series("4-array movss, 8 cores", tuple(range(len(values))), tuple(values))
    return ExperimentResult(
        exhibit="fig15",
        title="alignment configurations, 8-core execution",
        paper_expectation="20 to 33 cycles/iteration across ~2500 configurations",
        series=[series],
        x_label="config",
        notes={
            "n_configs": len(values),
            "min": min(values),
            "max": max(values),
            "spread": relative_spread(values),
        },
    )


@register("fig16")
def fig16(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Fig. 16: the same sweep with all 32 cores — memory saturation.

    Eight processes per socket saturate the channels; conflict misses now
    also inflate traffic, widening the band to the paper's 60 -> 90."""
    machine, values = _alignment_sweep(active_cores_on_socket=8, quick=quick)
    series = Series("4-array movss, 32 cores", tuple(range(len(values))), tuple(values))
    return ExperimentResult(
        exhibit="fig16",
        title="alignment configurations, 32-core execution",
        paper_expectation="60 to 90 cycles/iteration under full saturation",
        series=[series],
        x_label="config",
        notes={
            "n_configs": len(values),
            "min": min(values),
            "max": max(values),
            "spread": relative_spread(values),
        },
    )


def _seq_omp_rows(
    name: str,
    kernels,
    options: LauncherOptions,
    machine,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
):
    """Run the same kernels sequentially and under OpenMP as one campaign.

    Returns (seq, omp) measurement lists in the kernels' order.
    """
    sweeps = (
        SweepSpec(kernels=tuple(kernels), base=options, tags={"exec": "seq"}),
        SweepSpec(
            kernels=tuple(kernels), base=options, mode="openmp", tags={"exec": "omp"}
        ),
    )
    run = run_campaign(
        Campaign(name=name, machine=machine, sweeps=sweeps),
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    grouped = run.grouped("exec")
    return (
        [m for _, m in grouped["seq"]],
        [m for _, m in grouped["omp"]],
    )


def _openmp_vs_sequential(
    n_elements: int,
    *,
    quick: bool,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
):
    """Shared Figs. 17/18 implementation: movss loads, unroll 1..8."""
    machine = sandy_bridge_e31240()
    creator = MicroCreator()
    kernels = sorted(
        (k for k in creator.generate(loadstore_family("movss")) if set(k.mix) == {"L"}),
        key=lambda k: k.unroll,
    )
    if quick:
        kernels = [k for k in kernels if k.unroll in (1, 2, 4, 8)]
    options = LauncherOptions(
        array_bytes=n_elements * 4,
        trip_count=n_elements,
        omp_threads=machine.cores_per_socket,
        experiments=10,  # the paper compares min/max across ten runs
        repetitions=4,
    )
    seq_ms, omp_ms = _seq_omp_rows(
        f"openmp_vs_sequential_{n_elements}",
        kernels,
        options,
        machine,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    xs, seq_y, seq_lo, seq_hi, omp_y, omp_lo, omp_hi = [], [], [], [], [], [], []
    for kernel, seq, omp in zip(kernels, seq_ms, omp_ms):
        xs.append(float(kernel.unroll))
        seq_y.append(seq.cycles_per_element)
        seq_lo.append(seq.min_cycles_per_iteration / seq.elements_per_iteration)
        seq_hi.append(seq.max_cycles_per_iteration / seq.elements_per_iteration)
        scale = omp.elements_per_iteration
        omp_y.append(omp.cycles_per_element)
        omp_lo.append(omp.min_cycles_per_iteration / scale)
        omp_hi.append(omp.max_cycles_per_iteration / scale)
    series = [
        Series("sequential", tuple(xs), tuple(seq_y)),
        Series("sequential(min)", tuple(xs), tuple(seq_lo)),
        Series("sequential(max)", tuple(xs), tuple(seq_hi)),
        Series("openmp", tuple(xs), tuple(omp_y)),
        Series("openmp(min)", tuple(xs), tuple(omp_lo)),
        Series("openmp(max)", tuple(xs), tuple(omp_hi)),
    ]
    notes = {
        "seq_gain": relative_change(seq_y[0], seq_y[-1]),
        "omp_gain": relative_change(omp_y[0], omp_y[-1]),
        "omp_below_seq": all(o < s for o, s in zip(omp_y, seq_y)),
        "seq_stability": max(
            (hi - lo) / lo for lo, hi in zip(seq_lo, seq_hi)
        ),
        "omp_stability": max(
            (hi - lo) / lo for lo, hi in zip(omp_lo, omp_hi)
        ),
        "omp_speedup_at_8": seq_y[-1] / omp_y[-1],
    }
    return series, notes


@register("fig17")
def fig17(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Fig. 17: OpenMP vs sequential movss loads, 128k-element array."""
    series, notes = _openmp_vs_sequential(
        128 * 1024, quick=quick,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    return ExperimentResult(
        exhibit="fig17",
        title="OpenMP vs sequential, 128k elements (log scale)",
        paper_expectation=(
            "OpenMP below sequential at every unroll; stable min/max bands; "
            "good parallel gain for the cache-resident size"
        ),
        series=series,
        x_label="unroll",
        notes=notes,
    )


@register("fig18")
def fig18(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Fig. 18: the same with six million elements (RAM resident).

    The 128k version must show a "significantly better performance gain"
    (speedup) than this one: RAM bandwidth, not cores, is the limit here.
    """
    series, notes = _openmp_vs_sequential(
        6_000_000, quick=quick,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    return ExperimentResult(
        exhibit="fig18",
        title="OpenMP vs sequential, six million elements (log scale)",
        paper_expectation=(
            "OpenMP still wins but by less: the RAM-resident size is "
            "bandwidth-limited"
        ),
        series=series,
        x_label="unroll",
        notes=notes,
    )


@register("table2")
def table2(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Table 2: execution seconds, OpenMP vs sequential, unroll 1..8.

    Shape targets: the sequential column decreases with unrolling then
    flattens (18.30 -> ~14.6 s in the paper); the OpenMP column is nearly
    flat (9.42 -> 9.31 s) because the four cores are bandwidth-bound and
    "the overhead of the parallel setup" hides the unrolling gain.
    """
    machine = sandy_bridge_e31240()
    creator = MicroCreator()
    n_elements = 6_000_000
    passes = 400  # repeated traversals making up the multi-second runtime
    kernels = sorted(
        (k for k in creator.generate(loadstore_family("movss")) if set(k.mix) == {"L"}),
        key=lambda k: k.unroll,
    )
    if quick:
        kernels = [k for k in kernels if k.unroll in (1, 2, 4, 8)]
    options = LauncherOptions(
        array_bytes=n_elements * 4,
        trip_count=n_elements,
        omp_threads=machine.cores_per_socket,
        experiments=4,
        repetitions=2,
    )
    seq_ms, omp_ms = _seq_omp_rows(
        "table2_seconds",
        kernels,
        options,
        machine,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    table = Table(header=("unroll", "openmp_s", "sequential_s"), title="Table 2")
    omp_col, seq_col = [], []
    for kernel, seq, omp in zip(kernels, seq_ms, omp_ms):
        seq_s = seq.cycles_per_element * n_elements * passes / (machine.freq_ghz * 1e9)
        omp_s = omp.cycles_per_element * n_elements * passes / (machine.freq_ghz * 1e9)
        table.add(kernel.unroll, omp_s, seq_s)
        omp_col.append(omp_s)
        seq_col.append(seq_s)
    return ExperimentResult(
        exhibit="table2",
        title="execution time of OpenMP and sequential movss versions",
        paper_expectation=(
            "sequential: 18.30 s -> 14.60 s (improves, then flattens); "
            "OpenMP: 9.42 s -> 9.31 s (essentially flat); OpenMP always faster"
        ),
        tables=[table],
        notes={
            "seq_gain": relative_change(seq_col[0], seq_col[-1]),
            "omp_gain": relative_change(omp_col[0], omp_col[-1]),
            "omp_flat": relative_change(omp_col[0], omp_col[-1]) < 0.15,
            "omp_always_faster": all(o < s for o, s in zip(omp_col, seq_col)),
        },
    )
