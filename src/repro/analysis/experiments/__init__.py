"""The experiment registry: every paper exhibit as a callable.

Each experiment function returns an :class:`ExperimentResult` with the
series/rows the paper's figure or table reports, plus scalar ``notes``
(knees, spreads, gains) that the benchmark harness asserts against the
paper's shape claims.  ``quick=True`` shrinks sweeps for the test suite;
the benchmarks run the full versions.

Registry keys match DESIGN.md's experiment index: ``fig02``...``fig18``,
``table1``, ``table2``, ``generation_scale``, ``stability``, and the
design-choice ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.series import Series, Table, render_series


@dataclass(slots=True)
class ExperimentResult:
    """Output of one reproduced exhibit."""

    exhibit: str
    title: str
    paper_expectation: str
    series: list[Series] = field(default_factory=list)
    tables: list[Table] = field(default_factory=list)
    notes: dict[str, object] = field(default_factory=dict)
    x_label: str = "x"

    def render(self) -> str:
        """Human-readable reproduction report (what the bench prints)."""
        parts = [f"== {self.exhibit}: {self.title} ==",
                 f"paper: {self.paper_expectation}"]
        if self.series:
            parts.append(render_series(self.series, x_label=self.x_label))
        for table in self.tables:
            parts.append(table.render())
        if self.notes:
            parts.append(
                "notes: " + ", ".join(f"{k}={_fmt(v)}" for k, v in self.notes.items())
            )
        return "\n".join(parts)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str):
    """Decorator adding an experiment function under ``name``."""

    def deco(fn: Callable[..., ExperimentResult]):
        if name in _REGISTRY:
            raise ValueError(f"duplicate experiment {name!r}")
        _REGISTRY[name] = fn
        return fn

    return deco


def available_experiments() -> list[str]:
    _load_all()
    return sorted(_REGISTRY)


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run a registered experiment by exhibit id (e.g. ``"fig11"``)."""
    from repro import obs

    _load_all()
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    with obs.span(f"experiment:{name}", metric="analysis.experiment.duration_ms"):
        return fn(**kwargs)


def _load_all() -> None:
    # Import side-effectfully so @register runs; idempotent.
    from repro.analysis.experiments import (  # noqa: F401
        ablations,
        extensions,
        meta,
        motivation,
        parallel,
        sequential,
        uses,
    )


__all__ = ["ExperimentResult", "register", "available_experiments", "run_experiment"]
