"""Sequential-execution experiments: Figs. 11-13 (paper section 5.1)."""

from __future__ import annotations

from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Series
from repro.analysis.stats import is_monotone_decreasing
from repro.creator import MicroCreator
from repro.engine import Campaign, SweepSpec, run_campaign
from repro.kernels import loadstore_family
from repro.launcher import LauncherOptions
from repro.launcher.stopping import adaptive_overrides
from repro.machine import MemLevel, nehalem_2s_x5650

_LEVELS = (MemLevel.L1, MemLevel.L2, MemLevel.L3, MemLevel.RAM)


def _unroll_hierarchy(
    opcode: str,
    *,
    quick: bool,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    rciw_target: float | None = None,
    max_experiments: int | None = None,
) -> ExperimentResult:
    """Shared implementation of Figs. 11/12.

    Generates the full 510-variant (Load|Store)+ family from the single
    input file, measures every variant at each hierarchy level — one
    campaign sweep per level, so the whole figure is a single cached,
    parallelizable grid — and plots per-unroll-group minima, exactly the
    aggregation the paper describes ("For each unroll group, the minimum
    value was taken though the variance was minimal").
    """
    machine = nehalem_2s_x5650()
    creator = MicroCreator()
    variants = creator.generate(loadstore_family(opcode))
    if quick:
        # Pure-load and pure-store mixes only: enough for the plotted
        # minima (see below) at a fraction of the measurements.
        variants = [v for v in variants if len(set(v.mix)) == 1]
    sweeps = tuple(
        SweepSpec(
            kernels=tuple(variants),
            base=LauncherOptions(
                array_bytes=machine.footprint_for(level),
                trip_count=1 << 14,
                experiments=4,
                repetitions=8,
                **adaptive_overrides(
                    rciw_target=rciw_target, max_experiments=max_experiments
                ),
            ),
            tags={"level": level.label},
        )
        for level in _LEVELS
    )
    run = run_campaign(
        Campaign(name=f"unroll_hierarchy_{opcode}", machine=machine, sweeps=sweeps),
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    series = []
    for level in _LEVELS:
        best: dict[int, float] = {}
        for job, m in run.grouped("level")[level.label]:
            value = m.cycles_per_memory_instruction
            # The figure's Y axis is cycles *per load and store*: the
            # plotted per-unroll minima come from the pure-direction
            # groups.  Mixed variants are measured (they are part of the
            # 510) but use both memory ports at once, so they would show
            # a different quantity on the same axis.
            if len(set(job.kernel.mix)) != 1:
                continue
            u = job.kernel.unroll
            if u not in best or value < best[u]:
                best[u] = value
        xs = tuple(sorted(best))
        series.append(Series(level.label, tuple(float(x) for x in xs),
                             tuple(best[x] for x in xs)))
    by_label = {s.label: s for s in series}
    ordered_at_8 = all(
        by_label[a].at(8) <= by_label[b].at(8) + 1e-9
        for a, b in zip(("L1", "L2", "L3"), ("L2", "L3", "RAM"))
    )
    return ExperimentResult(
        exhibit="",
        title=f"cycles per load/store using {opcode} vs unroll and hierarchy",
        paper_expectation=(
            "unrolling helps; plot lines ordered L1 < L2 < L3 < RAM; "
            "vectorized moves feel the hierarchy more than scalar ones"
        ),
        series=series,
        x_label="unroll",
        notes={
            "n_variants": len(creator.generate(loadstore_family(opcode))),
            "unroll_helps_L1": is_monotone_decreasing(by_label["L1"].y, tolerance=1e-9),
            "levels_ordered_at_8": ordered_at_8,
            "ram_over_l1_at_8": by_label["RAM"].at(8) / by_label["L1"].at(8),
        },
    )


@register("fig11")
def fig11(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    rciw_target: float | None = None,
    max_experiments: int | None = None,
    **_: object,
) -> ExperimentResult:
    """Fig. 11: ``movaps`` loads/stores over unroll x hierarchy."""
    result = _unroll_hierarchy(
        "movaps",
        quick=quick,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
        rciw_target=rciw_target,
        max_experiments=max_experiments,
    )
    result.exhibit = "fig11"
    return result


@register("fig12")
def fig12(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    rciw_target: float | None = None,
    max_experiments: int | None = None,
    **_: object,
) -> ExperimentResult:
    """Fig. 12: ``movss`` loads/stores over unroll x hierarchy.

    The scalar instruction moves a quarter of the data, so the hierarchy
    separation is much smaller and the RAM line sits only slightly above
    — four ``movss`` equal one ``movaps`` of work, and the vectorized
    version wins per byte (the paper's closing observation in 5.1).
    """
    result = _unroll_hierarchy(
        "movss",
        quick=quick,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
        rciw_target=rciw_target,
        max_experiments=max_experiments,
    )
    result.exhibit = "fig12"
    return result


@register("fig13")
def fig13(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    rciw_target: float | None = None,
    max_experiments: int | None = None,
    **_: object,
) -> ExperimentResult:
    """Fig. 13: DVFS sweep of an 8-load ``movaps`` kernel, TSC units.

    "The timing varies with the frequency for L1 and L2 accesses;
    however, L3 and RAM remain constant, proving on-core frequency
    modifications do not affect the off-core frequency."
    """
    machine = nehalem_2s_x5650()
    creator = MicroCreator()
    kernel = next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )
    freqs = machine.freq_steps[::2] + (machine.freq_steps[-1],) if quick else machine.freq_steps
    freqs = tuple(dict.fromkeys(freqs))  # dedupe, keep order
    sweeps = tuple(
        SweepSpec(
            kernels=(kernel,),
            base=LauncherOptions(
                array_bytes=machine.footprint_for(level),
                trip_count=1 << 14,
                experiments=4,
                repetitions=8,
                **adaptive_overrides(
                    rciw_target=rciw_target, max_experiments=max_experiments
                ),
            ),
            axes={"frequency_ghz": freqs},
            tags={"level": level.label},
        )
        for level in _LEVELS
    )
    run = run_campaign(
        Campaign(name="fig13_dvfs", machine=machine, sweeps=sweeps),
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    series = []
    for level in _LEVELS:
        by_freq = {
            job.tags["frequency_ghz"]: m.cycles_per_memory_instruction
            for job, m in run.grouped("level")[level.label]
        }
        series.append(Series(level.label, freqs, tuple(by_freq[f] for f in freqs)))
    by_label = {s.label: s for s in series}

    def swing(label: str) -> float:
        s = by_label[label]
        return (max(s.y) - min(s.y)) / min(s.y)

    return ExperimentResult(
        exhibit="fig13",
        title="cycles per movaps load vs core frequency (rdtsc units)",
        paper_expectation="L1/L2 timings vary with frequency; L3/RAM constant",
        series=series,
        x_label="GHz",
        notes={
            "l1_swing": swing("L1"),
            "l2_swing": swing("L2"),
            "l3_swing": swing("L3"),
            "ram_swing": swing("RAM"),
            "core_levels_vary": swing("L1") > 0.2 and swing("L2") > 0.2,
            # The L3 access path keeps a small core-clocked component, so
            # its structural swing sits just under 10%; "constant" here
            # means a fraction of the ~67% core-level swings.
            "uncore_levels_flat": swing("L3") < 0.12 and swing("RAM") < 0.10,
        },
    )
