"""Design-choice ablations (DESIGN.md's ablation list).

These are not paper exhibits; they justify the reproduction's own design
decisions by showing what breaks without them.
"""

from __future__ import annotations

from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Table
from repro.creator import MicroCreator
from repro.engine import Campaign, SweepSpec, run_campaign
from repro.kernels import loadstore_family, multi_array_traversal
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import MemLevel, nehalem_2s_x5650, nehalem_4s_x7550


def _ram_load_kernel(creator: MicroCreator):
    return next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )


def _grid(
    name, kernel, base, axes, *, machine,
    jobs=1, chunk_size=None, chunk_policy="auto", chunk_target_ms=None,
    cache_dir=None, resume=True,
    max_retries=2, job_timeout=None, gen_cache_dir=None,
    store_format="sharded",
):
    """Run one single-kernel option grid through the campaign engine."""
    campaign = Campaign(
        name=name,
        machine=machine,
        sweeps=(SweepSpec(kernels=(kernel,), base=base, axes=axes),),
    )
    return run_campaign(
        campaign,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )


@register("ablation_aggregator")
def ablation_aggregator(
    *,
    quick: bool = False,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Min vs. mean vs. median aggregation under noise.

    The paper takes per-group minima.  Under one-sided noise (spikes only
    ever slow a run down), the minimum is the consistent estimator of the
    noise-free time; the mean drifts upward with every spike.
    """
    machine = nehalem_2s_x5650()
    kernel = _ram_load_kernel(MicroCreator())
    base = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L2),
        trip_count=1 << 14,
        experiments=8 if quick else 16,
        repetitions=4,
        pin=False,  # leave migration spikes on: that is the point
    )
    run = _grid(
        "ablation_aggregator",
        kernel,
        base,
        {"aggregator": ("min", "median", "mean")},
        machine=machine,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    table = Table(header=("aggregator", "cycles/iter", "vs min"), title="aggregators")
    results = {
        job.tags["aggregator"]: m.cycles_per_iteration for job, m in run.rows()
    }
    for agg, value in results.items():
        table.add(agg, value, value / results["min"])
    return ExperimentResult(
        exhibit="ablation_aggregator",
        title="per-group aggregation choice",
        paper_expectation="minimum is robust to one-sided noise; mean drifts up",
        tables=[table],
        notes={
            "mean_inflation": results["mean"] / results["min"],
            "min_is_lowest": results["min"] <= min(results.values()),
        },
    )


@register("ablation_warmup")
def ablation_warmup(
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Cache heating (Fig. 10's first untimed call).

    Without it, the first experiment pays the cold-start factor, widening
    the spread; with min aggregation the *bias* hides but the spread
    shows — which is exactly why the launcher reports stability bands.
    """
    machine = nehalem_2s_x5650()
    kernel = _ram_load_kernel(MicroCreator())
    base = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L2),
        trip_count=1 << 14,
        experiments=6,
        repetitions=16,
    )
    run = _grid(
        "ablation_warmup",
        kernel,
        base,
        {"warmup": (True, False)},
        machine=machine,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    by_warmup = {job.tags["warmup"]: m for job, m in run.rows()}
    warm, cold = by_warmup[True], by_warmup[False]
    table = Table(header=("scenario", "spread", "max/min"), title="warm-up ablation")
    for label, m in (("warmed", warm), ("cold start", cold)):
        table.add(label, m.spread, m.max_cycles_per_iteration / m.min_cycles_per_iteration)
    return ExperimentResult(
        exhibit="ablation_warmup",
        title="cache-heating ablation",
        paper_expectation="the untimed first call removes the cold-start outlier",
        tables=[table],
        notes={
            "warm_spread": warm.spread,
            "cold_spread": cold.spread,
            "cold_worse": cold.spread > warm.spread * 5,
        },
    )


@register("ablation_overhead")
def ablation_overhead(
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Call-overhead subtraction vs. trip count.

    The subtraction's value shows at small trip counts, where the call
    cost is a large fraction of the measured region; at large trip counts
    both agree — the classic bias-vs-measurement-length trade-off.
    """
    machine = nehalem_2s_x5650()
    kernel = _ram_load_kernel(MicroCreator())
    trips = (64, 512, 4096, 1 << 15)
    base = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L1),
        trip_count=trips[0],
        experiments=4,
        repetitions=16,
    )
    run = _grid(
        "ablation_overhead",
        kernel,
        base,
        {"trip_count": trips, "subtract_overhead": (True, False)},
        machine=machine,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    cycles = {
        (job.tags["trip_count"], job.tags["subtract_overhead"]): m.cycles_per_iteration
        for job, m in run.rows()
    }
    table = Table(
        header=("trip_count", "with_subtraction", "without", "bias"),
        title="overhead subtraction",
    )
    biases = {}
    for trip in trips:
        with_sub = cycles[(trip, True)]
        without = cycles[(trip, False)]
        bias = without / with_sub
        biases[trip] = bias
        table.add(trip, with_sub, without, bias)
    return ExperimentResult(
        exhibit="ablation_overhead",
        title="overhead-subtraction ablation",
        paper_expectation="bias large at small trip counts, negligible at large",
        tables=[table],
        notes={
            "bias_small_trip": biases[64],
            "bias_large_trip": biases[1 << 15],
            "bias_shrinks": biases[64] > biases[1 << 15],
        },
    )


@register("ablation_inner_reps")
def ablation_inner_reps(
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: object = None,
    resume: bool = True,
    max_retries: int = 2,
    job_timeout: float | None = None,
    gen_cache_dir: object = None,
    store_format: str = "sharded",
    **_: object,
) -> ExperimentResult:
    """Inner-loop repetitions vs. result variance.

    The inner loop "augments the evaluation time of the kernel, further
    stabilizing the results" (section 4): baseline jitter averages down
    roughly as 1/sqrt(repetitions).
    """
    machine = nehalem_2s_x5650()
    kernel = _ram_load_kernel(MicroCreator())
    base = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L2),
        trip_count=1 << 14,
        experiments=12,
        repetitions=1,
    )
    run = _grid(
        "ablation_inner_reps",
        kernel,
        base,
        {"repetitions": (1, 4, 16, 64, 256)},
        machine=machine,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        max_retries=max_retries,
        job_timeout=job_timeout,
        gen_cache_dir=gen_cache_dir,
        store_format=store_format,
    )
    table = Table(header=("repetitions", "spread"), title="inner repetitions")
    spreads = {}
    for job, m in run.rows():
        spreads[job.tags["repetitions"]] = m.spread
        table.add(job.tags["repetitions"], m.spread)
    return ExperimentResult(
        exhibit="ablation_inner_reps",
        title="inner-repetition ablation",
        paper_expectation="longer inner loops stabilize the measurement",
        tables=[table],
        notes={
            "spread_1": spreads[1],
            "spread_256": spreads[256],
            "stabilizes": spreads[256] < spreads[1],
        },
    )


@register("ablation_conflict_traffic")
def ablation_conflict_traffic(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Conflict-miss traffic inflation (the Fig. 16 widener).

    With ``conflict_traffic_factor`` zeroed, the 32-core alignment band
    narrows to the fixed per-pair penalty only — the saturated sweep
    loses most of its spread, demonstrating why the traffic component is
    in the model.
    """
    creator = MicroCreator()
    kernel = creator.generate(multi_array_traversal(4, "movss", unroll=(6, 6)))[0]
    spreads = {}
    for label, factor in (("with traffic inflation", 0.05), ("without", 0.0)):
        machine = nehalem_4s_x7550().scaled(conflict_traffic_factor=factor)
        launcher = MicroLauncher(machine)
        options = LauncherOptions(
            array_bytes=machine.footprint_for(MemLevel.RAM),
            trip_count=1 << 14,
            alignment_min=0,
            alignment_max=1024,
            alignment_step=256,
            max_alignment_configs=128 if quick else 512,
            experiments=3,
            repetitions=8,
        )
        sweep = launcher.run_alignment_sweep(
            kernel, options, active_cores_on_socket=8
        )
        values = [m.cycles_per_iteration for m in sweep]
        spreads[label] = (max(values) - min(values)) / min(values)
    table = Table(header=("model", "32-core spread"), title="conflict traffic")
    for label, spread in spreads.items():
        table.add(label, spread)
    return ExperimentResult(
        exhibit="ablation_conflict_traffic",
        title="conflict-miss traffic inflation ablation",
        paper_expectation="saturated sweeps need the traffic term for the 60->90 band",
        tables=[table],
        notes={
            "spread_with": spreads["with traffic inflation"],
            "spread_without": spreads["without"],
            "traffic_widens": spreads["with traffic inflation"]
            > spreads["without"] * 1.3,
        },
    )


@register("ablation_sw_prefetch")
def ablation_sw_prefetch(**_: object) -> ExperimentResult:
    """Software prefetching vs the demand-MLP latency floor.

    A wide-stride (prefetcher-defeating) RAM walk pays the limited
    demand-miss parallelism of the OOO window; the contrib
    SoftwarePrefetchPass inserts ``prefetcht0`` hints that restore full
    fill-buffer parallelism — the mechanism, the pass, and the plugin
    protocol exercised together.
    """
    from repro.creator.contrib import software_prefetch_plugin
    from repro.kernels import strided_kernel

    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    spec = strided_kernel("movsd", strides=(128,), unroll=(1, 1))
    plain = MicroCreator().generate(spec)[0]
    hinted = MicroCreator(
        plugins=[software_prefetch_plugin(distance=8)]
    ).generate(spec)[0]
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        experiments=3,
        repetitions=8,
    )
    plain_m = launcher.run(plain, options)
    hinted_m = launcher.run(hinted, options)
    table = Table(header=("kernel", "cycles/iter", "bottleneck"), title="sw prefetch")
    table.add("wide stride, no hints", plain_m.cycles_per_iteration, plain_m.bottleneck)
    table.add("with prefetcht0", hinted_m.cycles_per_iteration, hinted_m.bottleneck)
    return ExperimentResult(
        exhibit="ablation_sw_prefetch",
        title="software prefetch vs the demand-MLP floor",
        paper_expectation=(
            "wide strides expose demand-miss latency; software prefetch "
            "recovers the bandwidth floor"
        ),
        tables=[table],
        notes={
            "plain_cycles": plain_m.cycles_per_iteration,
            "hinted_cycles": hinted_m.cycles_per_iteration,
            "prefetch_recovers": hinted_m.cycles_per_iteration
            < 0.6 * plain_m.cycles_per_iteration,
        },
    )


@register("ablation_residence")
def ablation_residence(**_: object) -> ExperimentResult:
    """Footprint vs trace-driven residence (the launcher's two policies).

    For the paper's single-array constructions the two agree exactly —
    the footprint rule is the right default.  For multi-array working
    sets that *jointly* overflow a level, only the trace policy sees the
    demotion; the bench quantifies the error the default would make.
    """
    from repro.kernels import multi_array_traversal

    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()

    single = _ram_load_kernel(creator)
    single_opts = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L2),
        trip_count=1 << 14,
        experiments=3,
        repetitions=4,
    )
    agree_a = launcher.run(single, single_opts).cycles_per_iteration
    agree_b = launcher.run(
        single, single_opts.with_(residence_mode="trace")
    ).cycles_per_iteration

    joint = creator.generate(multi_array_traversal(2, "movaps", unroll=(4, 4)))[0]
    size = 3 * machine.cache(MemLevel.L1).size_bytes // 4
    joint_opts = single_opts.with_(array_bytes=size)
    footprint = launcher.run(joint, joint_opts).cycles_per_iteration
    trace = launcher.run(
        joint, joint_opts.with_(residence_mode="trace")
    ).cycles_per_iteration

    table = Table(header=("case", "footprint", "trace"), title="residence policies")
    table.add("single stream (L2 array)", agree_a, agree_b)
    table.add("two arrays, 1.5x L1 combined", footprint, trace)
    return ExperimentResult(
        exhibit="ablation_residence",
        title="footprint vs trace-driven residence",
        paper_expectation=(
            "the paper's sizing rule is exact for its single-array "
            "kernels; joint working sets need the cache simulator"
        ),
        tables=[table],
        notes={
            "single_stream_agrees": abs(agree_a - agree_b) / agree_a < 0.01,
            "joint_overflow_detected": trace > 1.1 * footprint,
            "joint_error_factor": trace / footprint,
        },
    )


@register("ablation_fill_cost")
def ablation_fill_cost(**_: object) -> ExperimentResult:
    """Line-fill port occupancy (the Fig. 12 separator).

    Zeroing ``fill_cost`` collapses the movss hierarchy separation: the
    scalar kernel's RAM line falls onto L1 because its 4 B/iteration
    demand never saturates bandwidth.  The fill term is what keeps a
    visible (if small) gap, as the paper's Fig. 12 shows.
    """
    creator = MicroCreator()
    kernel = next(
        k for k in creator.generate(loadstore_family("movss"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )
    gaps = {}
    for label, fill in (("with fill cost", None), ("without", {})):
        machine = nehalem_2s_x5650()
        if fill is not None:
            machine = machine.scaled(fill_cost=fill)
        launcher = MicroLauncher(machine)
        values = {}
        for level in (MemLevel.L1, MemLevel.RAM):
            options = LauncherOptions(
                array_bytes=machine.footprint_for(level),
                trip_count=1 << 14,
                experiments=4,
                repetitions=8,
            )
            values[level] = launcher.run(kernel, options).cycles_per_memory_instruction
        gaps[label] = values[MemLevel.RAM] / values[MemLevel.L1]
    table = Table(header=("model", "movss RAM/L1 ratio"), title="fill cost")
    for label, gap in gaps.items():
        table.add(label, gap)
    return ExperimentResult(
        exhibit="ablation_fill_cost",
        title="line-fill occupancy ablation",
        paper_expectation="movss RAM sits visibly above L1 only with fill occupancy",
        tables=[table],
        notes={
            "gap_with": gaps["with fill cost"],
            "gap_without": gaps["without"],
            "fill_separates": gaps["with fill cost"] > gaps["without"] + 0.05,
        },
    )
