"""Meta exhibits: Table 1, the generation-scale claims, the Fig. 8 golden
output, and the stability claim (sections 3, 4.7, 5)."""

from __future__ import annotations

from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Table
from repro.creator import MicroCreator
from repro.kernels import all_mov_families, loadstore_family, spec_path
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import MemLevel, PRESETS, nehalem_2s_x5650


@register("table1")
def table1(**_: object) -> ExperimentResult:
    """Table 1: the architecture <-> figure association.

    Reproduced as the three machine presets, each carrying the
    microarchitectural parameters the corresponding figures exercise.
    """
    table = Table(
        header=("preset", "name", "GHz", "sockets x cores", "L3 MiB", "figures"),
        title="Table 1",
    )
    figure_map = {
        "nehalem-2s": "2, 3, 4, 5, 11, 12, 13, 14",
        "nehalem-4s": "15, 16",
        "sandy-bridge": "17, 18",
    }
    for key, factory in sorted(PRESETS.items()):
        cfg = factory()
        l3 = cfg.cache(MemLevel.L3).size_bytes // (1024 * 1024)
        table.add(
            key,
            cfg.name,
            cfg.freq_ghz,
            f"{cfg.n_sockets} x {cfg.cores_per_socket}",
            l3,
            figure_map[key],
        )
    return ExperimentResult(
        exhibit="table1",
        title="association between figures and target architectures",
        paper_expectation=(
            "Sandy Bridge E31240 (17, 18); dual-socket Nehalem X5650 "
            "(2-5, 11-14); quad-socket Nehalem X7550 (15, 16)"
        ),
        tables=[table],
        notes={"n_presets": len(PRESETS)},
    )


@register("fig08")
def fig08(**_: object) -> ExperimentResult:
    """Fig. 8: the unroll-3 two-store/one-load output for the Fig. 6 spec.

    Golden structural check: among the 510 variants of the (Load|Store)+
    input there is an unroll-3 'SLS' variant whose body is exactly the
    paper's — stores at 0/32, load at 16, ``add $48, %rsi``,
    ``sub $12, %rdi``, ``jge .L6``.
    """
    creator = MicroCreator()
    variants = creator.generate_from_file(spec_path("loadstore_movaps"))
    target = next(v for v in variants if v.unroll == 3 and v.mix == "SLS")
    table = Table(header=("line",), title="generated unroll-3 variant")
    text = target.asm_text()
    for line in text.strip().splitlines():
        table.add(line)
    expected_fragments = (
        "movaps %xmm0, (%rsi)",
        "movaps 16(%rsi), %xmm1",
        "movaps %xmm2, 32(%rsi)",
        "add $48, %rsi",
        "sub $12, %rdi",
        "jge .L6",
    )
    return ExperimentResult(
        exhibit="fig08",
        title="unroll-3 output for the Fig. 6 (Load|Store)+ description",
        paper_expectation="two stores + one load, offsets 0/16/32, add $48 / sub $12 / jge .L6",
        tables=[table],
        notes={
            "matches_figure": all(frag in text for frag in expected_fragments),
            "n_variants_from_spec": len(variants),
        },
    )


@register("generation_scale")
def generation_scale(**_: object) -> ExperimentResult:
    """The generation-scale claims of sections 3 and 5.1.

    - one (Load|Store)+ input file -> 510 variants (sum of 2^u, u=1..8),
    - one four-family input file -> "more than two thousand" (4 x 510).
    """
    creator = MicroCreator()
    per_family = {
        op: len(creator.generate(loadstore_family(op)))
        for op in ("movss", "movsd", "movaps", "movapd")
    }
    combined = len(creator.generate(all_mov_families()))
    table = Table(header=("input file", "variants"), title="generation scale")
    for op, count in per_family.items():
        table.add(f"{op} (Load|Store)+", count)
    table.add("four-family single file", combined)
    return ExperimentResult(
        exhibit="generation_scale",
        title="variants generated from single input files",
        paper_expectation="510 per family; more than 2000 from one input",
        tables=[table],
        notes={
            "per_family_510": all(c == 510 for c in per_family.values()),
            "combined": combined,
            "over_2000": combined > 2000,
        },
    )


@register("stability")
def stability(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Section 4.7's stability claim, as an ablation over the controls.

    "To achieve stability, the launcher: modifies the alignment of data
    arrays, disables interruptions, and pins the experiments onto
    particular cores ... heating the instruction and data cache."  Every
    control removed should visibly widen the run-to-run spread.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernel = next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )
    base = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L2),
        trip_count=1 << 14,
        experiments=6 if quick else 12,
        repetitions=16,
    )
    scenarios = {
        "stabilized (default)": base,
        "no pinning": base.with_(pin=False),
        "interrupts enabled": base.with_(disable_interrupts=False, repetitions=1),
        "no warm-up": base.with_(warmup=False),
        "single repetition": base.with_(repetitions=1),
        "nothing stabilized": base.with_(
            pin=False, disable_interrupts=False, warmup=False, repetitions=1
        ),
    }
    table = Table(header=("scenario", "spread"), title="run-to-run spread")
    spreads: dict[str, float] = {}
    for label, options in scenarios.items():
        m = launcher.run(kernel, options)
        spreads[label] = m.spread
        table.add(label, m.spread)
    return ExperimentResult(
        exhibit="stability",
        title="MicroLauncher stabilization ablation",
        paper_expectation=(
            "executing multiple times with the same kernel must give the "
            "same result; every removed control degrades repeatability"
        ),
        tables=[table],
        notes={
            "stabilized_spread": spreads["stabilized (default)"],
            "unstabilized_spread": spreads["nothing stabilized"],
            "controls_matter": spreads["nothing stabilized"]
            > 10 * spreads["stabilized (default)"],
        },
    )
