"""The motivation study: Figs. 2-5 (paper section 2)."""

from __future__ import annotations

from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Series, Table
from repro.analysis.stats import relative_change, relative_spread
from repro.creator import MicroCreator
from repro.isa.writer import format_instruction
from repro.kernels.matmul import (
    matmul_kernel,
    matmul_microbench_spec,
    measure_matmul,
    microbench_bindings,
)
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import nehalem_2s_x5650


@register("fig02")
def fig02(**_: object) -> ExperimentResult:
    """Fig. 2: the naive matmul's compiled inner loop.

    The mini front-end must lower Fig. 1 to the same instruction mix GCC
    produced: a double load, a multiply with a memory operand, a scalar
    add, a store of the accumulator, pointer/counter updates, and a
    ``jg``-style backward branch.
    """
    kernel = matmul_kernel(200, 1)
    _, body = kernel.program.kernel_loop()
    table = Table(header=("#", "instruction", "class"), title="lowered inner loop")
    for i, instr in enumerate(body):
        cls = "load" if instr.is_load else "store" if instr.is_store else (
            "branch" if instr.is_branch else "alu"
        )
        table.add(i, format_instruction(instr), cls)
    opcodes = [i.opcode for i in body]
    return ExperimentResult(
        exhibit="fig02",
        title="naive matmul inner assembly",
        paper_expectation=(
            "movsd load, mulsd with memory operand, addsd accumulate, movsd "
            "store, pointer/counter updates, backward conditional jump"
        ),
        tables=[table],
        notes={
            "has_load_mul_add_store": all(
                op in opcodes for op in ("movsd", "mulsd", "addsd")
            ),
            "n_instructions": len(body),
            "n_loads": sum(1 for i in body if i.is_load),
            "n_stores": sum(1 for i in body if i.is_store),
        },
    )


#: Fig. 3's size grid; the paper sweeps through the 500 cutting point.
_FIG3_SIZES = (50, 100, 200, 300, 400, 500, 600, 800, 1000, 2000, 4000, 8000, 20000)
_FIG3_SIZES_QUICK = (100, 200, 500, 600, 1000, 8000)


@register("fig03")
def fig03(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Fig. 3: matmul cycles/iteration vs. matrix size.

    Expect a staircase climbing the memory hierarchy, with a step right
    after n = 500 (the column stream's line footprint crosses L1).
    """
    launcher = MicroLauncher(nehalem_2s_x5650())
    sizes = _FIG3_SIZES_QUICK if quick else _FIG3_SIZES
    ys = [measure_matmul(launcher, n).cycles_per_element for n in sizes]
    series = Series("matmul", tuple(float(n) for n in sizes), tuple(ys))
    step_at_500 = series.at(600) / series.at(500)
    return ExperimentResult(
        exhibit="fig03",
        title="matmul cycles/iteration vs matrix size",
        paper_expectation="cycles step up with size; 500 is a cutting point",
        series=[series],
        x_label="n",
        notes={
            "step_after_500": step_at_500,
            "monotone_overall": ys == sorted(ys),
            "largest_over_smallest": ys[-1] / ys[0],
        },
    )


@register("fig04")
def fig04(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Fig. 4: matmul cycles/iteration vs. per-matrix alignments at 200^2.

    "On the considered hardware, with a 200*200 size, the chosen alignment
    does not impact the matrix multiply.  The variation is less than 3 %
    for any alignment configuration."
    """
    launcher = MicroLauncher(nehalem_2s_x5650())
    offsets = (0, 64, 512) if quick else (0, 16, 64, 128, 512, 1024)
    values = []
    configs = []
    for a0 in offsets:
        for a1 in offsets:
            for a2 in offsets:
                m = measure_matmul(launcher, 200, alignments=(a0, a1, a2))
                values.append(m.cycles_per_element)
                configs.append((a0, a1, a2))
    series = Series(
        "matmul 200x200", tuple(range(len(values))), tuple(values)
    )
    return ExperimentResult(
        exhibit="fig04",
        title="matmul alignment sensitivity at 200x200",
        paper_expectation="variation below 3 % for any alignment configuration",
        series=[series],
        x_label="config",
        notes={
            "n_configs": len(values),
            "spread": relative_spread(values),
            "below_3_percent": relative_spread(values) < 0.03,
        },
    )


@register("fig05")
def fig05(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Fig. 5: matmul unroll sweep — compiled code vs. the MicroCreator
    microbenchmark equivalent.

    The paper's real code gains 9 % at unroll 8 and the microbenchmark
    predicts 8.2 % — the claim being that the *prediction matches the
    real behaviour*.  Our two paths run on the same machine model, so the
    match should be near-exact; the absolute gain is the simulator's.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    n = 200
    factors = (1, 2, 4, 8) if quick else tuple(range(1, 9))
    micro_variants = {
        k.unroll: k
        for k in creator.generate(matmul_microbench_spec(n, unroll=(1, 8)))
    }
    compiled_y = []
    micro_y = []
    for u in factors:
        compiled_y.append(
            measure_matmul(launcher, n, unroll=u).cycles_per_element
        )
        micro = launcher.run_with_bindings(
            micro_variants[u],
            microbench_bindings(n, machine),
            LauncherOptions(trip_count=n),
        )
        micro_y.append(micro.cycles_per_element)
    xs = tuple(float(u) for u in factors)
    compiled = Series("compiled C", xs, tuple(compiled_y))
    micro = Series("microbenchmark", xs, tuple(micro_y))
    gain_compiled = relative_change(compiled_y[0], compiled_y[-1])
    gain_micro = relative_change(micro_y[0], micro_y[-1])
    return ExperimentResult(
        exhibit="fig05",
        title="matmul unroll factors: compiled vs microbenchmark",
        paper_expectation=(
            "unrolling improves both; the microbenchmark's predicted gain "
            "(8.2 %) matches the real code's (9 %)"
        ),
        series=[compiled, micro],
        x_label="unroll",
        notes={
            "gain_compiled": gain_compiled,
            "gain_micro": gain_micro,
            "prediction_gap": abs(gain_compiled - gain_micro),
        },
    )
