"""Extension experiments: the paper's stated future work, made executable.

These are not reproductions of published exhibits — the paper only
*claims* the capabilities (power utilization in the conclusion, MPI
support and data-mining analysis in future work).  Each experiment here
demonstrates the implemented extension and asserts its internal
consistency.
"""

from __future__ import annotations

from repro.analysis.autotune import tune
from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Series, Table
from repro.creator import MicroCreator, abstract_program
from repro.kernels import loadstore_family
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import (
    ArrayBinding,
    MemLevel,
    energy_frequency_sweep,
    nehalem_2s_x5650,
)


def _load_kernel_u8(creator: MicroCreator):
    return next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 8 and set(k.mix) == {"L"}
    )


@register("ext_power")
def ext_power(**_: object) -> ExperimentResult:
    """Power utilization under DVFS (conclusion's power claim).

    The model must expose the textbook trade-off: for a *core-bound*
    kernel, lowering the frequency saves dynamic energy but stretches
    static time — energy per iteration has an interior structure; for a
    *memory-bound* kernel the runtime barely moves, so the dynamic
    savings win monotonically.
    """
    machine = nehalem_2s_x5650()
    creator = MicroCreator()
    kernel = _load_kernel_u8(creator)
    _, body = kernel.program.kernel_loop()
    from repro.machine import analyze_kernel

    analysis = analyze_kernel(body)
    series = []
    notes: dict[str, object] = {}
    for label, level in (("core-bound (L1)", MemLevel.L1), ("memory-bound (RAM)", MemLevel.RAM)):
        bindings = {"%rsi": ArrayBinding("%rsi", machine.footprint_for(level))}
        sweep = energy_frequency_sweep(analysis, bindings, machine)
        xs = tuple(sweep)
        ys = tuple(b.total_nj for b in sweep.values())
        series.append(Series(label, xs, ys))
        notes[f"dynamic_share_{level.label}"] = (
            sweep[machine.freq_ghz].dynamic_nj / sweep[machine.freq_ghz].total_nj
        )
    l1 = series[0]
    ram = series[1]
    # Memory-bound: the lowest frequency is (near-)optimal; core-bound:
    # slowing down buys much less because runtime stretches.
    l1_saving = l1.y[-1] / l1.y[0]
    ram_saving = ram.y[-1] / ram.y[0]
    notes.update(
        l1_energy_ratio_nominal_over_slowest=l1_saving,
        ram_energy_ratio_nominal_over_slowest=ram_saving,
        dvfs_helps_memory_bound_more=ram_saving > l1_saving,
    )
    return ExperimentResult(
        exhibit="ext_power",
        title="energy per iteration vs core frequency (extension)",
        paper_expectation=(
            "conclusion: MicroTools 'give an input on the performance and "
            "power utilization'; expected: DVFS saves more energy on "
            "memory-bound kernels than core-bound ones"
        ),
        series=series,
        x_label="GHz",
        notes=notes,
    )


@register("ext_mpi")
def ext_mpi(*, quick: bool = False, **_: object) -> ExperimentResult:
    """MPI-model scaling with halo exchange (future work).

    Weak scaling of the RAM kernel with a ring halo: compute time shows
    the Fig.-14 bandwidth knee, and the communication fraction grows when
    neighbours land on different sockets.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernel = _load_kernel_u8(creator)
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        experiments=3,
        repetitions=4,
    )
    counts = (2, 4, 8, 12) if quick else (2, 4, 6, 8, 10, 12)
    xs, cycles, comm_frac = [], [], []
    for ranks in counts:
        result = launcher.run_mpi(
            kernel, options, ranks=ranks, message_bytes=4096
        )
        xs.append(float(ranks))
        cycles.append(result.mean_cycles_per_iteration)
        comm_frac.append(result.communication_fraction)
    table = Table(header=("ranks", "cycles/iter", "comm fraction"), title="MPI scaling")
    for x, c, f in zip(xs, cycles, comm_frac):
        table.add(int(x), c, f)
    no_comm = launcher.run_mpi(kernel, options, ranks=4, message_bytes=0)
    return ExperimentResult(
        exhibit="ext_mpi",
        title="MPI-model weak scaling with ring halo exchange (extension)",
        paper_expectation="future work: 'fully supporting every OpenMP/MPI constructs'",
        series=[Series("cycles/iter", tuple(xs), tuple(cycles))],
        tables=[table],
        x_label="ranks",
        notes={
            "saturation_visible": cycles[-1] > 1.3 * cycles[0],
            "communication_costs": comm_frac[0] > 0,
            "zero_message_is_free": no_comm.communication_fraction == 0.0,
        },
    )


@register("ext_autotune")
def ext_autotune(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Data-mining auto-analysis (future work).

    Tunes the full 510-variant (Load|Store)+ family on an L1-resident
    array.  The analysis should *discover* the machine's structure
    without being told it: the unroll factor and the load/store mix are
    the knobs that matter (loop-overhead amortization and the separate
    load/store ports), the optimum is a maximally-unrolled variant with a
    balanced mix — the dual-port schedule a human tuner would hand-craft.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    kernels = creator.generate(loadstore_family("movaps"))
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L1),
        trip_count=1 << 14,
        experiments=2 if quick else 3,
        repetitions=4,
    )
    result = tune(
        kernels, launcher, options, objective="cycles_per_memory_instruction"
    )
    table = Table(header=("knob", "variance share"), title="attribution")
    ranked_knobs = sorted(result.importance.items(), key=lambda kv: -kv[1])
    for key, score in ranked_knobs:
        table.add(key, score)
    best_mix = result.best.mix
    balanced = abs(best_mix.count("L") - best_mix.count("S")) <= 1
    return ExperimentResult(
        exhibit="ext_autotune",
        title="auto-tune + variance attribution over 510 variants (extension)",
        paper_expectation=(
            "future work: 'data-mining techniques allow to process the "
            "MicroTools data ... to automate the analysis'"
        ),
        tables=[table],
        notes={
            "n_variants": len(result.ranked),
            "best_unroll": result.best.unroll,
            "best_mix": best_mix,
            "headroom": result.tuning_headroom,
            "unroll_and_mix_lead": {k for k, _ in ranked_knobs[:2]}
            == {"unroll", "mix"},
            "best_is_max_unroll": result.best.unroll == 8,
            "best_mix_is_balanced": balanced,
        },
    )


@register("ext_abstraction")
def ext_abstraction(**_: object) -> ExperimentResult:
    """Application-driven generation (future work).

    Abstract a 'hotspot' (a compiled-looking unroll-4 loop) back into a
    kernel description, regenerate the family, and check (a) the original
    body is recovered at the same unroll factor and (b) the re-opened
    sweep finds a better variant.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    hotspot = next(
        k for k in creator.generate(loadstore_family("movaps"))
        if k.unroll == 2 and k.mix == "LL"
    )
    spec = abstract_program(hotspot.program, unroll=(1, 8))
    family = MicroCreator().generate(spec)
    regenerated = next(k for k in family if k.unroll == 2)
    roundtrip = regenerated.asm_text() == hotspot.asm_text()

    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L1),
        trip_count=1 << 14,
        experiments=3,
        repetitions=4,
    )
    original = launcher.run(hotspot, options).cycles_per_memory_instruction
    best = min(
        m.cycles_per_memory_instruction
        for m in launcher.run_batch(family, options)
    )
    table = Table(header=("variant", "cycles/move"), title="around the hotspot")
    table.add("original (unroll 2)", original)
    table.add("best of abstracted family", best)
    return ExperimentResult(
        exhibit="ext_abstraction",
        title="hotspot abstraction and re-optimization (extension)",
        paper_expectation=(
            "future work: 'applications drive MicroCreator's generated "
            "code to test variations around the application's hotspots'"
        ),
        tables=[table],
        notes={
            "roundtrip_exact": roundtrip,
            "family_size": len(family),
            "found_improvement": best < original,
            "improvement": original / best,
        },
    )
