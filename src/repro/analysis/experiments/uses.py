"""Section 3.5 "current uses" studies.

The paper lists ongoing MicroCreator uses beyond the evaluation: stencil
modeling, stride effects, alignment effects, and "how many arithmetic
instructions are hidden by the latencies of a memory-based kernel".
These experiments make each claim executable.
"""

from __future__ import annotations

from repro.analysis.experiments import ExperimentResult, register
from repro.analysis.series import Series, Table
from repro.analysis.stats import find_knee, is_monotone_increasing
from repro.creator import MicroCreator
from repro.kernels.stencil import stencil_kernel, stencil_spec
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import MemLevel, nehalem_2s_x5650
from repro.spec.builders import KernelBuilder
from repro.spec.schema import InstructionSpec, RegisterRef


def _hiding_spec(n_arith: int) -> "KernelBuilder":
    """A RAM-streaming load kernel with ``n_arith`` independent packed
    adds layered on top."""
    builder = (
        KernelBuilder(f"hiding_{n_arith}")
        .load("movaps", base="r1", xmm_range=(0, 4))
    )
    for i in range(n_arith):
        reg = RegisterRef(f"%xmm{4 + (i % 4)}")
        builder.instruction(
            InstructionSpec(operations=("addps",), operands=(reg, reg))
        )
    return (
        builder.unroll(2, 2)
        .pointer_induction("r1", step=16)
        .counter_induction("r0", linked_to="r1")
        .iteration_counter("%eax")
        .branch()
        .build()
    )


@register("arith_hiding")
def arith_hiding(*, quick: bool = False, **_: object) -> ExperimentResult:
    """How many arithmetic instructions hide under memory latency (§3.5).

    Layer k independent ``addps`` onto a RAM-streaming two-load kernel:
    while the FP-port time stays under the memory transfer time the
    cycles/iteration curve is flat — those instructions are *free*; past
    the crossover every additional add costs a full cycle.  The knee
    position is the machine's answer to the paper's question.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    counts = tuple(range(0, 13, 2)) if quick else tuple(range(0, 17))
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        experiments=3,
        repetitions=8,
    )
    kernels = [creator.generate(_hiding_spec(k))[0] for k in counts]
    measured = launcher.run_batch(kernels, options)
    xs = [float(k) for k in counts]
    ys = [m.cycles_per_iteration for m in measured]
    series = Series("2x movaps from RAM + k addps", tuple(xs), tuple(ys))
    knee = find_knee(xs, ys, threshold=0.05)
    flat_region = ys[0]
    return ExperimentResult(
        exhibit="arith_hiding",
        title="arithmetic instructions hidden by memory latency (section 3.5)",
        paper_expectation=(
            "'how many arithmetic instructions are hidden by the latencies "
            "of a memory-based kernel' — flat then linear, knee at the "
            "memory/compute crossover"
        ),
        series=[series],
        x_label="adds",
        notes={
            "hidden_instructions": knee,
            "has_free_region": knee is not None and knee >= 2
            and ys[1] < flat_region * 1.02,
            "eventually_costs": ys[-1] > flat_region * 1.2,
        },
    )


@register("stride_study")
def stride_study(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Stride effects (§3.5): one input file, one stride dimension.

    A single ``<stride>`` node sweeps the pointer's step multiplier; the
    machine answers with three regimes:

    1. dense strides (step <= line): traffic equals the payload — cheap,
       cost grows proportionally with the stride multiplier;
    2. wide strides (step > line): every access drags a full line — the
       cost saturates at the line-transfer time, a line/payload = 8x
       jump over the dense case for 8-byte loads;
    3. very wide strides (step > prefetch coverage): the hardware
       prefetcher gives up, demand misses run at the OOO window's limited
       parallelism, and the exposed latency adds another cliff (which
       software prefetching recovers — ``ablation_sw_prefetch``).
    """
    from repro.kernels import strided_kernel

    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    strides = (1, 2, 4, 16, 128) if quick else (1, 2, 4, 8, 16, 32, 64, 128)
    variants = creator.generate(
        strided_kernel("movsd", strides=strides, unroll=(1, 1))
    )
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.RAM),
        trip_count=1 << 14,
        experiments=3,
        repetitions=8,
    )
    by_stride: dict[int, float] = {}
    for variant, m in zip(variants, launcher.run_batch(variants, options)):
        stride = int(variant.metadata["stride:r1"])  # type: ignore[arg-type]
        by_stride[stride] = m.cycles_per_memory_instruction
    xs = tuple(float(s) for s in sorted(by_stride))
    ys = tuple(by_stride[int(s)] for s in xs)
    series = Series("movsd load from RAM", xs, ys)
    dense = by_stride[1]
    # 8-byte payload: the dense/full-line traffic ratio is 64/8 = 8x.
    wide = by_stride[16]  # step 128 B > line
    return ExperimentResult(
        exhibit="stride_study",
        title="stride effects on a RAM-streaming load (section 3.5)",
        paper_expectation=(
            "'detect the effect of strides on various microbenchmark "
            "program templates' — cost jumps at the line size and again "
            "past prefetch coverage"
        ),
        series=[series],
        x_label="stride",
        notes={
            "dense_cycles": dense,
            "wide_over_dense": wide / dense,
            "monotone": is_monotone_increasing(ys, tolerance=0.02),
            "line_jump_visible": wide / dense > 3.0,
            "prefetch_cliff": by_stride[max(by_stride)] > 1.5 * wide,
        },
    )


@register("reduction_study")
def reduction_study(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Accumulator splitting on a dot product (the classic chain study).

    One accumulator: the loop-carried ``addss`` chain (3 cycles) sets the
    pace regardless of unrolling.  K rotated accumulators divide the
    chain by K until the load port becomes the limit (two loads per
    element on one port = 2 cycles/element on Nehalem).  The knee —
    here at K = 2 — is the machine answering "how many partial sums do I
    need?", the kind of question the MicroTools exist to automate.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    from repro.kernels.reduction import dot_product_spec

    ks = (1, 2, 4, 8) if quick else (1, 2, 3, 4, 6, 8)
    options = LauncherOptions(
        array_bytes=machine.footprint_for(MemLevel.L1),
        trip_count=1 << 14,
        experiments=3,
        repetitions=8,
    )
    kernels = [creator.generate(dot_product_spec(k))[0] for k in ks]
    measured = launcher.run_batch(kernels, options)
    xs = [float(k) for k in ks]
    ys = [m.cycles_per_element for m in measured]
    bottlenecks = [m.bottleneck for m in measured]
    series = Series("dot product, unroll 8", tuple(xs), tuple(ys))
    table = Table(header=("accumulators", "cycles/element", "bottleneck"),
                  title="accumulator splitting")
    for x, y, b in zip(xs, ys, bottlenecks):
        table.add(int(x), y, b)
    return ExperimentResult(
        exhibit="reduction_study",
        title="dot-product accumulator splitting",
        paper_expectation=(
            "single-accumulator reductions are chain-bound; splitting "
            "recovers port-limited throughput"
        ),
        series=[series],
        tables=[table],
        x_label="accumulators",
        notes={
            "serial_is_chain_bound": bottlenecks[0] == "recurrence",
            "split_is_port_bound": bottlenecks[-1].startswith("port:"),
            "splitting_helps": ys[1] < ys[0] * 0.85,
            "saturates": abs(ys[-1] - ys[1]) / ys[1] < 0.05,
            "speedup": ys[0] / ys[-1],
        },
    )


@register("stencil_study")
def stencil_study(*, quick: bool = False, **_: object) -> ExperimentResult:
    """Stencil modeling (§3.5): compiled stencil vs MicroCreator abstraction.

    Both forms of the three-point stencil are swept over unroll factors
    at an L2-resident size: the abstraction must track the compiled
    kernel's unrolling behaviour (it carries the same traffic), and both
    must improve with unrolling.
    """
    machine = nehalem_2s_x5650()
    launcher = MicroLauncher(machine)
    creator = MicroCreator()
    n = 32 * 1024  # elements; two float arrays of 128 KiB -> L2-resident
    factors = (1, 2, 4, 8) if quick else tuple(range(1, 9))
    options = LauncherOptions(
        array_bytes=n * 4,
        trip_count=n,
        experiments=3,
        repetitions=8,
    )
    spec_variants = {
        k.unroll: k for k in creator.generate(stencil_spec("movss"))
    }
    xs = [float(u) for u in factors]
    compiled_ms = launcher.run_batch([stencil_kernel(n, u) for u in factors], options)
    abstract_ms = launcher.run_batch([spec_variants[u] for u in factors], options)
    compiled_y = [m.cycles_per_element for m in compiled_ms]
    abstract_y = [m.cycles_per_element for m in abstract_ms]
    series = [
        Series("compiled stencil", tuple(xs), tuple(compiled_y)),
        Series("microcreator stencil", tuple(xs), tuple(abstract_y)),
    ]
    agreement = max(
        abs(a - c) / c for a, c in zip(abstract_y, compiled_y)
    )
    return ExperimentResult(
        exhibit="stencil_study",
        title="three-point stencil: compiled vs abstracted (section 3.5)",
        paper_expectation=(
            "'users are modeling unrolled codes and stencil codes with the "
            "MicroCreator tool' — the abstraction tracks the compiled code"
        ),
        series=series,
        x_label="unroll",
        notes={
            "unroll_helps_compiled": compiled_y[-1] < compiled_y[0],
            "unroll_helps_abstracted": abstract_y[-1] < abstract_y[0],
            "max_disagreement": agreement,
            "tracks_compiled": agreement < 0.35,
        },
    )
