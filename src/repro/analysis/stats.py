"""Shape statistics for experiment assertions.

The reproduction's acceptance criterion is *shape*, not absolute numbers
(DESIGN.md): who wins, by roughly what factor, where knees and crossovers
fall.  These helpers turn those statements into assertable quantities.
"""

from __future__ import annotations

from typing import Sequence


def relative_change(first: float, last: float) -> float:
    """(first - last) / first — positive when ``last`` improved on
    ``first`` for a lower-is-better metric."""
    if first == 0:
        raise ValueError("relative change undefined for a zero baseline")
    return (first - last) / first


def relative_spread(values: Sequence[float]) -> float:
    """(max - min) / min — the paper's alignment/stability spreads."""
    lo = min(values)
    if lo == 0:
        raise ValueError("relative spread undefined for a zero minimum")
    return (max(values) - lo) / lo


def is_monotone_decreasing(values: Sequence[float], *, tolerance: float = 0.0) -> bool:
    """Non-increasing within ``tolerance`` (fractional, per step)."""
    return all(
        b <= a * (1.0 + tolerance) for a, b in zip(values, values[1:])
    )


def is_monotone_increasing(values: Sequence[float], *, tolerance: float = 0.0) -> bool:
    return all(
        b >= a * (1.0 - tolerance) for a, b in zip(values, values[1:])
    )


def find_knee(
    x: Sequence[float], y: Sequence[float], *, threshold: float = 0.10
) -> float | None:
    """First X beyond which Y starts growing by more than ``threshold``
    per step — the Fig. 14 "breaking point".

    Returns the last X of the flat region (the knee itself), or ``None``
    when the curve never takes off.
    """
    if len(x) != len(y) or len(x) < 2:
        raise ValueError("need two same-length sequences with >= 2 points")
    for i in range(1, len(y)):
        if y[i - 1] > 0 and (y[i] - y[i - 1]) / y[i - 1] > threshold:
            return x[i - 1]
    return None


def crossover(
    x: Sequence[float], y_a: Sequence[float], y_b: Sequence[float]
) -> float | None:
    """First X where series A stops being the smaller of the two."""
    if not (len(x) == len(y_a) == len(y_b)):
        raise ValueError("sequences must share a length")
    was_a_smaller = None
    for xi, a, b in zip(x, y_a, y_b):
        a_smaller = a < b
        if was_a_smaller is not None and a_smaller != was_a_smaller:
            return xi
        was_a_smaller = a_smaller
    return None
