"""Full reproduction report generation.

``build_report`` runs every registered experiment and renders one
markdown document — the artifact behind EXPERIMENTS.md and the
``microlauncher --report`` CLI mode.  Ablations and extensions are
grouped separately from the paper exhibits so the report reads like the
paper's evaluation section.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.experiments import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)

#: Render order: paper exhibits, then reproduction ablations, extensions.
_SECTIONS = (
    ("Paper exhibits", lambda n: n.startswith(("fig", "table")) or n == "generation_scale" or n == "stability"),
    ("Design-choice ablations", lambda n: n.startswith("ablation_")),
    ("Extensions (paper future work)", lambda n: n.startswith("ext_")),
)


def build_report(
    *,
    quick: bool = False,
    exhibits: list[str] | None = None,
) -> str:
    """Run experiments and render a markdown report.

    Parameters
    ----------
    quick:
        Use the reduced sweeps (for smoke runs).
    exhibits:
        Explicit exhibit list; defaults to everything registered.
    """
    names = exhibits if exhibits is not None else available_experiments()
    results: dict[str, ExperimentResult] = {}
    for name in names:
        results[name] = run_experiment(name, quick=quick)

    lines = [
        "# MicroTools reproduction report",
        "",
        f"{len(results)} exhibits regenerated"
        + (" (quick sweeps)" if quick else " (full sweeps)")
        + ".",
        "",
    ]
    shape_failures: list[str] = []
    for section, predicate in _SECTIONS:
        selected = [n for n in names if predicate(n) and n in results]
        if not selected:
            continue
        lines.append(f"## {section}")
        lines.append("")
        for name in selected:
            result = results[name]
            lines.append("```")
            lines.append(result.render())
            lines.append("```")
            lines.append("")
            failed = [
                k for k, v in result.notes.items()
                if isinstance(v, bool) and not v
            ]
            if failed:
                shape_failures.append(f"{name}: {failed}")
    lines.append("## Verdict")
    lines.append("")
    if shape_failures:
        lines.append("Shape claims FAILED:")
        for failure in shape_failures:
            lines.append(f"- {failure}")
    else:
        lines.append(
            f"All {len(results)} exhibits reproduce their shape claims."
        )
    lines.append("")
    return "\n".join(lines)


def write_report(path: str | Path, **kwargs) -> Path:
    """Build the report and write it to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_report(**kwargs))
    return path
