"""Automated analysis of MicroTools data (paper future work).

"Data-mining techniques allow to process the MicroTools data generated in
order to automate the analysis.  Both together form a cohesive solution
to application characterization" (section 7).  This module closes that
loop: it sweeps a generated variant family through MicroLauncher, finds
the optimum, and *attributes* the observed variance to the generation
knobs (unroll factor, instruction choice, load/store mix, stride, ...)
so the user learns which dimension of the search space actually matters
on the target machine.

Attribution uses the one-way variance decomposition per metadata key:
``importance(key) = between-group variance / total variance`` when the
variants are grouped by that key's value.  A key whose groups have very
different means (e.g. ``unroll`` for an L1-resident kernel) scores near
1; a key the machine ignores (e.g. alignment for an in-cache matmul)
scores near 0.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Sequence

from repro.creator.generator import MicroCreator
from repro.creator.variant import GeneratedKernel
from repro.launcher.launcher import MicroLauncher
from repro.launcher.measurement import Measurement
from repro.launcher.options import LauncherOptions
from repro.spec.schema import KernelSpec

#: Internal metadata keys that are results, not knobs.
_NON_KNOB_KEYS = frozenset({"n_loads", "n_stores", "opcodes", "random_pick"})


@dataclass(slots=True)
class TuneResult:
    """Outcome of one auto-tuning sweep."""

    best: GeneratedKernel
    best_measurement: Measurement
    ranked: list[tuple[GeneratedKernel, float]]
    importance: dict[str, float] = field(default_factory=dict)
    objective: str = "cycles_per_iteration"

    @property
    def best_value(self) -> float:
        return self.ranked[0][1]

    @property
    def worst_value(self) -> float:
        return self.ranked[-1][1]

    @property
    def tuning_headroom(self) -> float:
        """worst/best — how much choosing the right variant buys."""
        return self.worst_value / self.best_value if self.best_value else 0.0

    def dominant_knob(self) -> str | None:
        """The generation knob explaining the most variance."""
        if not self.importance:
            return None
        return max(self.importance, key=lambda k: self.importance[k])

    def report(self) -> str:
        lines = [
            f"auto-tune over {len(self.ranked)} variants "
            f"(objective: {self.objective})",
            f"best : {self.best.name}  unroll={self.best.unroll} "
            f"mix={self.best.mix or '-'}  -> {self.best_value:.3f}",
            f"worst: {self.ranked[-1][0].name}  -> {self.worst_value:.3f}  "
            f"(headroom {self.tuning_headroom:.2f}x)",
            "variance attribution:",
        ]
        for key, score in sorted(
            self.importance.items(), key=lambda kv: -kv[1]
        ):
            bar = "#" * int(score * 40)
            lines.append(f"  {key:16s} {score:6.3f} {bar}")
        return "\n".join(lines)


def _objective_value(measurement: Measurement, objective: str) -> float:
    value = getattr(measurement, objective)
    if not isinstance(value, (int, float)):
        raise ValueError(f"objective {objective!r} is not numeric")
    return float(value)


def variance_attribution(
    values: Sequence[float], keys: Sequence[dict[str, object]]
) -> dict[str, float]:
    """Per-key between-group variance share.

    ``values[i]`` is variant *i*'s objective; ``keys[i]`` its metadata.
    Keys with a single distinct value are skipped (no knob to turn).
    """
    if len(values) != len(keys):
        raise ValueError("values/keys length mismatch")
    if len(values) < 2:
        return {}
    total_var = statistics.pvariance(values)
    if total_var == 0:
        return {}
    grand_mean = statistics.fmean(values)
    importance: dict[str, float] = {}
    all_keys = {
        k
        for md in keys
        for k in md
        if k not in _NON_KNOB_KEYS and not k.startswith("_")
    }
    for key in all_keys:
        groups: dict[object, list[float]] = {}
        for value, md in zip(values, keys):
            groups.setdefault(str(md.get(key)), []).append(value)
        if len(groups) < 2:
            continue
        between = sum(
            len(g) * (statistics.fmean(g) - grand_mean) ** 2
            for g in groups.values()
        ) / len(values)
        importance[key] = between / total_var
    return importance


def tune(
    spec_or_kernels: KernelSpec | Sequence[GeneratedKernel],
    launcher: MicroLauncher,
    options: LauncherOptions | None = None,
    *,
    objective: str = "cycles_per_iteration",
    creator: MicroCreator | None = None,
) -> TuneResult:
    """Sweep a variant family and return the optimum plus attribution.

    Accepts either a kernel description (generated internally) or an
    already-generated variant list.
    """
    options = options or LauncherOptions()
    if isinstance(spec_or_kernels, KernelSpec):
        kernels = (creator or MicroCreator()).generate(spec_or_kernels)
    else:
        kernels = list(spec_or_kernels)
    if not kernels:
        raise ValueError("nothing to tune: no variants")

    scored: list[tuple[GeneratedKernel, float, Measurement]] = []
    for kernel in kernels:
        measurement = launcher.run(kernel, options)
        scored.append((kernel, _objective_value(measurement, objective), measurement))
    scored.sort(key=lambda t: t[1])

    importance = variance_attribution(
        [s[1] for s in scored], [s[0].metadata for s in scored]
    )
    best_kernel, _, best_measurement = scored[0]
    return TuneResult(
        best=best_kernel,
        best_measurement=best_measurement,
        ranked=[(k, v) for k, v, _ in scored],
        importance=importance,
        objective=objective,
    )
