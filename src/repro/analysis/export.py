"""Exhibit data export.

Writes an :class:`~repro.analysis.experiments.ExperimentResult`'s series
and tables as plot-ready CSV files (one per series family / table), so
users can regenerate the paper's figures in their plotting tool of
choice::

    microlauncher --exhibit fig11 --save-data out/fig11/
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.experiments import ExperimentResult
from repro.analysis.series import Series, Table


def export_series(series: list[Series], path: Path, *, x_label: str = "x") -> Path:
    """Write a series family as one wide CSV (x column + one per series)."""
    xs = sorted({x for s in series for x in s.x})
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label] + [s.label for s in series])
        for x in xs:
            row: list[object] = [x]
            for s in series:
                try:
                    row.append(s.at(x))
                except KeyError:
                    row.append("")
            writer.writerow(row)
    return path


def export_table(table: Table, path: Path) -> Path:
    """Write one table as CSV."""
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.header)
        for row in table.rows:
            writer.writerow(row)
    return path


def export_result(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write everything an exhibit produced into ``directory``.

    Returns the written paths: ``<exhibit>_series.csv`` when the exhibit
    has plot lines, ``<exhibit>_table<N>.csv`` per table, and
    ``<exhibit>_notes.csv`` with the scalar findings.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    if result.series:
        written.append(
            export_series(
                result.series,
                directory / f"{result.exhibit}_series.csv",
                x_label=result.x_label,
            )
        )
    for i, table in enumerate(result.tables):
        written.append(
            export_table(table, directory / f"{result.exhibit}_table{i}.csv")
        )
    notes_path = directory / f"{result.exhibit}_notes.csv"
    with notes_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["note", "value"])
        for key, value in result.notes.items():
            writer.writerow([key, value])
    written.append(notes_path)
    return written
