"""Labelled data series and ASCII table rendering.

The paper's exhibits are either line plots (a family of series over an X
axis) or tables; these two classes carry both forms from the experiment
implementations to the benchmark harness, which prints them as the rows
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass(frozen=True, slots=True)
class Series:
    """One plot line: (x, y) pairs with a label."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: {len(self.x)} x values vs "
                f"{len(self.y)} y values"
            )

    def __len__(self) -> int:
        return len(self.x)

    @property
    def y_min(self) -> float:
        return min(self.y)

    @property
    def y_max(self) -> float:
        return max(self.y)

    def at(self, x: float) -> float:
        """Y value at an exact X (experiments use discrete X grids)."""
        try:
            return self.y[self.x.index(x)]
        except ValueError:
            raise KeyError(f"series {self.label!r} has no point at x={x}") from None

    def ratio(self, first: float | None = None, last: float | None = None) -> float:
        """y(first) / y(last) — e.g. the unroll-1 to unroll-8 gain."""
        x0 = self.x[0] if first is None else first
        x1 = self.x[-1] if last is None else last
        return self.at(x0) / self.at(x1)


@dataclass(slots=True)
class Table:
    """A printable table: header plus rows of cells."""

    header: tuple[str, ...]
    rows: list[tuple[object, ...]] = field(default_factory=list)
    title: str = ""

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.header):
            raise ValueError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(cells)

    def column(self, name: str) -> list[object]:
        idx = self.header.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width ASCII rendering."""
        def fmt(cell: object) -> str:
            if isinstance(cell, float):
                return f"{cell:.3f}"
            return str(cell)

        cells = [tuple(fmt(c) for c in row) for row in self.rows]
        widths = [
            max(len(self.header[i]), *(len(r[i]) for r in cells)) if cells else len(self.header[i])
            for i in range(len(self.header))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


def render_series(series: Sequence[Series], *, x_label: str = "x") -> str:
    """Render a family of series as one table, X down the side."""
    xs = sorted({x for s in series for x in s.x})
    table = Table(header=(x_label, *(s.label for s in series)))
    for x in xs:
        row: list[object] = [x]
        for s in series:
            try:
                row.append(s.at(x))
            except KeyError:
                row.append("")
        table.add(*row)
    return table.render()
