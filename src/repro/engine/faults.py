"""Deterministic fault injection for the campaign engine.

Robustness code is only trustworthy if its failure modes are testable.
This module provides a seedable, picklable :class:`FaultPlan` that the
scheduler threads through to workers: a chosen job can be made to
raise, hang, return garbage, or kill its worker process at a chosen
attempt.  The plan is pure data — re-running the same plan reproduces
the same failures in the same places, which is what makes the
failure-mode test suite (``tests/engine/test_fault_injection.py``)
deterministic and lets a flaky campaign be replayed exactly.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

#: Fault kinds a worker knows how to perform.
FAULT_KINDS = ("raise", "hang", "garbage", "crash")

#: Payload a ``garbage`` fault returns in place of measurement dicts.
GARBAGE_PAYLOAD = ({"injected": "garbage"},)


class InjectedFault(RuntimeError):
    """Raised in place of executing a job with an active ``raise`` fault."""


@dataclass(frozen=True, slots=True)
class Fault:
    """One job's misbehaviour: what happens, and on which attempts.

    kind:
        ``raise``   -- the job raises :class:`InjectedFault`;
        ``hang``    -- the job stalls ``hang_seconds`` before running
        normally (a finite stand-in for an infinite hang, so workers
        leaked by timeout tests still exit on their own);
        ``garbage`` -- the job returns a payload that is not a list of
        measurement dicts;
        ``crash``   -- the executing process dies with ``os._exit``
        (only meaningful under ``jobs>1``; inline it kills the caller,
        which is exactly what a crash does).
    until_attempt:
        Fault on attempts ``0 .. until_attempt-1`` and behave from then
        on; ``None`` faults on every attempt.
    """

    kind: str
    until_attempt: int | None = None
    hang_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; have {FAULT_KINDS}")

    def active(self, attempt: int) -> bool:
        return self.until_attempt is None or attempt < self.until_attempt


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A deterministic ``job_id -> Fault`` mapping, safe to ship to workers."""

    faults: Mapping[str, Fault] = field(default_factory=dict)

    @classmethod
    def for_job(
        cls,
        job_id: str,
        kind: str,
        *,
        until_attempt: int | None = None,
        hang_seconds: float = 2.0,
    ) -> "FaultPlan":
        """A plan faulting exactly one job."""
        return cls({job_id: Fault(kind, until_attempt, hang_seconds)})

    @classmethod
    def random(
        cls,
        job_ids: Iterable[str],
        *,
        seed: int,
        kind: str = "raise",
        count: int = 1,
        until_attempt: int | None = None,
        hang_seconds: float = 2.0,
    ) -> "FaultPlan":
        """Pick ``count`` victims reproducibly from ``seed``.

        The candidate set is sorted first, so the draw depends only on
        the seed and the ids — never on iteration order.
        """
        pool = sorted(job_ids)
        chosen = random.Random(seed).sample(pool, min(count, len(pool)))
        return cls(
            {job_id: Fault(kind, until_attempt, hang_seconds) for job_id in chosen}
        )

    def __len__(self) -> int:
        return len(self.faults)

    def fault_for(self, job_id: str, attempt: int) -> Fault | None:
        """The fault to perform for this job at this attempt, if any."""
        fault = self.faults.get(job_id)
        if fault is not None and fault.active(attempt):
            return fault
        return None

    def perform(self, job_id: str, attempt: int) -> list[dict] | None:
        """Carry out the job's active fault; ``None`` means run normally.

        A ``garbage`` fault returns its bogus payload, ``hang`` sleeps
        and then lets the job proceed, ``raise`` raises, and ``crash``
        never returns.
        """
        fault = self.fault_for(job_id, attempt)
        if fault is None:
            return None
        if fault.kind == "raise":
            raise InjectedFault(
                f"injected failure for job {job_id} (attempt {attempt})"
            )
        if fault.kind == "crash":
            os._exit(13)
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
            return None
        return [dict(d) for d in GARBAGE_PAYLOAD]
