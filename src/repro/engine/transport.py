"""Packed chunk-result transport between workers and the scheduler.

Workers used to answer each chunk with one pickled
``list[(job_id, list[dict])]`` — every ``experiment_tsc`` float crossed
the pipe as an individual pickled object.  This module packs a chunk's
results into one schema-versioned binary frame instead: the float bulk
(every measurement's ``experiment_tsc`` samples) is carried as a single
contiguous little-endian ``float64`` section, and the remaining
measurement fields plus per-job wall-clock durations travel in a compact
pickle header.  ``float64`` round-trips Python floats exactly, so the
parent-side unpack reproduces the worker's dicts bit for bit and the
JSONL/CSV output stays byte-identical to the per-dict path.

The format is self-describing and versioned so a parent never trusts a
frame blindly: :func:`unpack_chunk` raises :class:`TransportError` on a
bad magic, an unknown version, or a truncated float section, which the
scheduler treats exactly like any other failed chunk.

Payloads that are not well-formed measurement lists (fault-injected
garbage, crash debris) are carried verbatim in the header — transport
never sanitizes; validation stays where it always was, in
:func:`repro.engine.serialize.measurements_from_payload`.
"""

from __future__ import annotations

import pickle

import numpy as np

#: Frame magic + format version.  Bump the digit when the layout changes;
#: parents reject frames they cannot interpret instead of guessing.
MAGIC = b"RPK1"

#: Bytes of the frame occupied by the fixed prefix: magic plus the
#: big-endian uint32 header length.
_PREFIX = len(MAGIC) + 4


class TransportError(ValueError):
    """A packed chunk frame is malformed (magic/version/truncation)."""


def _strippable(payload: object) -> bool:
    """Whether every ``experiment_tsc`` can move to the float section.

    Only payloads shaped like real measurement lists — dicts whose
    ``experiment_tsc`` is a list of genuine Python floats — are packed.
    Anything else (injected garbage, ints smuggled into the samples)
    rides in the header unchanged so unpacking is exact by construction.
    """
    if not isinstance(payload, list) or not payload:
        return False
    for entry in payload:
        if not isinstance(entry, dict):
            return False
        tsc = entry.get("experiment_tsc")
        if not isinstance(tsc, list):
            return False
        if any(type(v) is not float for v in tsc):
            return False
    return True


def pack_chunk(records: list[tuple[str, object, float]]) -> bytes:
    """Pack ``(job_id, payload, duration_s)`` results into one frame.

    ``payload`` is whatever the job produced — normally the
    ``list[dict]`` from ``_run_job``, but fault injection can hand back
    arbitrary debris, which is preserved verbatim.
    """
    floats: list[float] = []
    header_records: list[dict] = []
    for job_id, payload, duration_s in records:
        entry: dict = {"job_id": job_id, "duration_ms": duration_s * 1e3}
        if _strippable(payload):
            stripped = []
            counts = []
            positions = []
            for d in payload:  # type: ignore[union-attr]
                # Key order reaches the JSONL store verbatim
                # (``json.dumps`` without ``sort_keys``), so remember
                # where ``experiment_tsc`` sat and restore it in place.
                positions.append(list(d).index("experiment_tsc"))
                rest = dict(d)
                tsc = rest.pop("experiment_tsc")
                counts.append(len(tsc))
                floats.extend(tsc)
                stripped.append(rest)
            entry["dicts"] = stripped
            entry["tsc_counts"] = counts
            entry["tsc_index"] = positions
        else:
            entry["raw"] = payload
        header_records.append(entry)
    section = np.asarray(floats, dtype="<f8").tobytes()
    header = pickle.dumps(
        {"records": header_records, "n_floats": len(floats)},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return b"".join(
        (MAGIC, len(header).to_bytes(4, "big"), header, section)
    )


def unpack_chunk(frame: bytes) -> list[tuple[str, object, float]]:
    """Decode :func:`pack_chunk` output back to ``(job_id, payload, ms)``.

    Returns durations in **milliseconds** (ready for the
    ``engine.job.duration_ms`` histogram).  Raises
    :class:`TransportError` if the frame cannot be interpreted.
    """
    if len(frame) < _PREFIX or frame[: len(MAGIC)] != MAGIC:
        raise TransportError("bad chunk frame magic")
    header_len = int.from_bytes(frame[len(MAGIC) : _PREFIX], "big")
    if len(frame) < _PREFIX + header_len:
        raise TransportError("truncated chunk frame header")
    try:
        header = pickle.loads(frame[_PREFIX : _PREFIX + header_len])
    except Exception as exc:
        raise TransportError(f"undecodable chunk frame header: {exc}") from None
    if not isinstance(header, dict) or "records" not in header:
        raise TransportError("chunk frame header is not a record map")
    n_floats = int(header.get("n_floats", 0))
    section = frame[_PREFIX + header_len :]
    if len(section) != 8 * n_floats:
        raise TransportError(
            f"float section holds {len(section)} bytes, expected {8 * n_floats}"
        )
    # One C-level conversion for the whole frame: slicing the Python
    # list per measurement is far cheaper than a numpy round-trip per
    # tiny tsc array.
    samples = np.frombuffer(section, dtype="<f8").tolist()
    results: list[tuple[str, object, float]] = []
    cursor = 0
    for entry in header["records"]:
        job_id = entry["job_id"]
        duration_ms = entry["duration_ms"]
        if "raw" in entry:
            results.append((job_id, entry["raw"], duration_ms))
            continue
        payload = []
        for rest, count, index in zip(
            entry["dicts"], entry["tsc_counts"], entry["tsc_index"]
        ):
            tsc = samples[cursor : cursor + count]
            if len(tsc) != count:
                raise TransportError("float section shorter than tsc counts")
            cursor += count
            items = list(rest.items())
            items.insert(index, ("experiment_tsc", tsc))
            payload.append(dict(items))
        results.append((job_id, payload, duration_ms))
    return results
