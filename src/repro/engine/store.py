"""The sharded segment store: indexed resume and a columnar read path.

The single-file JSONL caches (:mod:`repro.engine.cache`,
:mod:`repro.engine.gencache`) re-parse every line on every load, so
resume cost grows linearly with campaign size — a wall the 10^6–10^7-job
characterization sweeps on the roadmap hit immediately.  This module
keeps the *storage discipline* of :class:`~repro.engine.cache.JsonlCache`
(whole-record checksums, damaged lines skipped, atomic self-repair,
torn-tail handling) but changes the layout so membership tests, resume
scans, and aggregation never parse payloads they do not need:

``<cache_dir>/results.shards/`` (resp. ``gencache.shards/``)::

    store.json                  {"format": 1, "shards": 8,
                                 "segment_records": 4096}
    index.bin                   header + packed (key64, shard, segment,
                                offset, length, crc) entries
    seg-SS-NNNNNN.jsonl         fixed-size JSONL segments, shard SS
    seg-SS-NNNNNN.col.npz       columnar sidecar of a *sealed* segment

Records are appended to the active segment of shard
``key64(key) % shards``; after every data append one index entry is
appended, so an intact index answers "is this job cached?" with one
``searchsorted`` over a memory-mapped-sized array — no JSON touched.
When a segment reaches ``segment_records`` records it is *sealed*: the
results store writes a numpy sidecar holding the cycle/experiment
columns of every record, which is what the zero-copy aggregation read
path (:meth:`ShardedResultCache.columns`) loads instead of
re-materializing measurement dicts.

Damage anywhere degrades exactly like the JSONL backend: a torn data
tail is re-scanned from the index's coverage point; a torn index tail is
truncated to whole entries; a flipped byte in a record fails its
checksum at read time and the key's shard is re-scanned; a flipped byte
in the index fails the per-entry CRC and the index is rebuilt from the
segments; a deleted ``index.bin`` is likewise rebuilt.  The first write
after damage was observed repairs the store atomically, exactly like
``JsonlCache._rewrite``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import statistics
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, Sequence

import numpy as np

from repro import obs
from repro.engine.cache import (
    CacheStats,
    ResultCache,
    record_check,
    valid_result_record,
)
from repro.engine.gencache import (
    CachedVariant,
    GenerationCache,
    generation_record,
    valid_generation_record,
    variants_from_record,
)

INDEX_MAGIC = b"RPROIDX1"
INDEX_VERSION = 1
#: Index file header: magic, version, shards, segment_records.
INDEX_HEADER = struct.Struct("<8sHHI")

#: One index entry.  ``key`` is the first 8 bytes of sha256(record key);
#: ``length`` excludes the trailing newline; ``crc`` covers the other
#: fields so a flipped byte anywhere in the index is detected at load.
ENTRY_DTYPE = np.dtype(
    [
        ("key", "<u8"),
        ("shard", "<u2"),
        ("segment", "<u4"),
        ("offset", "<u8"),
        ("length", "<u4"),
        ("crc", "<u4"),
    ]
)

_SEGMENT_RE = re.compile(r"^seg-(\d{2})-(\d{6})\.jsonl$")

_MIX1 = np.uint64(0x9E3779B97F4A7C15)
_MIX2 = np.uint64(0xC2B2AE3D27D4EB4F)
_MIX3 = np.uint64(0x165667B19E3779F9)


def key64(key: str) -> int:
    """The 64-bit index key for a record key (sha256 prefix)."""
    return int.from_bytes(
        hashlib.sha256(key.encode(errors="replace")).digest()[:8], "little"
    )


def _entry_crc(entries: np.ndarray) -> np.ndarray:
    """Vectorized per-entry CRC over every field except ``crc`` itself."""
    x = entries["key"] * _MIX1
    x = x ^ (entries["shard"].astype(np.uint64) + np.uint64(1)) * _MIX2
    x = x ^ (entries["segment"].astype(np.uint64) + np.uint64(3)) * _MIX3
    x = x ^ entries["offset"].astype(np.uint64) * _MIX2
    x = x ^ entries["length"].astype(np.uint64) * _MIX3
    x = x ^ (x >> np.uint64(29))
    return (x & np.uint64(0xFFFFFFFF)).astype(np.uint32)


@dataclass(slots=True)
class _Shard:
    """Mutable per-shard write state (active segment only)."""

    segment: int = 0
    size: int = 0
    records: int = 0
    torn: bool = False


@dataclass(slots=True)
class _SegmentScan:
    """One segment's scan result: valid locations, damage accounting."""

    valids: list = field(default_factory=list)  # (key, offset, length)
    records: list | None = None  # parsed records when keep=True
    raws: list | None = None  # raw valid lines when keep=True
    corrupt: int = 0
    torn: bool = False
    size: int = 0


class ShardedStore:
    """Generic sharded segment store; see the module docstring.

    The record shape is supplied by the caller: ``key_field`` names the
    primary-key field and ``valid_record`` is the structural+integrity
    predicate (the same ones the JSONL backends use, so both layouts
    accept exactly the same records).  ``columnar`` optionally maps a
    sealed segment's records to a dict of numpy arrays for the sidecar.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        key_field: str,
        valid_record: Callable[[object], bool],
        shards: int = 8,
        segment_records: int = 4096,
        columnar: Callable[[list[dict]], dict | None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.key_field = key_field
        self._valid = valid_record
        self._columnar = columnar
        self.shards = shards
        self.segment_records = segment_records
        self._keys = np.empty(0, dtype="<u8")
        self._locs = np.empty(0, dtype=ENTRY_DTYPE)
        self._overlay: dict[str, tuple[int, int, int, int]] = {}
        self._shard_state: dict[int, _Shard] = {}
        self._n = 0
        self._corrupt = 0
        self._dirty = False
        self._readers: dict[tuple[int, int], object] = {}
        self._appenders: dict[int, tuple[int, object]] = {}
        self._index_fh = None
        self._load()

    # -- paths ---------------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.directory / "store.json"

    @property
    def index_path(self) -> Path:
        return self.directory / "index.bin"

    def _segment_path(self, shard: int, segment: int) -> Path:
        return self.directory / f"seg-{shard:02d}-{segment:06d}.jsonl"

    def _sidecar_path(self, shard: int, segment: int) -> Path:
        return self.directory / f"seg-{shard:02d}-{segment:06d}.col.npz"

    def _segment_files(self) -> list[tuple[int, int, Path]]:
        found = []
        for path in self.directory.iterdir():
            m = _SEGMENT_RE.match(path.name)
            if m:
                found.append((int(m.group(1)), int(m.group(2)), path))
        return sorted(found)

    # -- basic protocol ------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, key: str) -> bool:
        if key in self._overlay:
            return True
        k = key64(key)
        # np.uint64 keeps searchsorted on the u8 fast path: probing with a
        # Python int below 2**63 would promote the whole array per call.
        i = int(np.searchsorted(self._keys, np.uint64(k)))
        return i < len(self._keys) and int(self._keys[i]) == k

    @property
    def corrupt_lines(self) -> int:
        """Damaged lines detected at load time (0 after a repair)."""
        return self._corrupt

    # -- load ----------------------------------------------------------

    def _load(self) -> None:
        meta_ok = self._read_meta()
        segments = self._segment_files()
        if not segments:
            # Fresh (or fully cleared) store: establish the layout files.
            # Any leftover index entries point at segments that no longer
            # exist, so reset the index to empty as well.
            self._write_meta()
            stale = self._read_index()
            if stale is None or len(stale):
                self._write_index(np.empty(0, dtype=ENTRY_DTYPE))
            return
        entries = self._read_index() if meta_ok else None
        if entries is None or not self._adopt_index(entries, segments):
            self._full_scan(heal=False)
            if not meta_ok:
                self._write_meta()

    def _read_meta(self) -> bool:
        try:
            meta = json.loads(self.meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        if not isinstance(meta, dict) or meta.get("format") != 1:
            return False
        shards = meta.get("shards")
        segment_records = meta.get("segment_records")
        if not isinstance(shards, int) or not isinstance(segment_records, int):
            return False
        if shards < 1 or segment_records < 1:
            return False
        # An existing store's geometry wins over constructor defaults:
        # the key->shard mapping is baked into the files on disk.
        self.shards = shards
        self.segment_records = segment_records
        return True

    def _write_meta(self) -> None:
        self.meta_path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "shards": self.shards,
                    "segment_records": self.segment_records,
                }
            )
            + "\n",
            encoding="utf-8",
        )

    def _read_index(self) -> np.ndarray | None:
        try:
            data = self.index_path.read_bytes()
        except OSError:
            return None
        if len(data) < INDEX_HEADER.size:
            return None
        magic, version, shards, segment_records = INDEX_HEADER.unpack_from(data)
        if (
            magic != INDEX_MAGIC
            or version != INDEX_VERSION
            or shards != self.shards
            or segment_records != self.segment_records
        ):
            return None
        body = data[INDEX_HEADER.size :]
        # A torn index append leaves a partial trailing entry; whole
        # entries before it are still good.
        n = len(body) // ENTRY_DTYPE.itemsize
        entries = np.frombuffer(
            body[: n * ENTRY_DTYPE.itemsize], dtype=ENTRY_DTYPE
        )
        if len(entries) and not bool(
            np.all(_entry_crc(entries) == entries["crc"])
        ):
            return None
        return entries

    def _adopt_index(
        self, entries: np.ndarray, segments: list[tuple[int, int, Path]]
    ) -> bool:
        """Accept the on-disk index if it exactly covers the segments.

        Sealed segments must be covered byte-for-byte; the active segment
        of each shard may extend past the index (a crash between a data
        append and its index append), in which case the uncovered tail is
        re-scanned.  Any other mismatch means the index can no longer be
        trusted and the caller rebuilds it from the segments.
        """
        sizes = {(sh, seg): path.stat().st_size for sh, seg, path in segments}
        active = {}
        for sh, seg, _path in segments:
            active[sh] = max(active.get(sh, seg), seg)
        if len(entries) and int(entries["shard"].max()) >= self.shards:
            return False
        ends = entries["offset"] + entries["length"] + 1
        code = entries["shard"].astype(np.int64) * 10**7 + entries[
            "segment"
        ].astype(np.int64)
        uniq, inverse = np.unique(code, return_inverse=True)
        max_end = np.zeros(len(uniq), dtype=np.int64)
        np.maximum.at(max_end, inverse, ends.astype(np.int64))
        counts = np.bincount(inverse, minlength=len(uniq))
        coverage: dict[tuple[int, int], tuple[int, int]] = {}
        for i, c in enumerate(uniq):
            pair = (int(c) // 10**7, int(c) % 10**7)
            if pair not in sizes:
                return False  # index points at a segment that is gone
            coverage[pair] = (int(max_end[i]), int(counts[i]))
        tails = []
        for (sh, seg), size in sizes.items():
            covered, n_records = coverage.get((sh, seg), (0, 0))
            sealed = seg < active[sh]
            if covered > size:
                return False  # index ahead of data: not ours
            if sealed and covered != size:
                return False  # sealed segments must match exactly
            if not sealed:
                state = self._shard_state.setdefault(sh, _Shard())
                state.segment = seg
                state.size = size
                state.records = n_records
                state.torn = not self._ends_with_newline(
                    self._segment_path(sh, seg), size
                )
                if covered < size:
                    tails.append((sh, seg, covered))
        self._build_lookup(entries)
        for sh, seg, covered in tails:
            self._rescan_tail(sh, seg, covered)
        return True

    def _ends_with_newline(self, path: Path, size: int) -> bool:
        if size == 0:
            return True
        with path.open("rb") as fh:
            fh.seek(-1, 2)
            return fh.read(1) == b"\n"

    def _rescan_tail(self, shard: int, segment: int, start: int) -> None:
        """Recover records appended after the index's last entry.

        Valid tail records go into the overlay *and* straight back into
        the index file, restoring the covered-exactly invariant before
        the segment can seal.  Damaged tail bytes count as corruption and
        schedule a repair, exactly like a damaged JSONL line.
        """
        path = self._segment_path(shard, segment)
        with path.open("rb") as fh:
            fh.seek(start)
            data = fh.read()
        scan = self._scan_bytes(data, base=start)
        state = self._shard_state.setdefault(shard, _Shard())
        for key, offset, length in scan.valids:
            if key not in self:
                self._n += 1
            self._overlay[key] = (shard, segment, offset, length)
            self._append_index_entry(key, shard, segment, offset, length)
        state.records += len(scan.valids)
        if scan.corrupt:
            self._corrupt += scan.corrupt
            self._dirty = True

    def _build_lookup(self, entries: np.ndarray) -> None:
        """Sorted-key lookup arrays, later entries winning duplicate keys."""
        if not len(entries):
            self._keys = np.empty(0, dtype="<u8")
            self._locs = np.empty(0, dtype=ENTRY_DTYPE)
            self._n = 0
            return
        order = np.argsort(entries["key"], kind="stable")
        ranked = entries[order]
        keys = ranked["key"]
        last_of_run = np.append(keys[1:] != keys[:-1], True)
        self._locs = ranked[last_of_run].copy()
        self._keys = self._locs["key"].copy()
        self._n = len(self._keys)

    # -- scanning / rebuild --------------------------------------------

    def _scan_bytes(
        self, data: bytes, *, base: int = 0, keep: bool = False
    ) -> _SegmentScan:
        scan = _SegmentScan(size=base + len(data))
        scan.torn = bool(data) and not data.endswith(b"\n")
        if keep:
            scan.records = []
            scan.raws = []
        pos = base
        for raw in data.split(b"\n"):
            offset = pos
            pos += len(raw) + 1
            if not raw.strip():
                continue  # blank separators are noise, not damage
            try:
                record = json.loads(raw)
            except ValueError:  # JSONDecodeError and UnicodeDecodeError
                record = None
            if (
                record is None
                or not self._valid(record)
                or not isinstance(record.get(self.key_field), str)
            ):
                scan.corrupt += 1
                continue
            scan.valids.append((record[self.key_field], offset, len(raw)))
            if keep:
                scan.records.append(record)
                scan.raws.append(raw)
        return scan

    def _scan_segment(self, path: Path, *, keep: bool = False) -> _SegmentScan:
        return self._scan_bytes(path.read_bytes(), keep=keep)

    def _full_scan(self, *, heal: bool) -> None:
        """Rebuild all state from the segment bytes alone.

        ``heal=False`` (the load path) only observes: damaged lines are
        counted and the store marked dirty, just like a JSONL load.
        ``heal=True`` (the repair path) rewrites every damaged or torn
        segment to exactly its valid lines — durably, via a fsynced tmp
        file — rebuilds sealed sidecars, and writes a fresh index.
        """
        self._close_handles()
        self._overlay = {}
        self._shard_state = {}
        segments = self._segment_files()
        active: dict[int, int] = {}
        for sh, seg, _path in segments:
            active[sh] = max(active.get(sh, seg), seg)
        entry_rows: list[tuple[str, int, int, int, int]] = []
        total_corrupt = 0
        for sh, seg, path in segments:
            scan = self._scan_segment(path, keep=heal)
            sealed = seg < active[sh]
            if heal and (scan.corrupt or scan.torn):
                scan = self._rewrite_segment(path, scan, sh, seg, sealed)
            total_corrupt += scan.corrupt
            entry_rows.extend(
                (key, sh, seg, off, length)
                for key, off, length in scan.valids
            )
            if not sealed:
                self._shard_state[sh] = _Shard(
                    segment=seg,
                    size=scan.size,
                    records=len(scan.valids),
                    torn=scan.torn,
                )
        entries = self._entries_array(entry_rows)
        self._build_lookup(entries)
        self._corrupt = total_corrupt
        self._dirty = total_corrupt > 0
        if not self._dirty:
            self._write_index(entries)

    def _rewrite_segment(
        self,
        path: Path,
        scan: _SegmentScan,
        shard: int,
        segment: int,
        sealed: bool,
    ) -> _SegmentScan:
        """Atomically compact one segment to its valid lines (durable)."""
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("wb") as fh:
            for raw in scan.raws or []:
                fh.write(raw + b"\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)
        if sealed and self._columnar is not None:
            self._write_sidecar(shard, segment, scan.records or [])
        healed = _SegmentScan()
        offset = 0
        for (key, _off, length), record, raw in zip(
            scan.valids, scan.records or [], scan.raws or []
        ):
            healed.valids.append((key, offset, length))
            offset += length + 1
        healed.size = offset
        return healed

    def _entries_array(
        self, rows: Sequence[tuple[str, int, int, int, int]]
    ) -> np.ndarray:
        entries = np.zeros(len(rows), dtype=ENTRY_DTYPE)
        for i, (key, sh, seg, off, length) in enumerate(rows):
            entries[i] = (key64(key), sh, seg, off, length, 0)
        if len(entries):
            entries["crc"] = _entry_crc(entries)
        return entries

    # -- index file ----------------------------------------------------

    def _write_index(self, entries: np.ndarray) -> None:
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None
        tmp = self.index_path.with_name(self.index_path.name + ".tmp")
        with tmp.open("wb") as fh:
            fh.write(
                INDEX_HEADER.pack(
                    INDEX_MAGIC,
                    INDEX_VERSION,
                    self.shards,
                    self.segment_records,
                )
            )
            fh.write(entries.tobytes())
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.index_path)

    def _append_index_entry(
        self,
        key: str,
        shard: int,
        segment: int,
        offset: int,
        length: int,
        *,
        flush: bool = True,
    ) -> None:
        entry = np.zeros(1, dtype=ENTRY_DTYPE)
        entry[0] = (key64(key), shard, segment, offset, length, 0)
        entry["crc"] = _entry_crc(entry)
        if self._index_fh is None:
            if not self.index_path.exists():
                self._write_index(np.empty(0, dtype=ENTRY_DTYPE))
            self._index_fh = self.index_path.open("ab")
        self._index_fh.write(entry.tobytes())
        if flush:
            self._index_fh.flush()

    # -- read path -----------------------------------------------------

    def get_record(self, key: str) -> dict | None:
        """The stored record for ``key``, or ``None``.

        The index resolves the record's exact byte range, so a lookup
        parses one line (``store.index_hit``); only a record whose bytes
        fail validation falls back to scanning the key's own shard
        (``store.index_miss``), which is the JSONL-equivalent recovery
        path.  A key absent from both overlay and index is simply absent
        — membership stays O(log n).
        """
        loc = self._overlay.get(key)
        if loc is None:
            k = key64(key)
            i = int(np.searchsorted(self._keys, np.uint64(k)))
            if not (i < len(self._keys) and int(self._keys[i]) == k):
                return None
            row = self._locs[i]
            loc = (
                int(row["shard"]),
                int(row["segment"]),
                int(row["offset"]),
                int(row["length"]),
            )
        record = self._read_at(loc, key)
        if record is not None:
            obs.count("store.index_hit")
            return record
        obs.count("store.index_miss")
        self._dirty = True
        return self._scan_for(key)

    def _reader(self, shard: int, segment: int):
        handle = self._readers.get((shard, segment))
        if handle is None:
            if len(self._readers) >= 32:
                _, old = self._readers.popitem()
                old.close()
            handle = self._segment_path(shard, segment).open("rb")
            self._readers[(shard, segment)] = handle
        return handle

    def _read_at(
        self, loc: tuple[int, int, int, int], key: str
    ) -> dict | None:
        shard, segment, offset, length = loc
        try:
            fh = self._reader(shard, segment)
            fh.seek(offset)
            raw = fh.read(length)
        except OSError:
            return None
        try:
            record = json.loads(raw)
        except ValueError:
            return None
        if not self._valid(record) or record.get(self.key_field) != key:
            return None
        return record

    def _scan_for(self, key: str) -> dict | None:
        """Last valid occurrence of ``key`` in its shard's segments."""
        shard = key64(key) % self.shards
        best: dict | None = None
        for sh, seg, path in self._segment_files():
            if sh != shard:
                continue
            scan = self._scan_segment(path, keep=True)
            for (k, _off, _len), record in zip(
                scan.valids, scan.records or []
            ):
                if k == key:
                    best = record
        return best

    def iter_records(self) -> Iterator[dict]:
        """Every recoverable record, later duplicates winning."""
        latest: dict[str, dict] = {}
        for _sh, _seg, path in self._segment_files():
            scan = self._scan_segment(path, keep=True)
            for (key, _off, _len), record in zip(
                scan.valids, scan.records or []
            ):
                latest[key] = record
        return iter(latest.values())

    def segments(self) -> list[tuple[int, int, Path, bool]]:
        """Every segment on disk as ``(shard, segment, path, sealed)``."""
        found = self._segment_files()
        active: dict[int, int] = {}
        for sh, seg, _path in found:
            active[sh] = max(active.get(sh, seg), seg)
        return [
            (sh, seg, path, seg < active[sh]) for sh, seg, path in found
        ]

    # -- write path ----------------------------------------------------

    def put_record(self, key: str, record: dict, *, flush: bool = True) -> None:
        """Checksum, append, and index one record (repairing first if
        damage was observed, exactly like ``JsonlCache._store``).

        ``flush=False`` defers the durability point: the segment and
        index bytes are written but not flushed, letting a caller batch
        a chunk of records and make them durable with one
        :meth:`flush` — same bytes on disk, one syscall round instead
        of two per record.
        """
        record = dict(record)
        record.pop("check", None)
        record["check"] = record_check(record)
        if self._dirty:
            self._repair()
        new_key = key not in self
        shard = key64(key) % self.shards
        state = self._shard_state.setdefault(shard, _Shard())
        if state.records >= self.segment_records:
            self._seal(shard)
        line = json.dumps(record).encode() + b"\n"
        offset = state.size
        fh = self._appender(shard, state.segment)
        if state.torn:
            # A torn write left a valid final line with no newline;
            # appending straight onto it would weld two records.
            fh.write(b"\n")
            offset += 1
            state.torn = False
        fh.write(line)
        if flush:
            fh.flush()
        state.size = offset + len(line)
        state.records += 1
        self._overlay[key] = (shard, state.segment, offset, len(line) - 1)
        self._append_index_entry(
            key, shard, state.segment, offset, len(line) - 1, flush=flush
        )
        if new_key:
            self._n += 1

    def flush(self) -> None:
        """Flush every open appender, then the index.

        The ordering matters for a deferred batch: segment bytes reach
        the disk before the index entries that point into them, so a
        crash between the two leaves dangling index entries (which
        lookup validation already survives) rather than indexed keys
        with missing bytes.
        """
        for _segment, fh in self._appenders.values():
            try:
                fh.flush()
            except ValueError:  # pragma: no cover - appender closed
                pass
        if self._index_fh is not None:
            self._index_fh.flush()

    def _appender(self, shard: int, segment: int):
        cached = self._appenders.get(shard)
        if cached is not None and cached[0] == segment:
            return cached[1]
        if cached is not None:
            cached[1].close()
        fh = self._segment_path(shard, segment).open("ab")
        self._appenders[shard] = (segment, fh)
        return fh

    def _seal(self, shard: int) -> None:
        """Close the active segment and write its columnar sidecar."""
        state = self._shard_state[shard]
        with obs.span(
            "store.seal", metric="store.seal_ms", shard=shard,
            segment=state.segment,
        ):
            if self._columnar is not None:
                path = self._segment_path(shard, state.segment)
                if path.exists():
                    scan = self._scan_segment(path, keep=True)
                    self._write_sidecar(
                        shard, state.segment, scan.records or []
                    )
            cached = self._appenders.pop(shard, None)
            if cached is not None:
                cached[1].close()
            state.segment += 1
            state.size = 0
            state.records = 0
            state.torn = False
        obs.count("store.seal")

    def _write_sidecar(
        self, shard: int, segment: int, records: list[dict]
    ) -> None:
        sidecar = self._sidecar_path(shard, segment)
        columns = self._columnar(records) if self._columnar else None
        if columns is None:
            sidecar.unlink(missing_ok=True)
            return
        tmp = sidecar.with_name(sidecar.name + ".tmp")
        with tmp.open("wb") as fh:
            np.savez(fh, **columns)
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(sidecar)

    def _repair(self) -> None:
        with obs.span("store.repair"):
            self._full_scan(heal=True)

    # -- lifecycle -----------------------------------------------------

    def _close_handles(self) -> None:
        for handle in self._readers.values():
            handle.close()
        self._readers = {}
        for _seg, handle in self._appenders.values():
            handle.close()
        self._appenders = {}
        if self._index_fh is not None:
            self._index_fh.close()
            self._index_fh = None

    def clear(self) -> None:
        """Drop every record, segment, sidecar, and the index."""
        self._close_handles()
        for path in self.directory.iterdir():
            if path.name.startswith("seg-") or path.name == "index.bin":
                path.unlink()
        self._keys = np.empty(0, dtype="<u8")
        self._locs = np.empty(0, dtype=ENTRY_DTYPE)
        self._overlay = {}
        self._shard_state = {}
        self._n = 0
        self._corrupt = 0
        self._dirty = False
        self._write_meta()
        self._write_index(np.empty(0, dtype=ENTRY_DTYPE))

    def close(self) -> None:
        self._close_handles()


# -- columnar read path (results) --------------------------------------

#: Aggregator codes stored in sidecars.
AGGREGATOR_CODES = {"min": 0, "median": 1, "mean": 2}


def _result_columnar(records: list[dict]) -> dict | None:
    """Column arrays for one segment's result records, or ``None``.

    One row per *measurement* (a job's record may hold several); ``rec``
    is the record's ordinal within the segment so the reader can keep
    only the latest record per job.  Returns ``None`` when any record is
    not representable (hand-written or foreign data) — the segment then
    simply has no sidecar and reads fall back to parsing.
    """
    jobs: list[str] = []
    counts: list[int] = []
    reps: list[float] = []
    loops: list[float] = []
    aggs: list[int] = []
    recs: list[int] = []
    tsc_parts: list[list[float]] = []
    for ordinal, record in enumerate(records):
        job_id = record.get("job_id")
        measurements = record.get("measurements")
        if not isinstance(job_id, str) or not isinstance(measurements, list):
            return None
        for m in measurements:
            if not isinstance(m, dict):
                return None
            tsc = m.get("experiment_tsc")
            repetitions = m.get("repetitions")
            loop_iterations = m.get("loop_iterations")
            code = AGGREGATOR_CODES.get(m.get("aggregator"))
            if (
                not isinstance(tsc, list)
                or not tsc
                or not all(
                    isinstance(t, (int, float)) and not isinstance(t, bool)
                    for t in tsc
                )
                or not isinstance(repetitions, (int, float))
                or not isinstance(loop_iterations, (int, float))
                or isinstance(repetitions, bool)
                or isinstance(loop_iterations, bool)
                or code is None
            ):
                return None
            jobs.append(job_id)
            counts.append(len(tsc))
            reps.append(float(repetitions))
            loops.append(float(loop_iterations))
            aggs.append(code)
            recs.append(ordinal)
            tsc_parts.append(tsc)
    flat = (
        np.concatenate([np.asarray(t, dtype=np.float64) for t in tsc_parts])
        if tsc_parts
        else np.empty(0, dtype=np.float64)
    )
    return {
        "jobs": np.array(jobs, dtype=str),
        "tsc": flat,
        "counts": np.asarray(counts, dtype=np.int64),
        "reps": np.asarray(reps, dtype=np.float64),
        "loops": np.asarray(loops, dtype=np.float64),
        "aggs": np.asarray(aggs, dtype=np.uint8),
        "rec": np.asarray(recs, dtype=np.int64),
    }


@dataclass(slots=True)
class StoreColumns:
    """One row per stored measurement, as flat numpy columns.

    ``experiment_tsc`` is the concatenation of every row's experiment
    samples; ``counts[i]`` says how many belong to row ``i``.  This is
    the zero-copy aggregation shape: reductions run over the arrays as
    loaded from the sidecars, without re-materializing measurement
    dicts.
    """

    job_ids: np.ndarray
    experiment_tsc: np.ndarray
    counts: np.ndarray
    repetitions: np.ndarray
    loop_iterations: np.ndarray
    aggregators: np.ndarray

    def __len__(self) -> int:
        return len(self.job_ids)

    def cycles_per_iteration(self) -> np.ndarray:
        """Every row's aggregated cycles-per-iteration, vectorized.

        Mirrors ``MeasurementSeries.cycles_per_iteration_array``: a
        uniform min/median series reduces over the reshaped experiment
        matrix in one pass; ragged or mean-aggregated rows fall back to
        the scalar path (``fmean`` for mean, for bit-identity with the
        measurement property).
        """
        n = len(self.job_ids)
        if n == 0:
            return np.empty(0)
        counts = self.counts
        uniform = bool(np.all(counts == counts[0])) and bool(
            np.all(self.aggregators == self.aggregators[0])
        )
        code = int(self.aggregators[0]) if uniform else -1
        if uniform and code != AGGREGATOR_CODES["mean"]:
            matrix = self.experiment_tsc.reshape(n, int(counts[0]))
            aggregated = (
                matrix.min(axis=1)
                if code == AGGREGATOR_CODES["min"]
                else np.median(matrix, axis=1)
            )
            return aggregated / self.repetitions / self.loop_iterations
        offsets = np.concatenate(([0], np.cumsum(counts)))
        out = np.empty(n)
        for i in range(n):
            window = self.experiment_tsc[offsets[i] : offsets[i + 1]]
            code = int(self.aggregators[i])
            if code == AGGREGATOR_CODES["min"]:
                value = float(window.min())
            elif code == AGGREGATOR_CODES["median"]:
                value = float(np.median(window))
            else:
                value = statistics.fmean(window.tolist())
            out[i] = value / self.repetitions[i] / self.loop_iterations[i]
        return out


# -- cache-compatible wrappers -----------------------------------------


class ShardedResultCache:
    """Drop-in :class:`~repro.engine.cache.ResultCache` on sharded storage.

    Same directory convention (the store lives in
    ``<dir>/results.shards/``), same record shape, same accounting; plus
    :meth:`columns`, the columnar aggregation read path.
    """

    DIRNAME = "results.shards"
    SEGMENT_RECORDS = 4096

    def __init__(
        self,
        directory: str | Path,
        *,
        shards: int = 8,
        segment_records: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()
        self._store = ShardedStore(
            self.directory / self.DIRNAME,
            key_field="job_id",
            valid_record=valid_result_record,
            shards=shards,
            segment_records=segment_records or self.SEGMENT_RECORDS,
            columnar=_result_columnar,
        )

    @property
    def store(self) -> ShardedStore:
        return self._store

    @property
    def corrupt_lines(self) -> int:
        return self._store.corrupt_lines

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._store

    def get(self, job_id: str) -> list[dict] | None:
        """Stored measurement dicts for ``job_id``, or ``None`` (counted).

        Records parse fresh from the segment bytes, so the returned
        dicts are the caller's to mutate.
        """
        record = self._store.get_record(job_id)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record["measurements"]

    def put(
        self,
        job_id: str,
        measurements: list[dict],
        *,
        kernel: str = "",
        mode: str = "",
    ) -> None:
        """Store and immediately flush one job's measurements."""
        self._store.put_record(
            job_id,
            {
                "job_id": job_id,
                "kernel": kernel,
                "mode": mode,
                "measurements": measurements,
            },
        )
        self.stats.stores += 1

    def put_many(
        self, entries: list[tuple[str, list[dict], str, str]]
    ) -> None:
        """Store a chunk's results — ``(job_id, measurements, kernel,
        mode)`` tuples — deferring the flush to one batch-end
        :meth:`ShardedStore.flush` (segments before index)."""
        for job_id, measurements, kernel, mode in entries:
            self._store.put_record(
                job_id,
                {
                    "job_id": job_id,
                    "kernel": kernel,
                    "mode": mode,
                    "measurements": measurements,
                },
                flush=False,
            )
        self._store.flush()
        self.stats.stores += len(entries)

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()

    def columns(self) -> StoreColumns:
        """Every stored measurement as flat columns (later records win).

        Sealed segments load straight from their numpy sidecars; the
        active segment (and any segment whose sidecar is missing or
        unreadable) parses on the fly.
        """
        parts: list[tuple[dict, np.ndarray]] = []
        store = self._store
        for shard, segment, path, sealed in store.segments():
            columns = None
            if sealed:
                sidecar = store._sidecar_path(shard, segment)
                if sidecar.exists():
                    try:
                        with np.load(sidecar) as loaded:
                            columns = {k: loaded[k] for k in loaded.files}
                    except (OSError, ValueError, KeyError):
                        columns = None
            if columns is None:
                scan = store._scan_segment(path, keep=True)
                columns = _result_columnar(scan.records or [])
                if columns is None:
                    raise ValueError(
                        f"segment {path.name} holds records the columnar "
                        "reader cannot represent"
                    )
            # Global record ordinal: duplicates of a job always land in
            # the same shard, so (segment, in-segment ordinal) orders
            # them; segments never exceed segment_records records.
            rec_global = (
                columns["rec"] + segment * (store.segment_records + 1)
            )
            parts.append((columns, rec_global))
        if not parts:
            empty = np.empty(0)
            return StoreColumns(
                np.empty(0, dtype=str), empty, np.empty(0, np.int64),
                empty, empty, np.empty(0, np.uint8),
            )
        jobs = np.concatenate([c["jobs"] for c, _r in parts])
        counts = np.concatenate([c["counts"] for c, _r in parts])
        reps = np.concatenate([c["reps"] for c, _r in parts])
        loops = np.concatenate([c["loops"] for c, _r in parts])
        aggs = np.concatenate([c["aggs"] for c, _r in parts])
        tsc = np.concatenate([c["tsc"] for c, _r in parts])
        recs = np.concatenate([r for _c, r in parts])
        keep = _latest_record_mask(jobs, recs)
        if not bool(np.all(keep)):
            offsets = np.concatenate(([0], np.cumsum(counts)))
            starts = offsets[:-1][keep]
            lengths = counts[keep]
            total = int(lengths.sum())
            row = np.repeat(np.arange(len(lengths)), lengths)
            out_offsets = np.concatenate(([0], np.cumsum(lengths)))
            index = starts[row] + (np.arange(total) - out_offsets[row])
            tsc = tsc[index]
            jobs, counts = jobs[keep], counts[keep]
            reps, loops, aggs = reps[keep], loops[keep], aggs[keep]
        return StoreColumns(jobs, tsc, counts, reps, loops, aggs)


def _latest_record_mask(jobs: np.ndarray, recs: np.ndarray) -> np.ndarray:
    """Rows belonging to each job's latest record (re-measures win)."""
    if not len(jobs):
        return np.ones(0, dtype=bool)
    uniq, inverse = np.unique(jobs, return_inverse=True)
    best = np.full(len(uniq), -1, dtype=np.int64)
    np.maximum.at(best, inverse, recs)
    return recs == best[inverse]


class ShardedGenerationCache:
    """Drop-in :class:`~repro.engine.gencache.GenerationCache` on sharded
    storage (``<dir>/gencache.shards/``).

    Generation records are few but large (every rendered variant of an
    expansion), so segments are small and there is no columnar sidecar —
    the win here is indexed membership and torn-tail isolation per
    segment.
    """

    DIRNAME = "gencache.shards"
    SEGMENT_RECORDS = 32

    def __init__(
        self,
        directory: str | Path,
        *,
        shards: int = 4,
        segment_records: int | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.stats = CacheStats()
        self._store = ShardedStore(
            self.directory / self.DIRNAME,
            key_field="key",
            valid_record=valid_generation_record,
            shards=shards,
            segment_records=segment_records or self.SEGMENT_RECORDS,
        )

    @property
    def store(self) -> ShardedStore:
        return self._store

    @property
    def corrupt_lines(self) -> int:
        return self._store.corrupt_lines

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: str) -> bool:
        return key in self._store

    @staticmethod
    def key_for(spec_dig: str, opts_dig: str) -> str:
        return GenerationCache.key_for(spec_dig, opts_dig)

    def get(self, spec_dig: str, opts_dig: str) -> list[CachedVariant] | None:
        """The stored expansion for this spec + options, or ``None``."""
        record = self._store.get_record(self.key_for(spec_dig, opts_dig))
        if record is None:
            self.stats.misses += 1
            obs.count("gencache.miss")
            return None
        self.stats.hits += 1
        obs.count("gencache.hit")
        return variants_from_record(record)

    def put(
        self,
        spec_dig: str,
        opts_dig: str,
        spec_name: str,
        variants: Sequence[object],
    ) -> None:
        """Store one complete expansion (every variant, pre-filter)."""
        record = generation_record(spec_dig, opts_dig, spec_name, variants)
        self._store.put_record(record["key"], record)
        self.stats.stores += 1

    def clear(self) -> None:
        self._store.clear()
        self.stats = CacheStats()


# -- factories + migration ---------------------------------------------

STORE_FORMATS = ("jsonl", "sharded")


def _migrate(legacy_cache, target_store: ShardedStore, what: str) -> None:
    """One-time move of a legacy JSONL cache into a sharded store.

    The legacy loader already validated every surviving record, so
    migration is a straight re-append; the old file is renamed (not
    deleted) so nothing is lost if the migration itself is interrupted —
    a partial sharded store plus the ``.migrated`` file can always be
    reconciled by hand, and re-running after a crash mid-way re-appends
    (later duplicates win, harmlessly).
    """
    with obs.span("store.migrate", what=what, records=len(legacy_cache)):
        for record in legacy_cache._records.values():
            target_store.put_record(record[legacy_cache.KEY], record)
        legacy_cache.path.rename(
            legacy_cache.path.with_name(legacy_cache.path.name + ".migrated")
        )
    obs.count("store.migrate")


def open_result_cache(
    directory: str | Path, store_format: str = "sharded"
) -> ResultCache | ShardedResultCache:
    """A result cache over ``directory`` in the requested format.

    ``"sharded"`` (the default) transparently migrates a pre-existing
    ``results.jsonl`` the first time the directory is opened sharded.
    """
    if store_format == "jsonl":
        return ResultCache(directory)
    if store_format != "sharded":
        raise ValueError(
            f"unknown store format {store_format!r}; "
            f"expected one of {STORE_FORMATS}"
        )
    directory = Path(directory)
    legacy_path = directory / ResultCache.FILENAME
    fresh = not (directory / ShardedResultCache.DIRNAME).exists()
    cache = ShardedResultCache(directory)
    if fresh and legacy_path.exists():
        _migrate(ResultCache(directory), cache.store, "results")
    return cache


def open_generation_cache(
    directory: str | Path, store_format: str = "sharded"
) -> GenerationCache | ShardedGenerationCache:
    """A generation cache over ``directory`` in the requested format."""
    if store_format == "jsonl":
        return GenerationCache(directory)
    if store_format != "sharded":
        raise ValueError(
            f"unknown store format {store_format!r}; "
            f"expected one of {STORE_FORMATS}"
        )
    directory = Path(directory)
    legacy_path = directory / GenerationCache.FILENAME
    fresh = not (directory / ShardedGenerationCache.DIRNAME).exists()
    cache = ShardedGenerationCache(directory)
    if fresh and legacy_path.exists():
        _migrate(GenerationCache(directory), cache.store, "generation")
    return cache
