"""The campaign engine: declarative, parallel, cached experiment sweeps.

The paper's workflow is inherently a *campaign*: one XML description
expands into hundreds of kernel variants, each measured under a grid of
launcher configurations (array sizes, alignments, cores, frequencies).
This package turns that workflow into a first-class pipeline:

- :mod:`repro.engine.campaign` -- :class:`SweepSpec` / :class:`Campaign`
  describe a grid of kernels x launcher-option axes declaratively and
  expand it into :class:`Job` records with stable content-hash IDs,
- :mod:`repro.engine.cache` -- a disk-backed JSONL result cache keyed by
  job ID, so re-running an exhibit or resuming an interrupted campaign
  only executes the missing jobs,
- :mod:`repro.engine.gencache` -- the same storage discipline for
  *rendered variants*: a warm generation cache expands a spec sweep
  without running the pass pipeline,
- :mod:`repro.engine.generation` -- deferred generation
  (:class:`KernelRef`): spec-backed jobs ship a reference and workers
  regenerate their slice locally, memoized per process,
- :mod:`repro.engine.runner` -- a fault-tolerant scheduler over the
  persistent worker pool (``jobs=1`` runs inline) whose per-job derived
  noise seeds make results bit-identical regardless of worker count,
  chunk policy, or scheduling order; failing jobs are retried with
  backoff, hung chunks time out, crashed workers' jobs are
  re-dispatched, and a persistently bad job is quarantined into
  :class:`JobFailure` entries instead of killing the run,
- :mod:`repro.engine.pool` -- the persistent worker runtime itself:
  long-lived worker processes reused across ``run_campaign`` calls,
  epoch-tokened kill+rebuild, per-worker pipes,
- :mod:`repro.engine.transport` -- the packed binary result frames the
  workers answer with (schema-versioned; cycles arrays travel as one
  contiguous float64 buffer),
- :mod:`repro.engine.faults` -- deterministic fault injection
  (:class:`FaultPlan`): make a chosen job raise, hang, return garbage,
  or crash its worker at a chosen attempt, reproducibly,
- :mod:`repro.engine.serialize` -- ``Measurement`` <-> dict round-trip
  serialization behind both the cache and the JSONL output format.

Quickstart::

    from repro.engine import Campaign, SweepSpec, run_campaign
    from repro.launcher import LauncherOptions
    from repro.machine import nehalem_2s_x5650

    campaign = Campaign(
        name="unroll-sweep",
        machine=nehalem_2s_x5650(),
        sweeps=[SweepSpec(kernels=variants,
                          base=LauncherOptions(trip_count=1 << 14),
                          axes={"array_bytes": (32*1024, 8*1024*1024)})],
    )
    run = run_campaign(campaign, jobs=4, cache_dir="results/.cache")
    run.write_csv("results/sweep.csv")
"""

from repro.engine.campaign import Campaign, Job, SweepSpec
from repro.engine.cache import CacheStats, ResultCache
from repro.engine.faults import Fault, FaultPlan, InjectedFault
from repro.engine.gencache import CachedVariant, GenerationCache
from repro.engine.generation import KernelRef, expand_spec_variants
from repro.engine.hashing import (
    creator_options_digest,
    job_id_for,
    kernel_digest,
    machine_digest,
    options_digest,
    spec_digest,
)
from repro.engine.pool import (
    WorkerPool,
    get_worker_pool,
    shutdown_worker_pool,
)
from repro.engine.runner import (
    CHUNK_POLICIES,
    CampaignRun,
    JobFailure,
    JobTimeout,
    RunStats,
    resolve_chunk_policy,
    run_campaign,
)
from repro.engine.transport import pack_chunk, unpack_chunk
from repro.engine.serialize import (
    measurement_from_dict,
    measurement_to_dict,
    measurements_from_payload,
    options_to_dict,
)
from repro.engine.store import (
    ShardedGenerationCache,
    ShardedResultCache,
    ShardedStore,
    StoreColumns,
    open_generation_cache,
    open_result_cache,
)

__all__ = [
    "CHUNK_POLICIES",
    "CachedVariant",
    "Campaign",
    "CampaignRun",
    "CacheStats",
    "Fault",
    "FaultPlan",
    "GenerationCache",
    "InjectedFault",
    "Job",
    "JobFailure",
    "JobTimeout",
    "KernelRef",
    "ResultCache",
    "RunStats",
    "ShardedGenerationCache",
    "ShardedResultCache",
    "ShardedStore",
    "StoreColumns",
    "SweepSpec",
    "WorkerPool",
    "creator_options_digest",
    "expand_spec_variants",
    "get_worker_pool",
    "job_id_for",
    "kernel_digest",
    "machine_digest",
    "measurement_from_dict",
    "measurement_to_dict",
    "measurements_from_payload",
    "open_generation_cache",
    "open_result_cache",
    "options_digest",
    "options_to_dict",
    "pack_chunk",
    "resolve_chunk_policy",
    "run_campaign",
    "shutdown_worker_pool",
    "spec_digest",
    "unpack_chunk",
]
