"""Engine serialization: ``Measurement`` <-> dict, options -> dict.

The result cache, the worker-pool transport, and the JSONL output format
all speak plain JSON-safe dicts.  Floats survive exactly (JSON carries
the shortest round-trip repr); tuples come back as tuples for the typed
``Measurement`` fields and as lists inside free-form metadata.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.launcher.measurement import Measurement
from repro.launcher.options import LauncherOptions


def _json_safe(value: object) -> object:
    """Best-effort conversion of a metadata value to JSON-native types."""
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def measurement_to_dict(m: Measurement) -> dict:
    """Serialize a measurement to a JSON-safe dict (exact round-trip)."""
    return {
        "kernel_name": m.kernel_name,
        "label": m.label,
        "trip_count": m.trip_count,
        "repetitions": m.repetitions,
        "loop_iterations": m.loop_iterations,
        "elements_per_iteration": m.elements_per_iteration,
        "n_memory_instructions": m.n_memory_instructions,
        "experiment_tsc": list(m.experiment_tsc),
        "freq_ghz": m.freq_ghz,
        "tsc_ghz": m.tsc_ghz,
        "aggregator": m.aggregator,
        "alignments": list(m.alignments),
        "core": m.core,
        "n_cores": m.n_cores,
        "bottleneck": m.bottleneck,
        "metadata": _json_safe(m.metadata),
    } | (
        # Quality fields exist only on adaptive records; fixed-count
        # serialization stays byte-identical to the pre-adaptive format.
        {
            "ci_low": m.ci_low,
            "ci_high": m.ci_high,
            "rciw": m.rciw,
            "converged": m.converged,
        }
        if m.rciw is not None
        else {}
    )


def _tupled(value: object) -> object:
    """Normalize JSON lists back to tuples (metadata convention)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tupled(v) for v in value)
    if isinstance(value, dict):
        return {k: _tupled(v) for k, v in value.items()}
    return value


def measurement_from_dict(data: dict) -> Measurement:
    """Reconstruct a measurement from :func:`measurement_to_dict` output.

    Sequences inside ``metadata`` come back as tuples: the launcher
    records metadata immutably, and JSON cannot tell the two apart.
    """
    data = dict(data)
    data["experiment_tsc"] = tuple(data.get("experiment_tsc", ()))
    data["alignments"] = tuple(data.get("alignments", ()))
    data["metadata"] = {
        k: _tupled(v) for k, v in (data.get("metadata") or {}).items()
    }
    known = {f.name for f in dataclasses.fields(Measurement)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown measurement fields: {sorted(unknown)}")
    return Measurement(**data)


def measurements_from_payload(payload: object) -> list[Measurement]:
    """Strictly decode a worker or cache payload into measurements.

    Workers and cache files are not trusted: a crashed process, an
    injected fault, or a damaged JSONL line can hand the scheduler
    anything.  Raises :class:`ValueError` for any payload that is not a
    non-empty list of dicts each reconstructing a valid
    :class:`Measurement` — the scheduler treats that as a failed
    attempt, not a result.
    """
    if not isinstance(payload, list) or not payload:
        raise ValueError("payload is not a non-empty measurement list")
    try:
        return [measurement_from_dict(d) for d in payload]
    except (TypeError, ValueError, KeyError, AttributeError) as exc:
        raise ValueError(f"corrupt measurement payload: {exc}") from None


#: Fields omitted from the options dict while at their defaults.  This
#: dict feeds ``options_digest`` and therefore every job id and derived
#: noise seed — unconditionally serializing fields added after the format
#: froze would re-key every existing cache and change fixed-count output
#: bytes.  Adaptive knobs appear in the digest only when they matter
#: (i.e. when any of them is changed from its default).
_DIGEST_DEFAULT_FIELDS = (
    "rciw_target",
    "min_experiments",
    "max_experiments",
    "batch_size",
)


def options_to_dict(options: LauncherOptions) -> dict:
    """Serialize launcher options to a JSON-safe dict (digest input)."""
    defaults = {
        f.name: f.default
        for f in dataclasses.fields(LauncherOptions)
        if f.name in _DIGEST_DEFAULT_FIELDS
    }
    return {
        f.name: _json_safe(getattr(options, f.name))
        for f in dataclasses.fields(LauncherOptions)
        if f.name not in defaults
        or getattr(options, f.name) != defaults[f.name]
    }
