"""Persistent worker runtime: one long-lived pool, reused across campaigns.

The scheduler used to spawn a fresh ``ProcessPoolExecutor`` for every
``run_campaign`` call — each campaign paid the fork cost again and threw
away every worker-side memo (``_SIM_MEMO`` normalized kernels,
``_GEN_MEMO`` spec expansions) it had just warmed.  This module keeps a
module-level :class:`WorkerPool` alive across consecutive campaigns in a
process: workers are forked once and answer with packed binary frames
(see :mod:`repro.engine.transport`).

Each worker owns a private duplex pipe instead of sharing queues.  That
choice is load-bearing for fault tolerance: a shared queue is one
framed byte stream under one lock, so a worker that dies *mid-write*
(the ``crash`` fault is ``os._exit`` mid-job) tears the stream for
everyone and the parent's next read can block forever on a message that
will never finish.  With per-worker pipes a torn write poisons only the
dead worker's pipe, which the OS closes with the process — the parent
reads EOF, never a hang.  Task assignment is explicit (the parent picks
an idle worker), so the parent always knows which chunk a dead worker
held and can blame exactly that one.

Kill+rebuild is epoch-based: every worker is branded with the pool's
*epoch* at spawn and stamps it on every reply; a rebuild bumps the
epoch, so any straggler message from a previous generation — e.g. a
result buffered in a pipe the scheduler abandoned — is recognizably
stale and dropped instead of being credited to the wrong dispatch.

The scheduler's failure semantics (deadlines, chunk splitting,
quarantine, inline degradation) live in ``runner.py``; this module only
supplies the mechanics plus the ``engine.pool.spawn`` /
``engine.pool.reuse`` counter pair.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.connection
import pickle
import time

from repro import obs

#: How long ``shutdown`` waits for workers to exit after their sentinel
#: before escalating to ``terminate``.
_SHUTDOWN_GRACE_SECONDS = 2.0


class PoolUnusable(Exception):
    """Workers cannot be spawned here; the caller should run inline."""


def _worker_main(conn, epoch: int) -> None:
    """Worker loop: receive a chunk, run it, answer with one frame.

    Per-job wall-clock is measured here — the only place it is
    observable — and travels inside the packed frame.  Failures inside a
    chunk are formatted worker-side into the same reason strings the
    scheduler produces for inline execution, so quarantine reasons are
    identical whichever side caught the exception.
    """
    from repro.engine.runner import _failure_reason, _run_job
    from repro.engine.transport import pack_chunk
    from repro.launcher.launcher import MicroLauncher

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        task_id, blob = message
        try:
            machine, jobs, faults, attempts = pickle.loads(blob)
            launcher = MicroLauncher(machine)
            records = []
            for job in jobs:
                started = time.perf_counter()
                dicts = _run_job(launcher, job, faults, attempts.get(job.job_id, 0))
                records.append((job.job_id, dicts, time.perf_counter() - started))
            reply = ("ok", epoch, task_id, pack_chunk(records))
        except Exception as exc:  # noqa: BLE001 - relayed as a chunk failure
            reply = ("error", epoch, task_id, _failure_reason(exc))
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):  # parent gone or rebuilding
            return


class _Worker:
    """One worker process plus its pipe and currently assigned task."""

    __slots__ = ("process", "conn", "task_id")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task_id: int | None = None  # None == idle


class WorkerPool:
    """A fixed-size set of long-lived worker processes.

    Not thread-safe: one scheduler drives one pool.  The pool survives
    across campaigns — :func:`get_worker_pool` hands the same instance
    back as long as the requested size matches and every worker is
    alive.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.epoch = 0
        self._context = multiprocessing.get_context()
        self._members: list[_Worker] = []
        self._next_task_id = 0

    # -- lifecycle ----------------------------------------------------

    def _spawn_member(self, worker_id: int) -> _Worker:
        """Fork one worker (separated out so tests can fail spawning)."""
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self.epoch),
            daemon=True,
            name=f"repro-worker-{worker_id}",
        )
        process.start()
        # The parent's copy of the child end must close, or a dead
        # worker's pipe would never read as EOF.
        child_conn.close()
        return _Worker(process, parent_conn)

    def start(self) -> None:
        """Spawn every worker for the current epoch."""
        self._members = []
        try:
            for worker_id in range(self.workers):
                self._members.append(self._spawn_member(worker_id))
        except (OSError, PermissionError) as exc:
            self.kill()
            raise PoolUnusable(str(exc)) from exc
        obs.count("engine.pool.spawn")

    @property
    def alive(self) -> bool:
        return bool(self._members) and all(
            m.process.is_alive() for m in self._members
        )

    def dead_worker_ids(self) -> list[int]:
        """Workers that exited without being asked to (crash candidates)."""
        return [
            worker_id
            for worker_id, member in enumerate(self._members)
            if not member.process.is_alive()
        ]

    def task_of(self, worker_id: int) -> int | None:
        """The task currently assigned to ``worker_id`` (``None``: idle)."""
        return self._members[worker_id].task_id

    def rebuild(self) -> None:
        """Kill everything and respawn under a new epoch.

        The epoch bump plus brand-new pipes make every artifact of the
        old generation — assignments, half-written replies — stale by
        construction.
        """
        self.kill()
        self.epoch += 1
        self.start()

    def kill(self) -> None:
        """Terminate workers immediately (they may be hung or poisoned)."""
        for member in self._members:
            try:
                member.process.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass
        for member in self._members:
            member.process.join(timeout=_SHUTDOWN_GRACE_SECONDS)
            try:
                member.conn.close()
            except Exception:  # pragma: no cover - already closed
                pass
        self._members = []

    def shutdown(self) -> None:
        """Graceful stop: sentinel the idle, then terminate stragglers."""
        for member in self._members:
            if member.task_id is None and member.process.is_alive():
                try:
                    member.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + _SHUTDOWN_GRACE_SECONDS
        for member in self._members:
            member.process.join(timeout=max(0.0, deadline - time.monotonic()))
        self.kill()

    # -- dispatch -----------------------------------------------------

    def has_idle(self) -> bool:
        return any(
            m.task_id is None and m.process.is_alive() for m in self._members
        )

    def submit(
        self, machine, jobs, faults, attempts: dict[str, int]
    ) -> int | None:
        """Assign one chunk to an idle worker; returns its task id.

        Returns ``None`` when no worker is idle (the caller keeps the
        chunk and tries again after the next poll).  The task body is
        pickled *here*, synchronously, so an unpicklable job surfaces as
        an exception the scheduler can charge to the chunk instead of a
        silent hang.
        """
        member = next(
            (
                m
                for m in self._members
                if m.task_id is None and m.process.is_alive()
            ),
            None,
        )
        if member is None:
            return None
        blob = pickle.dumps(
            (machine, jobs, faults, attempts), protocol=pickle.HIGHEST_PROTOCOL
        )
        task_id = self._next_task_id
        self._next_task_id += 1
        member.conn.send((task_id, blob))
        member.task_id = task_id
        return task_id

    def poll(self, timeout: float) -> list[tuple[str, int, int, object]]:
        """Collect finished chunks: ``(kind, worker_id, task_id, body)``.

        Waits up to ``timeout`` for any busy worker's pipe to become
        readable, then drains every ready pipe.  ``kind`` is ``"ok"``
        (body: packed frame bytes) or ``"error"`` (body: reason
        string).  A dead worker's EOF is swallowed here — the scheduler
        discovers the death via :meth:`dead_worker_ids` and blames the
        task from :meth:`task_of`.  Replies stamped with a stale epoch
        are dropped (and counted) rather than delivered.
        """
        by_conn = {
            member.conn: (worker_id, member)
            for worker_id, member in enumerate(self._members)
            if member.task_id is not None
        }
        if not by_conn:
            time.sleep(timeout)
            return []
        try:
            ready = multiprocessing.connection.wait(
                list(by_conn), timeout=timeout
            )
        except OSError:  # pragma: no cover - pipe torn down under us
            return []
        events: list[tuple[str, int, int, object]] = []
        for conn in ready:
            worker_id, member = by_conn[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError, pickle.UnpicklingError):
                # Torn write or closed pipe: the worker is (or is about
                # to read as) dead; dead_worker_ids() handles it.
                continue
            try:
                kind, epoch, task_id, body = message
            except (TypeError, ValueError):
                continue  # malformed reply: treat like a torn write
            if epoch != self.epoch:
                obs.count("engine.pool.stale_dropped")
                continue
            member.task_id = None
            events.append((kind, worker_id, task_id, body))
        return events


#: The process-wide pool, shared by consecutive campaigns.
_POOL: WorkerPool | None = None


def get_worker_pool(workers: int) -> WorkerPool:
    """The shared pool, reused when possible, (re)spawned when not.

    Reuse requires the same worker count and every worker still alive;
    anything else tears the old pool down and starts fresh.  Counters:
    ``engine.pool.reuse`` for a warm hit, ``engine.pool.spawn`` (emitted
    by :meth:`WorkerPool.start`) for every fork generation.
    """
    global _POOL
    if _POOL is not None and _POOL.workers == workers and _POOL.alive:
        obs.count("engine.pool.reuse")
        return _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None
    pool = WorkerPool(workers)
    pool.start()
    _POOL = pool
    return pool


def shutdown_worker_pool() -> None:
    """Stop the shared pool (tests, explicit teardown, atexit)."""
    global _POOL
    if _POOL is not None:
        _POOL.shutdown()
        _POOL = None


def _atexit_shutdown() -> None:  # pragma: no cover - interpreter teardown
    try:
        shutdown_worker_pool()
    except Exception:
        pass


atexit.register(_atexit_shutdown)
