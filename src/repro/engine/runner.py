"""The campaign scheduler: cache partition -> worker pool -> ordered rows.

``run_campaign`` expands a campaign, answers what it can from the result
cache, executes the remaining jobs — inline for ``jobs=1``, on the
persistent worker runtime of :mod:`repro.engine.pool` otherwise — and
assembles results in campaign order.  Determinism is structural, not
scheduled: each job's noise seed derives from its content hash (see
:meth:`Job.execution_options`), and rows are ordered by job index, so
worker count, chunking policy, and completion order cannot change a
single output byte.

Parallel jobs ship to workers in *chunks*: one launcher and one packed
result frame (:mod:`repro.engine.transport`) per chunk instead of per
job, with a per-worker memo so option sweeps over one kernel normalize
and model it once.  Workers outlive the campaign — consecutive
``run_campaign`` calls reuse the same pool, so those memos stay warm
across campaigns.  Chunk sizing is policy-driven (``chunk_policy``):
``"static"`` slices fixed batches as before, while ``"dynamic"`` (the
default when no explicit ``chunk_size`` is given) seeds small chunks
and then sizes each next chunk from an EWMA of observed per-job
durations per spec family, targeting ``chunk_target_ms`` of wall time —
adaptive-stopping campaigns whose per-job cost varies >10x keep every
worker busy to the tail instead of straggling on static batches.

The scheduler is fault-tolerant: a raising job is retried with
exponential backoff up to ``max_retries`` times, a chunk that exceeds
its deadline (``job_timeout`` seconds per job) has its pool replaced, a
crashed worker's chunks are re-dispatched — split in half to isolate
the poisoned job — and a job that keeps failing is *quarantined*: the
campaign completes with N-1 rows and an explicit
:class:`JobFailure` entry in :attr:`CampaignRun.failures` instead of
dying.  All of it is drivable deterministically through
:class:`~repro.engine.faults.FaultPlan`.

When observability is on (:func:`repro.obs.enable`), the scheduler
accounts for itself: spans for expansion, the cache scan, dispatch, and
every chunk/job, plus counters and histograms under ``engine.*`` (cache
hits/misses/puts, retries, timeouts, quarantines, job durations).  The
final :attr:`RunStats.metrics` snapshot carries them back to the caller.
Everything costs one global check when disabled.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import defaultdict, deque
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro import obs
from repro.engine.cache import ResultCache
from repro.engine.campaign import Campaign, Job
from repro.engine.faults import FaultPlan
from repro.engine.gencache import GenerationCache
from repro.engine.generation import KernelRef, resolve_kernel_ref
from repro.engine.pool import PoolUnusable, get_worker_pool, shutdown_worker_pool
from repro.engine.transport import TransportError, unpack_chunk
from repro.engine.serialize import (
    measurement_to_dict,
    measurements_from_payload,
)
from repro.engine.store import (
    ShardedGenerationCache,
    ShardedResultCache,
    open_generation_cache,
    open_result_cache,
)
from repro.launcher.measurement import Measurement
from repro.launcher.stopping import EXPERIMENT_BUCKETS
from repro.machine.config import MachineConfig

#: Per-process memo of normalized kernels keyed by ``(kernel digest,
#: trip_count)``: parsing/analyzing a kernel (the kernel-model half of a
#: measurement) is pure in its text and lowering size, so a chunk that
#: sweeps options over one kernel evaluates the model once.  Workers now
#: outlive a single campaign, so the memo is LRU (a hit re-inserts at
#: the tail) and its capacity is tunable via ``REPRO_SIM_MEMO_MAX``.
_SIM_MEMO: dict[tuple[str, int], object] = {}
_SIM_MEMO_MAX = 512


def _memo_capacity(env_var: str, default: int) -> int:
    """An eviction capacity, overridable by environment (min 1).

    Read per insertion rather than at import so long-lived worker
    processes (and tests) see changes without a re-exec; insertions only
    happen on memo misses, so the lookup never shows up in a profile.
    """
    raw = os.environ.get(env_var)
    if not raw:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default

#: Chunk-size ceiling: keeps result recording (and cache writes) granular
#: enough to survive interruption without losing much work.
_MAX_AUTO_CHUNK = 32

#: How often the dispatcher wakes to check deadlines and refill workers.
_POLL_SECONDS = 0.05

#: Scheduling grace added on top of ``job_timeout * len(chunk)`` before a
#: chunk is declared hung (pool spin-up, pickling, worker start).
_CHUNK_TIMEOUT_SLACK = 0.25

#: Consecutive pool breakages (with no chunk ever completing) after which
#: the pool is declared unusable and the run falls back inline.
_MAX_POOL_BREAKS_BEFORE_INLINE = 3

#: Recognized ``chunk_policy`` values: ``auto`` resolves to ``static``
#: when an explicit ``chunk_size`` is given, else ``dynamic``.
CHUNK_POLICIES = ("auto", "static", "dynamic")

#: Dynamic chunking: wall-clock a chunk should occupy a worker for.
#: Large enough to amortize the queue round-trip, small enough that the
#: tail of a campaign rebalances across workers.
DEFAULT_CHUNK_TARGET_MS = 250.0

#: Dynamic chunking: jobs per chunk before any duration has been
#: observed for a spec family.  Deliberately small — the first chunks
#: exist to calibrate the EWMA, not to saturate.
_SEED_CHUNK_SIZE = 4

#: Dynamic chunking: EWMA weight of the newest chunk's mean duration.
_EWMA_ALPHA = 0.4

#: Dynamic chunking: hard ceiling on jobs per chunk, so result recording
#: (and crash-consistent cache flushes) stay granular.
_DYNAMIC_MAX_CHUNK = 256


def _sim_kernel_for(job: Job) -> object:
    """Normalize the job's kernel, memoized per worker process.

    Deferred jobs carry a :class:`KernelRef` instead of a kernel; the ref
    is resolved (regenerating its spec's expansion, memoized per process)
    only on a memo miss — a job whose normalized kernel is already cached
    never touches the generator at all.
    """
    from repro.engine.hashing import kernel_digest
    from repro.launcher.kernel_input import as_sim_kernel

    kernel = job.kernel
    if isinstance(kernel, KernelRef):
        digest = job.kernel_digest or kernel.digest
    else:
        digest = job.kernel_digest or kernel_digest(kernel)
    key = (digest, job.options.trip_count)
    sim = _SIM_MEMO.pop(key, None)
    if sim is None:
        if isinstance(kernel, KernelRef):
            kernel = resolve_kernel_ref(kernel)
        sim = as_sim_kernel(kernel, trip_count=job.options.trip_count)
        capacity = _memo_capacity("REPRO_SIM_MEMO_MAX", _SIM_MEMO_MAX)
        while len(_SIM_MEMO) >= capacity:
            # Evict the least-recently-used entry (hits re-insert at the
            # tail): a full wipe mid-sweep would throw away every kernel
            # the current chunk is still using.
            del _SIM_MEMO[next(iter(_SIM_MEMO))]
    # Re-insert on hit and miss alike so the hottest kernels sit at the
    # tail, furthest from eviction — workers persist across campaigns,
    # so recency now matters.
    _SIM_MEMO[key] = sim
    return sim


def _run_job(
    launcher, job: Job, faults: FaultPlan | None = None, attempt: int = 0
) -> list[dict]:
    """Execute one job on an existing launcher."""
    if faults is not None:
        injected = faults.perform(job.job_id, attempt)
        if injected is not None:
            return injected
    options = job.execution_options()
    if options.csv_path:  # the engine owns output; workers never write CSVs
        options = options.with_(csv_path=None)
    kernel = _sim_kernel_for(job)
    if job.mode == "sequential":
        measurements = [launcher.run(kernel, options)]
    elif job.mode == "forked":
        measurements = list(launcher.run_forked(kernel, options).per_core)
    elif job.mode == "openmp":
        measurements = [launcher.run_openmp(kernel, options).measurement]
    elif job.mode == "alignment_sweep":
        measurements = list(launcher.run_alignment_sweep(kernel, options))
    else:  # pragma: no cover - SweepSpec validates modes at build time
        raise ValueError(f"unknown job mode {job.mode!r}")
    return [measurement_to_dict(m) for m in measurements]


def _execute_chunk(
    machine: MachineConfig,
    jobs: list[Job],
    faults: FaultPlan | None = None,
    attempts: dict[str, int] | None = None,
) -> list[tuple[str, list[dict]]]:
    """Run a batch of jobs on one launcher (worker-side entry point)."""
    from repro.launcher.launcher import MicroLauncher

    launcher = MicroLauncher(machine)
    attempts = attempts or {}
    return [
        (job.job_id, _run_job(launcher, job, faults, attempts.get(job.job_id, 0)))
        for job in jobs
    ]


def _execute_job(machine: MachineConfig, job: Job) -> tuple[str, list[dict]]:
    """Run one job against a fresh launcher (a chunk of one)."""
    return _execute_chunk(machine, [job])[0]


def resolve_chunk_size(chunk_size: int | None, n_jobs: int, workers: int) -> int:
    """Jobs per worker batch; ``None`` auto-sizes for load balance.

    The auto rule targets a few chunks per worker (so a slow chunk does
    not straggle the pool) while capping the batch so cache writes stay
    granular.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return chunk_size
    per_worker_share = -(-n_jobs // (max(1, workers) * 4))
    return max(1, min(_MAX_AUTO_CHUNK, per_worker_share))


class JobTimeout(RuntimeError):
    """A job (or the chunk carrying it) exceeded its time budget."""


@dataclass(frozen=True, slots=True)
class JobFailure:
    """One quarantined job: identity, attempts made, and the final reason."""

    job_id: str
    kernel: str
    mode: str
    attempts: int
    reason: str

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "kernel": self.kernel,
            "mode": self.mode,
            "attempts": self.attempts,
            "reason": self.reason,
        }


def _failure_reason(exc: BaseException) -> str:
    if isinstance(exc, JobTimeout):
        return "timeout"
    if isinstance(exc, BrokenProcessPool):
        return "worker-crash"
    return f"{type(exc).__name__}: {exc}"


def _count_failed_attempt(reason: str) -> None:
    """Metrics for one failed attempt of one job (not chunk splits)."""
    obs.count("engine.job.attempts.failed")
    if reason == "timeout":
        obs.count("engine.job.timeouts")


def _count_stopping(dicts: list[dict]) -> None:
    """Scheduler-side stopping metrics for pool-executed adaptive jobs.

    The measurement core emits ``stopping.*`` in its own process; a pool
    worker's registry dies with the pool (the same reason per-job
    durations are attributed scheduler-side), so re-derive the counters
    from the returned payload.  Inline runs never pass through here and
    keep the in-process emission — totals match either way.
    """
    for d in dicts:
        if d.get("rciw") is None:
            continue
        obs.count(
            "stopping.converged" if d.get("converged") else "stopping.capped"
        )
        obs.observe(
            "stopping.experiments",
            float(len(d.get("experiment_tsc", ()))),
            bounds=EXPERIMENT_BUCKETS,
        )


@dataclass(slots=True, repr=False)
class RunStats:
    """What one campaign run did: totals, cache traffic, pool shape."""

    total_jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    chunk_size: int = 1
    #: Resolved chunk-sizing policy: ``static`` or ``dynamic``.
    chunk_policy: str = "static"
    fell_back_inline: bool = False
    #: Re-dispatches of a single job after a failed attempt.
    retries: int = 0
    #: Jobs quarantined after exhausting their retry budget.
    failed: int = 0
    #: Snapshot of the observability metrics registry at run end
    #: (session-cumulative; ``{}`` when observability is disabled).
    metrics: dict = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0

    @property
    def completed(self) -> int:
        """Jobs that produced rows: executions plus cache hits."""
        return self.executed + self.cache_hits

    def __repr__(self) -> str:
        # Hand-rolled so a degraded run — zero completed jobs included —
        # always renders; every rate below is guarded against /0.
        rate = f"{self.cache_hit_rate:.1%}" if self.total_jobs else "n/a"
        extras = ""
        if self.retries or self.failed:
            extras = f", retries={self.retries}, failed={self.failed}"
        if self.fell_back_inline:
            extras += ", fell_back_inline=True"
        return (
            f"RunStats(total_jobs={self.total_jobs}, executed={self.executed}, "
            f"cache_hits={self.cache_hits} ({rate}), workers={self.workers}, "
            f"chunk_size={self.chunk_size}{extras})"
        )


@dataclass(slots=True)
class CampaignRun:
    """Result of one campaign run: jobs plus their measurements.

    A quarantined job appears in :attr:`failures` (in campaign order)
    and contributes no rows; everything else is exactly what a
    fault-free run produces.
    """

    campaign: Campaign
    jobs: list[Job]
    results: dict[str, list[Measurement]]
    stats: RunStats = field(default_factory=RunStats)
    failures: list[JobFailure] = field(default_factory=list)

    def per_job(self) -> Iterable[tuple[Job, list[Measurement]]]:
        """(job, measurements) pairs in campaign (job-index) order.

        Quarantined jobs are skipped: the run degrades to N-1 rows.
        """
        for job in self.jobs:
            measurements = self.results.get(job.job_id)
            if measurements is not None:
                yield job, measurements

    def rows(self) -> list[tuple[Job, Measurement]]:
        """Flat (job, measurement) rows in deterministic output order."""
        return [(job, m) for job, ms in self.per_job() for m in ms]

    def measurements(self) -> list[Measurement]:
        return [m for _, m in self.rows()]

    def grouped(self, tag: str) -> dict[object, list[tuple[Job, Measurement]]]:
        """Rows bucketed by one tag's value (sweep label or axis value)."""
        groups: dict[object, list[tuple[Job, Measurement]]] = {}
        for job, m in self.rows():
            groups.setdefault(job.tags.get(tag), []).append((job, m))
        return groups

    def write_csv(self, path: str | Path, *, full: bool = False) -> Path:
        """Write every result row as a launcher CSV (full precision)."""
        from repro.launcher.csvout import write_csv

        return write_csv(path, self.measurements(), full=full)

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one JSON line per result row (job identity + measurement).

        Quarantined jobs are surfaced explicitly: after the result rows,
        one ``{"failure": {...}}`` line per entry in :attr:`failures`,
        so a consumer can tell a degraded run from a smaller campaign.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for job, m in self.rows():
                record = {
                    "job_id": job.job_id,
                    "kernel": job.kernel_name,
                    "mode": job.mode,
                    "tags": job.tags,
                    "measurement": measurement_to_dict(m),
                }
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            for failure in self.failures:
                fh.write(
                    json.dumps({"failure": failure.to_dict()}, sort_keys=True) + "\n"
                )
        return path


def _run_job_bounded(
    launcher,
    job: Job,
    faults: FaultPlan | None,
    attempt: int,
    job_timeout: float | None,
) -> list[dict]:
    """Inline execution with an optional wall-clock bound.

    With a timeout, the job runs on a daemon thread so a hung job cannot
    wedge the campaign; the abandoned thread dies with the process.
    """
    if job_timeout is None:
        return _run_job(launcher, job, faults, attempt)
    box: list[list[dict]] = []
    error: list[BaseException] = []

    def target() -> None:
        try:
            box.append(_run_job(launcher, job, faults, attempt))
        except BaseException as exc:  # noqa: BLE001 - relayed to the caller
            error.append(exc)

    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    thread.join(job_timeout)
    if thread.is_alive():
        raise JobTimeout(f"job {job.job_id} exceeded {job_timeout:.3g}s")
    if error:
        raise error[0]
    return box[0]


@dataclass(slots=True)
class _Unit:
    """One dispatchable batch of jobs, possibly delayed by backoff."""

    jobs: list[Job]
    not_before: float = 0.0


def _gen_group(job: Job) -> tuple[str, str] | None:
    """The spec expansion a deferred job regenerates from (else ``None``)."""
    kernel = job.kernel
    return kernel.memo_key() if isinstance(kernel, KernelRef) else None


def _chunked_units(pending: list[Job], chunk_size: int) -> list[_Unit]:
    """Slice pending jobs into dispatch units, never spanning two specs.

    Deferred jobs regenerate their spec's expansion worker-side, so a
    chunk mixing two specs would force one worker to run two pipelines.
    Grouping consecutive jobs by expansion key before slicing keeps each
    chunk inside one spec; campaign expansion order already keeps a
    sweep's jobs contiguous.  Results are unaffected — chunk boundaries
    never change a job's identity or seed.
    """
    return [
        _Unit(batch[i : i + chunk_size])
        for _key, group in itertools.groupby(pending, key=_gen_group)
        for batch in (list(group),)
        for i in range(0, len(batch), chunk_size)
    ]


def resolve_chunk_policy(chunk_policy: str, chunk_size: int | None) -> str:
    """Resolve ``auto`` to a concrete policy and validate the rest."""
    if chunk_policy not in CHUNK_POLICIES:
        raise ValueError(
            f"chunk_policy must be one of {CHUNK_POLICIES}, got {chunk_policy!r}"
        )
    if chunk_policy == "auto":
        return "static" if chunk_size is not None else "dynamic"
    return chunk_policy


class _ChunkPlanner:
    """Carves pending jobs into dispatch units, sized by observed cost.

    Chunks never span two spec families (same rule as
    :func:`_chunked_units` — a deferred chunk regenerates its spec
    worker-side, and mixing two specs would run two pipelines in one
    worker).  Under the ``static`` policy every chunk is
    ``chunk_size`` jobs, reproducing the pre-planner slicing exactly.
    Under ``dynamic``, the first chunks of each family are
    ``_SEED_CHUNK_SIZE`` jobs; once per-job durations flow back from the
    workers, each next chunk is sized so it should occupy a worker for
    ``target_ms`` — an EWMA per family, falling back to a campaign-wide
    EWMA for families not yet seen.  Sizing only changes how many jobs
    share a launcher; job identity, seeds, and output bytes are
    untouched.
    """

    def __init__(
        self,
        pending: list[Job],
        *,
        policy: str,
        chunk_size: int,
        target_ms: float,
    ) -> None:
        self.policy = policy
        self.chunk_size = chunk_size
        self.target_ms = target_ms
        self._ewma: dict[object, float] = {}
        self._overall: float | None = None
        self._groups: deque[tuple[object, deque[Job]]] = deque(
            (key, deque(group))
            for key, group in itertools.groupby(pending, key=_gen_group)
        )

    def exhausted(self) -> bool:
        return not self._groups

    def carve(self) -> _Unit | None:
        """The next fresh dispatch unit, or ``None`` when drained."""
        if not self._groups:
            return None
        key, batch = self._groups[0]
        size = min(self._size_for(key), len(batch))
        jobs = [batch.popleft() for _ in range(size)]
        if not batch:
            self._groups.popleft()
        return _Unit(jobs)

    def _size_for(self, key: object) -> int:
        if self.policy == "static":
            return self.chunk_size
        per_job_ms = self._ewma.get(key, self._overall)
        if per_job_ms is None:
            return _SEED_CHUNK_SIZE
        per_job_ms = max(per_job_ms, 1e-3)
        return max(1, min(_DYNAMIC_MAX_CHUNK, int(self.target_ms / per_job_ms)))

    def observe(self, key: object, durations_ms: list[float]) -> None:
        """Fold one completed chunk's per-job durations into the EWMA."""
        if self.policy != "dynamic" or not durations_ms:
            return
        mean = sum(durations_ms) / len(durations_ms)
        previous = self._ewma.get(key)
        self._ewma[key] = (
            mean
            if previous is None
            else _EWMA_ALPHA * mean + (1.0 - _EWMA_ALPHA) * previous
        )
        self._overall = (
            mean
            if self._overall is None
            else _EWMA_ALPHA * mean + (1.0 - _EWMA_ALPHA) * self._overall
        )


class _PoolUnusable(Exception):
    """The process pool cannot be made to work; run inline instead."""


def _shutdown_pool(pool, *, kill: bool = False) -> None:
    """Tear down a pool, forcibly if its workers may be hung."""
    if not kill:
        pool.shutdown(wait=True, cancel_futures=True)
        return
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _parallel_execute(
    campaign: Campaign,
    pending: list[Job],
    *,
    stats: RunStats,
    faults: FaultPlan | None,
    attempts: dict[str, int],
    max_retries: int,
    job_timeout: float | None,
    retry_backoff: float,
    chunk_target_ms: float,
    record_batch: Callable[[list[tuple[Job, list[dict]]]], list[bool]],
    quarantine: Callable[[Job, str], None],
    say: Callable[[str], None],
) -> list[Job] | None:
    """Dispatch pending jobs on the persistent pool with full recovery.

    Returns ``None`` when every pending job was recorded or quarantined,
    or the unfinished jobs when no pool can be made to work (the caller
    runs those inline).  Recovery rules:

    - a chunk whose worker raised is *split in half* and re-dispatched,
      isolating the poisoned job in O(log chunk) rounds without charging
      an attempt to jobs that cannot be blamed individually;
    - a single failing job is retried with exponential backoff, then
      quarantined once it has failed ``max_retries + 1`` times;
    - a dead worker rebuilds the pool under a new epoch: the chunk it
      had claimed is treated as failed, every other in-flight chunk is
      re-dispatched without being charged an attempt, and any straggler
      message from the old generation is dropped by its stale epoch;
    - with ``job_timeout``, a chunk gets ``job_timeout * len(chunk)``
      seconds from dispatch; past that the pool (which still holds the
      hung worker) is killed and rebuilt the same way.
    """
    handled: set[str] = set()
    #: Retry/split re-dispatches; fresh chunks are carved on demand so
    #: dynamic sizing uses the newest duration estimates.
    work: deque[_Unit] = deque()
    planner = _ChunkPlanner(
        pending,
        policy=stats.chunk_policy,
        chunk_size=stats.chunk_size,
        target_ms=chunk_target_ms,
    )
    say(
        f"{campaign.name}: dispatching {len(pending)} jobs to "
        f"{stats.workers} persistent workers ({stats.chunk_policy} chunks)"
    )

    def fail_unit(unit: _Unit, reason: str) -> None:
        if len(unit.jobs) > 1:
            mid = len(unit.jobs) // 2
            work.append(_Unit(unit.jobs[:mid]))
            work.append(_Unit(unit.jobs[mid:]))
            return
        job = unit.jobs[0]
        _count_failed_attempt(reason)
        attempts[job.job_id] += 1
        if attempts[job.job_id] > max_retries:
            quarantine(job, reason)
            handled.add(job.job_id)
            return
        stats.retries += 1
        obs.count("engine.job.retries")
        backoff = retry_backoff * (2 ** (attempts[job.job_id] - 1))
        work.append(_Unit(unit.jobs, not_before=time.monotonic() + backoff))

    # task_id -> (unit, deadline, perf_counter submit time); submit time
    # feeds the per-chunk trace spans.  Submission is windowed to the
    # worker count, so submission time ~= start time, which is what
    # makes the per-chunk deadline meaningful.
    in_flight: dict[int, tuple[_Unit, float | None, float]] = {}
    ever_succeeded = False
    consecutive_breaks = 0

    def requeue_innocents() -> None:
        """Re-dispatch in-flight chunks that cannot be blamed, free."""
        for unit, _deadline, _submitted in in_flight.values():
            work.append(_Unit(unit.jobs))
        in_flight.clear()

    def rebuild(reason: str) -> None:
        try:
            pool.rebuild()
        except PoolUnusable as exc:
            raise _PoolUnusable from exc
        say(f"{campaign.name}: {reason}")

    try:
        try:
            pool = get_worker_pool(stats.workers)
        except PoolUnusable as exc:
            raise _PoolUnusable from exc
        while work or in_flight or not planner.exhausted():
            # Submit ready units up to worker capacity.  Backed-off
            # units are set aside in one pass (no per-unit rotation);
            # fresh chunks are carved only when a slot is actually free.
            now = time.monotonic()
            waiting: list[_Unit] = []
            while len(in_flight) < stats.workers:
                unit = None
                while work:
                    candidate = work.popleft()
                    if candidate.not_before > now:
                        waiting.append(candidate)
                    else:
                        unit = candidate
                        break
                if unit is None:
                    unit = planner.carve()
                if unit is None:
                    break
                snapshot = {j.job_id: attempts[j.job_id] for j in unit.jobs}
                try:
                    task_id = pool.submit(
                        campaign.machine, unit.jobs, faults, snapshot
                    )
                except (OSError, PermissionError) as exc:
                    work.appendleft(unit)
                    raise _PoolUnusable from exc
                except Exception as exc:  # unpicklable chunk: charge it
                    fail_unit(unit, _failure_reason(exc))
                    continue
                if task_id is None:  # no idle worker (one may be dead)
                    work.appendleft(unit)
                    break
                deadline = (
                    None
                    if job_timeout is None
                    else time.monotonic()
                    + job_timeout * len(unit.jobs)
                    + _CHUNK_TIMEOUT_SLACK
                )
                in_flight[task_id] = (unit, deadline, time.perf_counter())
            if waiting:
                work.extendleft(reversed(waiting))
            if not in_flight:
                # Everything is backing off: sleep until the earliest
                # unit becomes dispatchable.
                delay = max(
                    0.0, min(u.not_before for u in work) - time.monotonic()
                )
                time.sleep(min(delay, _POLL_SECONDS) or _POLL_SECONDS / 10)
                continue
            for kind, _worker_id, task_id, body in pool.poll(_POLL_SECONDS):
                entry = in_flight.pop(task_id, None)
                if entry is None:  # pragma: no cover - defensive
                    continue
                unit, _deadline, submitted = entry
                chunk_s = time.perf_counter() - submitted
                if kind == "error":
                    obs.add_span(
                        "engine.chunk", submitted, chunk_s,
                        jobs=len(unit.jobs), outcome=body,
                    )
                    fail_unit(unit, body)
                    continue
                try:
                    outputs = unpack_chunk(body)
                except TransportError as exc:
                    obs.add_span(
                        "engine.chunk", submitted, chunk_s,
                        jobs=len(unit.jobs), outcome=_failure_reason(exc),
                    )
                    fail_unit(unit, _failure_reason(exc))
                    continue
                ever_succeeded = True
                consecutive_breaks = 0
                obs.add_span(
                    "engine.chunk", submitted, chunk_s,
                    jobs=len(unit.jobs), outcome="ok",
                )
                # Real per-job wall clock, measured worker-side and
                # carried in the packed frame — both the duration
                # histogram and the chunk planner's EWMA see actual
                # job cost, not an even split of chunk time.
                planner.observe(
                    _gen_group(unit.jobs[0]),
                    [duration_ms for _, _, duration_ms in outputs],
                )
                if obs.is_enabled():
                    for _job_id, _dicts, duration_ms in outputs:
                        obs.observe("engine.job.duration_ms", duration_ms)
                by_id = {job.job_id: job for job in unit.jobs}
                pairs = [
                    (by_id[job_id], dicts) for job_id, dicts, _ in outputs
                ]
                for (job, dicts), ok in zip(pairs, record_batch(pairs)):
                    if ok:
                        handled.add(job.job_id)
                        if obs.is_enabled():
                            _count_stopping(dicts)
                    else:
                        fail_unit(_Unit([job]), "invalid-result")
            dead = pool.dead_worker_ids()
            if dead:
                consecutive_breaks += 1
                if (
                    consecutive_breaks >= _MAX_POOL_BREAKS_BEFORE_INLINE
                    and not ever_succeeded
                ):
                    raise _PoolUnusable
                for worker_id in dead:
                    # The parent assigned the task, so blame needs no
                    # worker cooperation: a dead worker's task is
                    # whatever the pool still shows assigned to it.
                    task_id = pool.task_of(worker_id)
                    entry = (
                        in_flight.pop(task_id, None)
                        if task_id is not None
                        else None
                    )
                    if entry is None:
                        continue
                    unit, _deadline, submitted = entry
                    obs.add_span(
                        "engine.chunk",
                        submitted,
                        time.perf_counter() - submitted,
                        jobs=len(unit.jobs),
                        outcome="worker-crash",
                    )
                    fail_unit(unit, "worker-crash")
                requeue_innocents()
                rebuild("worker crashed; re-dispatching its jobs")
                continue
            if job_timeout is not None and in_flight:
                now = time.monotonic()
                expired = [
                    task_id
                    for task_id, (_unit, deadline, _submitted) in in_flight.items()
                    if deadline is not None and now > deadline
                ]
                if expired:
                    for task_id in expired:
                        unit, _deadline, submitted = in_flight.pop(task_id)
                        obs.add_span(
                            "engine.chunk",
                            submitted,
                            time.perf_counter() - submitted,
                            jobs=len(unit.jobs),
                            outcome="timeout",
                        )
                        fail_unit(unit, "timeout")
                    # The hung worker still owns a pool slot; rebuild
                    # and re-dispatch the innocent in-flight chunks.
                    requeue_innocents()
                    rebuild(
                        f"chunk exceeded its {job_timeout:.3g}s/job "
                        "budget; rebuilding the pool"
                    )
    except _PoolUnusable:
        shutdown_worker_pool()
        return [job for job in pending if job.job_id not in handled]
    return None


def _inline_execute(
    campaign: Campaign,
    pending: list[Job],
    *,
    stats: RunStats,
    faults: FaultPlan | None,
    attempts: dict[str, int],
    max_retries: int,
    job_timeout: float | None,
    retry_backoff: float,
    record: Callable[[Job, list[dict]], bool],
    quarantine: Callable[[Job, str], None],
) -> None:
    """Run jobs in this process: one launcher, bounded retries per job.

    Results are recorded as each job completes so an interrupted run
    resumes from the cache.
    """
    from repro.launcher.launcher import MicroLauncher

    launcher = MicroLauncher(campaign.machine)
    for job in pending:
        while True:
            attempt = attempts[job.job_id]
            try:
                with obs.span(
                    "engine.job",
                    metric="engine.job.duration_ms",
                    job=job.job_id,
                    kernel=job.kernel_name,
                    attempt=attempt,
                ):
                    dicts = _run_job_bounded(
                        launcher, job, faults, attempt, job_timeout
                    )
            except Exception as exc:
                reason = _failure_reason(exc)
            else:
                if record(job, dicts):
                    break
                reason = "invalid-result"
            _count_failed_attempt(reason)
            attempts[job.job_id] += 1
            if attempts[job.job_id] > max_retries:
                quarantine(job, reason)
                break
            stats.retries += 1
            obs.count("engine.job.retries")
            backoff = retry_backoff * (2 ** (attempts[job.job_id] - 1))
            if backoff > 0:
                time.sleep(backoff)


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: str | Path | None = None,
    cache: "ResultCache | ShardedResultCache | None" = None,
    resume: bool = True,
    progress: Callable[[str], None] | None = None,
    max_retries: int = 2,
    job_timeout: float | None = None,
    retry_backoff: float = 0.05,
    faults: FaultPlan | None = None,
    gen_cache_dir: str | Path | None = None,
    gen_cache: "GenerationCache | ShardedGenerationCache | None" = None,
    generation: str = "auto",
    store_format: str = "sharded",
) -> CampaignRun:
    """Execute a campaign and return its ordered results.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs every job inline in this process.
        If the pool cannot start (restricted environments), the run
        falls back inline — results are identical either way.
    chunk_size:
        Jobs shipped to a worker per submission (amortizes pickling and
        launcher setup); ``None`` auto-sizes.  Output rows are
        byte-identical for every chunking.
    chunk_policy:
        How chunks are sized: ``"static"`` slices fixed batches of
        ``chunk_size`` jobs (auto-sized when ``chunk_size`` is
        ``None``); ``"dynamic"`` seeds small chunks and then targets
        ``chunk_target_ms`` of wall time per chunk from an EWMA of
        observed per-job durations per spec family — straggler-resistant
        when per-job cost varies (adaptive stopping).  ``"auto"`` (the
        default) picks ``static`` when an explicit ``chunk_size`` is
        given, else ``dynamic``.  Output bytes are identical under
        every policy.
    chunk_target_ms:
        Dynamic chunking's wall-time target per chunk (default
        ``DEFAULT_CHUNK_TARGET_MS``); ignored under ``static``.
    cache_dir / cache:
        Reuse measurements across runs: jobs whose ID is already stored
        are not executed.  ``cache`` takes precedence over ``cache_dir``.
        A cached payload that fails validation is re-measured, never
        returned.
    resume:
        When ``False``, stored results are ignored (every job executes)
        but completions are still recorded — a forced re-measure.
    progress:
        Optional callback receiving one human-readable line per phase.
    max_retries:
        Failed attempts a job may make beyond its first before it is
        quarantined (so every job gets ``max_retries + 1`` tries).
    job_timeout:
        Wall-clock seconds one job may take.  Parallel chunks get
        ``job_timeout * len(chunk)`` from dispatch; inline jobs run on a
        bounded thread.  ``None`` disables the deadline.
    retry_backoff:
        Base delay before re-dispatching a failed job; doubles per
        failed attempt.
    faults:
        Deterministic fault-injection plan (tests and chaos drills);
        ``None`` injects nothing.
    gen_cache_dir / gen_cache:
        Persist spec expansions across runs (see
        :mod:`repro.engine.gencache`): a warm cache expands the campaign
        without running the pass pipeline.  ``gen_cache`` takes
        precedence over ``gen_cache_dir``.
    generation:
        Where spec-derived kernels are rendered.  ``"worker"`` ships
        :class:`KernelRef` descriptions and regenerates in the measuring
        process; ``"parent"`` ships rendered kernels (the pre-deferral
        behavior); ``"auto"`` defers exactly when a pool is in play
        (``jobs > 1``).  Job IDs, seeds, and output bytes are identical
        in every mode.
    store_format:
        On-disk layout for ``cache_dir`` / ``gen_cache_dir``:
        ``"sharded"`` (the default) opens the indexed segment store of
        :mod:`repro.engine.store`, transparently migrating a legacy
        JSONL cache the first time; ``"jsonl"`` keeps the single-file
        layout.  Output bytes are identical either way; explicitly
        passed ``cache`` / ``gen_cache`` objects are used as-is.
    """
    if max_retries < 0:
        raise ValueError("max_retries must be >= 0")
    if job_timeout is not None and job_timeout <= 0:
        raise ValueError("job_timeout must be positive")
    resolved_policy = resolve_chunk_policy(chunk_policy, chunk_size)
    if chunk_target_ms is None:
        chunk_target_ms = DEFAULT_CHUNK_TARGET_MS
    elif chunk_target_ms <= 0:
        raise ValueError("chunk_target_ms must be positive")
    if generation not in ("auto", "parent", "worker"):
        raise ValueError(
            f"generation must be 'auto', 'parent' or 'worker', got {generation!r}"
        )
    if cache is None and cache_dir is not None:
        cache = open_result_cache(cache_dir, store_format)
    if gen_cache is None and gen_cache_dir is not None:
        gen_cache = open_generation_cache(gen_cache_dir, store_format)
    defer = generation == "worker" or (generation == "auto" and jobs > 1)

    with obs.span(
        "engine.campaign", campaign=campaign.name, workers=max(1, jobs)
    ) as campaign_span:
        with obs.span("engine.expand"):
            job_list = campaign.job_list(gen_cache=gen_cache, defer=defer)
        campaign_span.set(jobs=len(job_list))
        say = progress or (lambda message: None)
        stats = RunStats(total_jobs=len(job_list), workers=max(1, jobs))

        results: dict[str, list[Measurement]] = {}
        pending: list[Job] = []
        seen: set[str] = set()
        # Cache partition: every job in the campaign is answered by the
        # cache (engine.cache.hits), scheduled for execution
        # (engine.cache.misses), or a duplicate grid point sharing an
        # already-partitioned job's rows (engine.jobs.deduped) — the
        # three counters always sum to the campaign's job count.
        with obs.span("engine.cache.scan", metric="engine.cache.scan_ms"):
            # Register both sides of the partition up front so every
            # export carries the invariant, an all-miss cold run included.
            obs.count("engine.cache.hits", 0)
            obs.count("engine.cache.misses", 0)
            for job in job_list:
                if job.job_id in seen:
                    # duplicate grid point: measure once, share the rows
                    obs.count("engine.jobs.deduped")
                    continue
                seen.add(job.job_id)
                if cache and resume:
                    cached = cache.get(job.job_id)
                    if cached is not None:
                        try:
                            results[job.job_id] = measurements_from_payload(cached)
                        except ValueError:
                            pass  # damaged cache entry: re-measure below
                        else:
                            stats.cache_hits += 1
                            obs.count("engine.cache.hits")
                            continue
                obs.count("engine.cache.misses")
                pending.append(job)
        say(
            f"{campaign.name}: {len(job_list)} jobs, "
            f"{stats.cache_hits} cached, {len(pending)} to run"
        )

        failures: dict[str, JobFailure] = {}
        attempts: dict[str, int] = defaultdict(int)

        def record(job: Job, dicts: list[dict]) -> bool:
            """Validate and store one job's payload; ``False`` if corrupt."""
            try:
                measurements = measurements_from_payload(dicts)
            except ValueError:
                return False
            results[job.job_id] = measurements
            stats.executed += 1
            if cache is not None:
                with obs.span(
                    "engine.cache.put",
                    metric="engine.cache.put_ms",
                    job=job.job_id,
                ):
                    cache.put(
                        job.job_id, dicts, kernel=job.kernel_name, mode=job.mode
                    )
                obs.count("engine.cache.puts")
            return True

        def record_batch(pairs: list[tuple[Job, list[dict]]]) -> list[bool]:
            """Validate a chunk's payloads, then persist them in one batch.

            The batched put amortizes the per-record open/flush across
            the chunk while keeping crash consistency: every valid row
            of the chunk is durable before the scheduler marks any of
            its jobs handled (the caller marks only after this
            returns).
            """
            oks: list[bool] = []
            puts: list[tuple[str, list[dict], str, str]] = []
            for job, dicts in pairs:
                try:
                    measurements = measurements_from_payload(dicts)
                except ValueError:
                    oks.append(False)
                    continue
                results[job.job_id] = measurements
                stats.executed += 1
                puts.append((job.job_id, dicts, job.kernel_name, job.mode))
                oks.append(True)
            if cache is not None and puts:
                with obs.span(
                    "engine.cache.put",
                    metric="engine.cache.put_ms",
                    jobs=len(puts),
                ):
                    if hasattr(cache, "put_many"):
                        cache.put_many(puts)
                    else:  # user-supplied cache without batch support
                        for job_id, dicts, kernel, mode in puts:
                            cache.put(job_id, dicts, kernel=kernel, mode=mode)
                obs.count("engine.cache.puts", len(puts))
            return oks

        def quarantine(job: Job, reason: str) -> None:
            failures[job.job_id] = JobFailure(
                job_id=job.job_id,
                kernel=job.kernel_name,
                mode=job.mode,
                attempts=attempts[job.job_id],
                reason=reason,
            )
            obs.count("engine.job.quarantined")
            say(
                f"{campaign.name}: quarantined job {job.job_id} "
                f"({job.kernel_name}) after {attempts[job.job_id]} attempts: "
                f"{reason}"
            )

        stats.chunk_policy = resolved_policy
        if pending and stats.workers > 1:
            stats.chunk_size = (
                resolve_chunk_size(chunk_size, len(pending), stats.workers)
                if resolved_policy == "static"
                else _SEED_CHUNK_SIZE
            )
            with obs.span(
                "engine.dispatch",
                mode="pool",
                jobs=len(pending),
                workers=stats.workers,
                chunk_size=stats.chunk_size,
                chunk_policy=stats.chunk_policy,
            ):
                leftover = _parallel_execute(
                    campaign,
                    pending,
                    stats=stats,
                    faults=faults,
                    attempts=attempts,
                    max_retries=max_retries,
                    job_timeout=job_timeout,
                    retry_backoff=retry_backoff,
                    chunk_target_ms=chunk_target_ms,
                    record_batch=record_batch,
                    quarantine=quarantine,
                    say=say,
                )
            if leftover is None:
                pending = []
            else:
                # Pool unavailable (sandboxed /dev/shm, fork limits):
                # results are seed-derived per job, so inline execution
                # is identical.
                stats.fell_back_inline = True
                say(f"{campaign.name}: worker pool unavailable, running inline")
                pending = leftover
        if pending:
            with obs.span("engine.dispatch", mode="inline", jobs=len(pending)):
                _inline_execute(
                    campaign,
                    pending,
                    stats=stats,
                    faults=faults,
                    attempts=attempts,
                    max_retries=max_retries,
                    job_timeout=job_timeout,
                    retry_backoff=retry_backoff,
                    record=record,
                    quarantine=quarantine,
                )

        ordered_failures: list[JobFailure] = []
        reported: set[str] = set()
        for job in job_list:
            if job.job_id in failures and job.job_id not in reported:
                reported.add(job.job_id)
                ordered_failures.append(failures[job.job_id])
        stats.failed = len(ordered_failures)
        stats.metrics = obs.metrics_snapshot()
        say(
            f"{campaign.name}: done — {stats.executed} executed, "
            f"{stats.cache_hits} cache hits"
            + (f", {stats.failed} failed" if stats.failed else "")
        )
        return CampaignRun(
            campaign=campaign,
            jobs=job_list,
            results=results,
            stats=stats,
            failures=ordered_failures,
        )
