"""The campaign scheduler: cache partition -> worker pool -> ordered rows.

``run_campaign`` expands a campaign, answers what it can from the result
cache, executes the remaining jobs — inline for ``jobs=1``, on a
``ProcessPoolExecutor`` otherwise — and assembles results in campaign
order.  Determinism is structural, not scheduled: each job's noise seed
derives from its content hash (see :meth:`Job.execution_options`), and
rows are ordered by job index, so worker count and completion order
cannot change a single output byte.

Parallel jobs ship to workers in *chunks* (``chunk_size``, auto-sized by
default): one pickle round-trip and one launcher per chunk instead of
per job, with a per-worker memo so option sweeps over one kernel
normalize and model it once.
"""

from __future__ import annotations

import concurrent.futures
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.engine.cache import ResultCache
from repro.engine.campaign import Campaign, Job
from repro.engine.serialize import measurement_from_dict, measurement_to_dict
from repro.launcher.measurement import Measurement
from repro.machine.config import MachineConfig

#: Per-process memo of normalized kernels keyed by ``(kernel digest,
#: trip_count)``: parsing/analyzing a kernel (the kernel-model half of a
#: measurement) is pure in its text and lowering size, so a chunk that
#: sweeps options over one kernel evaluates the model once.
_SIM_MEMO: dict[tuple[str, int], object] = {}
_SIM_MEMO_MAX = 512

#: Chunk-size ceiling: keeps result recording (and cache writes) granular
#: enough to survive interruption without losing much work.
_MAX_AUTO_CHUNK = 32


def _sim_kernel_for(job: Job) -> object:
    """Normalize the job's kernel, memoized per worker process."""
    from repro.engine.hashing import kernel_digest
    from repro.launcher.kernel_input import as_sim_kernel

    digest = job.kernel_digest or kernel_digest(job.kernel)
    key = (digest, job.options.trip_count)
    sim = _SIM_MEMO.get(key)
    if sim is None:
        sim = as_sim_kernel(job.kernel, trip_count=job.options.trip_count)
        if len(_SIM_MEMO) >= _SIM_MEMO_MAX:
            _SIM_MEMO.clear()
        _SIM_MEMO[key] = sim
    return sim


def _run_job(launcher, job: Job) -> list[dict]:
    """Execute one job on an existing launcher."""
    options = job.execution_options()
    if options.csv_path:  # the engine owns output; workers never write CSVs
        options = options.with_(csv_path=None)
    kernel = _sim_kernel_for(job)
    if job.mode == "sequential":
        measurements = [launcher.run(kernel, options)]
    elif job.mode == "forked":
        measurements = list(launcher.run_forked(kernel, options).per_core)
    elif job.mode == "openmp":
        measurements = [launcher.run_openmp(kernel, options).measurement]
    elif job.mode == "alignment_sweep":
        measurements = list(launcher.run_alignment_sweep(kernel, options))
    else:  # pragma: no cover - SweepSpec validates modes at build time
        raise ValueError(f"unknown job mode {job.mode!r}")
    return [measurement_to_dict(m) for m in measurements]


def _execute_chunk(
    machine: MachineConfig, jobs: list[Job]
) -> list[tuple[str, list[dict]]]:
    """Run a batch of jobs on one launcher (worker-side entry point)."""
    from repro.launcher.launcher import MicroLauncher

    launcher = MicroLauncher(machine)
    return [(job.job_id, _run_job(launcher, job)) for job in jobs]


def _execute_job(machine: MachineConfig, job: Job) -> tuple[str, list[dict]]:
    """Run one job against a fresh launcher (a chunk of one)."""
    return _execute_chunk(machine, [job])[0]


def resolve_chunk_size(chunk_size: int | None, n_jobs: int, workers: int) -> int:
    """Jobs per worker batch; ``None`` auto-sizes for load balance.

    The auto rule targets a few chunks per worker (so a slow chunk does
    not straggle the pool) while capping the batch so cache writes stay
    granular.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        return chunk_size
    per_worker_share = -(-n_jobs // (max(1, workers) * 4))
    return max(1, min(_MAX_AUTO_CHUNK, per_worker_share))


@dataclass(slots=True)
class RunStats:
    """What one campaign run did: totals, cache traffic, pool shape."""

    total_jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    workers: int = 1
    chunk_size: int = 1
    fell_back_inline: bool = False

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.total_jobs if self.total_jobs else 0.0


@dataclass(slots=True)
class CampaignRun:
    """Result of one campaign run: jobs plus their measurements."""

    campaign: Campaign
    jobs: list[Job]
    results: dict[str, list[Measurement]]
    stats: RunStats = field(default_factory=RunStats)

    def per_job(self) -> Iterable[tuple[Job, list[Measurement]]]:
        """(job, measurements) pairs in campaign (job-index) order."""
        for job in self.jobs:
            yield job, self.results[job.job_id]

    def rows(self) -> list[tuple[Job, Measurement]]:
        """Flat (job, measurement) rows in deterministic output order."""
        return [(job, m) for job, ms in self.per_job() for m in ms]

    def measurements(self) -> list[Measurement]:
        return [m for _, m in self.rows()]

    def grouped(self, tag: str) -> dict[object, list[tuple[Job, Measurement]]]:
        """Rows bucketed by one tag's value (sweep label or axis value)."""
        groups: dict[object, list[tuple[Job, Measurement]]] = {}
        for job, m in self.rows():
            groups.setdefault(job.tags.get(tag), []).append((job, m))
        return groups

    def write_csv(self, path: str | Path, *, full: bool = False) -> Path:
        """Write every result row as a launcher CSV (full precision)."""
        from repro.launcher.csvout import write_csv

        return write_csv(path, self.measurements(), full=full)

    def write_jsonl(self, path: str | Path) -> Path:
        """Write one JSON line per result row (job identity + measurement)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for job, m in self.rows():
                record = {
                    "job_id": job.job_id,
                    "kernel": job.kernel_name,
                    "mode": job.mode,
                    "tags": job.tags,
                    "measurement": measurement_to_dict(m),
                }
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        return path


def run_campaign(
    campaign: Campaign,
    *,
    jobs: int = 1,
    chunk_size: int | None = None,
    cache_dir: str | Path | None = None,
    cache: ResultCache | None = None,
    resume: bool = True,
    progress: Callable[[str], None] | None = None,
) -> CampaignRun:
    """Execute a campaign and return its ordered results.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs every job inline in this process.
        If the pool cannot start (restricted environments), the run
        falls back inline — results are identical either way.
    chunk_size:
        Jobs shipped to a worker per submission (amortizes pickling and
        launcher setup); ``None`` auto-sizes from the pending-job count
        and worker count.  Output rows are byte-identical for every
        chunking.
    cache_dir / cache:
        Reuse measurements across runs: jobs whose ID is already stored
        are not executed.  ``cache`` takes precedence over ``cache_dir``.
    resume:
        When ``False``, stored results are ignored (every job executes)
        but completions are still recorded — a forced re-measure.
    progress:
        Optional callback receiving one human-readable line per phase.
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)

    job_list = campaign.job_list()
    say = progress or (lambda message: None)
    stats = RunStats(total_jobs=len(job_list), workers=max(1, jobs))

    raw: dict[str, list[dict]] = {}
    pending: list[Job] = []
    seen: set[str] = set()
    for job in job_list:
        if job.job_id in seen:
            continue  # duplicate grid point: measure once, share the rows
        seen.add(job.job_id)
        cached = cache.get(job.job_id) if (cache and resume) else None
        if cached is not None:
            raw[job.job_id] = cached
            stats.cache_hits += 1
        else:
            pending.append(job)
    say(
        f"{campaign.name}: {len(job_list)} jobs, "
        f"{stats.cache_hits} cached, {len(pending)} to run"
    )

    def record(job: Job, dicts: list[dict]) -> None:
        raw[job.job_id] = dicts
        stats.executed += 1
        if cache is not None:
            cache.put(job.job_id, dicts, kernel=job.kernel_name, mode=job.mode)

    if pending and stats.workers > 1:
        stats.chunk_size = resolve_chunk_size(chunk_size, len(pending), stats.workers)
        chunks = [
            pending[i : i + stats.chunk_size]
            for i in range(0, len(pending), stats.chunk_size)
        ]
        say(
            f"{campaign.name}: dispatching {len(chunks)} chunks of "
            f"<= {stats.chunk_size} jobs to {stats.workers} workers"
        )
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=stats.workers
            ) as pool:
                by_id = {job.job_id: job for job in pending}
                futures = [
                    pool.submit(_execute_chunk, campaign.machine, chunk)
                    for chunk in chunks
                ]
                for future in concurrent.futures.as_completed(futures):
                    for job_id, dicts in future.result():
                        record(by_id[job_id], dicts)
            pending = []
        except (OSError, PermissionError, concurrent.futures.process.BrokenProcessPool):
            # Pool unavailable (sandboxed /dev/shm, fork limits): results
            # are seed-derived per job, so inline execution is identical.
            stats.fell_back_inline = True
            say(f"{campaign.name}: worker pool unavailable, running inline")
            pending = [job for job in pending if job.job_id not in raw]
    if pending:
        # Inline path: one launcher (and the per-process kernel memo)
        # shared across every job, recording as each job completes so an
        # interrupted run resumes from the cache.
        from repro.launcher.launcher import MicroLauncher

        launcher = MicroLauncher(campaign.machine)
        for job in pending:
            record(job, _run_job(launcher, job))

    results = {
        job_id: [measurement_from_dict(d) for d in dicts]
        for job_id, dicts in raw.items()
    }
    say(
        f"{campaign.name}: done — {stats.executed} executed, "
        f"{stats.cache_hits} cache hits"
    )
    return CampaignRun(campaign=campaign, jobs=job_list, results=results, stats=stats)
