"""The persistent generation cache: rendered variants keyed by spec.

Running the 19-pass pipeline over a big sweep costs far more than
reading its output back, and generation is deterministic — the same
``(spec, creator options)`` pair always renders the same variants.  So
campaigns may persist each expansion here (``<dir>/gencache.jsonl``) and
skip the pipeline entirely on the next run, which is what makes
``--resume`` and repeated sweeps start measuring immediately::

    {"key": "<spec digest>:<creator-options digest>", "spec": "matmul",
     "variants": [{"variant_id": 0, "name": "matmul_v0000",
                   "digest": "ab12...", "text": ".text\\n...",
                   "metadata": {...}}, ...], "check": "9c41..."}

Storage discipline is inherited from :class:`~repro.engine.cache.JsonlCache`
— whole-record checksums, damaged lines skipped on load, atomic
self-repair on the next store, torn-tail handling — so a crashed or
corrupted cache degrades to regeneration, never to wrong kernels.

Cache hits return :class:`CachedVariant` handles: they carry the variant
name, metadata, and content digest up front and parse the stored
assembly back into a program only if something actually measures the
kernel, so job-ID expansion over a warm cache never touches the parser.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.engine.cache import JsonlCache, check_passes
from repro.engine.hashing import kernel_digest
from repro.isa.instructions import AsmProgram, Instruction


def valid_generation_record(record: object) -> bool:
    """Structural + integrity validation of one generation-cache record.

    Shared by every generation-store backend (:class:`GenerationCache`
    and the sharded store in :mod:`repro.engine.store`).
    """
    if not isinstance(record, dict):
        return False
    if not isinstance(record.get("key"), str):
        return False
    if not isinstance(record.get("spec"), str):
        return False
    variants = record.get("variants")
    if not isinstance(variants, list):
        return False
    for v in variants:
        if not isinstance(v, dict):
            return False
        if not isinstance(v.get("variant_id"), int):
            return False
        if not all(
            isinstance(v.get(k), str) for k in ("name", "digest", "text")
        ):
            return False
        if not isinstance(v.get("metadata"), dict):
            return False
    return check_passes(record)


def variants_from_record(record: dict) -> list["CachedVariant"]:
    """Decode one stored expansion into :class:`CachedVariant` handles."""
    spec_name = record["spec"]
    return [
        CachedVariant(
            spec_name=spec_name,
            variant_id=v["variant_id"],
            name=v["name"],
            text=v["text"],
            metadata=_tupled(v["metadata"]),  # type: ignore[arg-type]
            digest=v["digest"],
        )
        for v in record["variants"]
    ]


def generation_record(
    spec_dig: str,
    opts_dig: str,
    spec_name: str,
    variants: Sequence[object],
) -> dict:
    """Build the storable record for one complete expansion."""
    return {
        "key": GenerationCache.key_for(spec_dig, opts_dig),
        "spec": spec_name,
        "variants": [
            {
                "variant_id": v.variant_id,  # type: ignore[attr-defined]
                "name": v.name,  # type: ignore[attr-defined]
                "digest": kernel_digest(v),
                "text": v.asm_text(full_file=True),  # type: ignore[attr-defined]
                "metadata": v.metadata,  # type: ignore[attr-defined]
            }
            for v in variants
        ],
    }


def _tupled(value: object) -> object:
    """Restore the tuple convention JSON storage flattens to lists."""
    if isinstance(value, (list, tuple)):
        return tuple(_tupled(v) for v in value)
    if isinstance(value, dict):
        return {k: _tupled(v) for k, v in value.items()}
    return value


class CachedVariant:
    """A generated variant restored from the cache.

    Quacks like :class:`~repro.creator.GeneratedKernel` everywhere the
    engine and variant filters look — ``name``, ``metadata``, the
    familiar metadata properties, ``asm_text`` — but holds the rendered
    text instead of a program.  ``program`` parses lazily on first
    access, and the stored content digest pre-populates the
    ``kernel_digest`` memo, so expanding jobs from a warm cache does no
    parsing and no hashing.
    """

    __slots__ = (
        "spec_name",
        "variant_id",
        "metadata",
        "_name",
        "_text",
        "_program",
        "_digest_memo",
    )

    def __init__(
        self,
        spec_name: str,
        variant_id: int,
        name: str,
        text: str,
        metadata: dict[str, object],
        digest: str,
    ) -> None:
        self.spec_name = spec_name
        self.variant_id = variant_id
        self.metadata = metadata
        self._name = name
        self._text = text
        self._program: AsmProgram | None = None
        self._digest_memo = digest

    @property
    def name(self) -> str:
        return self._name

    @property
    def program(self) -> AsmProgram:
        """The parsed program (parsed once, on first use)."""
        if self._program is None:
            from repro.isa.parser import parse_asm

            program = parse_asm(self._text, name=self._name)
            program.name = self._name
            self._program = program
        return self._program

    @property
    def unroll(self) -> int:
        return int(self.metadata.get("unroll", 1))  # type: ignore[arg-type]

    @property
    def mix(self) -> str:
        explicit = self.metadata.get("mix")
        if isinstance(explicit, str):
            return explicit
        letters = []
        for instr in self.instructions():
            if instr.bytes_moved:
                letters.append("S" if instr.is_store else "L")
        return "".join(letters)

    @property
    def n_loads(self) -> int:
        return int(self.metadata.get("n_loads", 0))  # type: ignore[arg-type]

    @property
    def n_stores(self) -> int:
        return int(self.metadata.get("n_stores", 0))  # type: ignore[arg-type]

    @property
    def opcodes(self) -> tuple[str, ...]:
        ops = self.metadata.get("opcodes")
        if isinstance(ops, tuple):
            return ops
        return tuple(
            sorted({i.opcode for i in self.instructions() if i.bytes_moved})
        )

    def instructions(self) -> list[Instruction]:
        return list(self.program.instructions())

    def asm_text(self, *, full_file: bool = False) -> str:
        if full_file:
            return self._text
        from repro.isa.writer import write_program

        return write_program(self.program)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CachedVariant {self._name!r} digest={self._digest_memo[:8]}>"


class GenerationCache(JsonlCache):
    """Rendered-variant cache over a directory; see the module docstring."""

    FILENAME = "gencache.jsonl"
    KEY = "key"

    @staticmethod
    def key_for(spec_dig: str, opts_dig: str) -> str:
        return f"{spec_dig}:{opts_dig}"

    def _valid_record(self, record: object) -> bool:
        return valid_generation_record(record)

    def get(self, spec_dig: str, opts_dig: str) -> list[CachedVariant] | None:
        """The stored expansion for this spec + options, or ``None``."""
        record = self._records.get(self.key_for(spec_dig, opts_dig))
        if record is None:
            self.stats.misses += 1
            obs.count("gencache.miss")
            return None
        self.stats.hits += 1
        obs.count("gencache.hit")
        return variants_from_record(record)

    def put(
        self,
        spec_dig: str,
        opts_dig: str,
        spec_name: str,
        variants: Sequence[object],
    ) -> None:
        """Store one complete expansion (every variant, pre-filter).

        ``variants`` are generated-kernel-like objects (``name``,
        ``variant_id``, ``metadata``, ``asm_text``); the rendered
        full-file text and its digest are what later runs reuse.
        """
        self._store(generation_record(spec_dig, opts_dig, spec_name, variants))
