"""Deferred variant generation: ship spec references, not programs.

A spec-backed sweep can expand to thousands of variants; pickling every
rendered program into every worker chunk makes the parent's serialization
cost scale with kernel text size.  Generation is deterministic, so a job
only needs to carry *which* variant it measures — a :class:`KernelRef`
naming ``(spec, creator options, variant index)`` plus the expected
content digest — and the worker regenerates its slice locally.

Workers memoize the expansion per ``(spec digest, options digest)`` (the
same pattern as the simulation-kernel memo), and the scheduler groups
chunks by spec, so each worker runs the pass pipeline at most once per
spec it touches regardless of chunk size.  The digest check on every
resolution guarantees a worker regenerated exactly the kernel the parent
hashed into the job ID — any drift fails the job instead of silently
measuring the wrong program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro import obs
from repro.engine.hashing import (
    creator_options_digest,
    kernel_digest,
    spec_digest,
)
from repro.fastpickle import fast_slots_pickling
from repro.spec.schema import KernelSpec

if TYPE_CHECKING:
    from repro.creator.pass_manager import CreatorOptions
    from repro.engine.gencache import GenerationCache

#: Expansions kept per worker process.  A chunk references one spec and
#: campaigns interleave few specs per worker, so a handful suffices;
#: oldest-inserted is evicted first, like the simulation-kernel memo.
#: Expansions kept per process; overridable via ``REPRO_GEN_MEMO_MAX``
#: (read per insertion).  The memo is LRU — long-lived pool workers hold
#: it across campaigns, so hits keep an expansion alive.
_GEN_MEMO_MAX = 4

_GEN_MEMO: dict[tuple[str, str], dict[int, object]] = {}


@fast_slots_pickling
@dataclass(frozen=True, slots=True)
class KernelRef:
    """A variant by reference: regenerate me where you measure me.

    Digests are computed once at expansion time and carried along, so
    neither the parent (building job IDs) nor the worker (keying its
    memo) re-derives them per job.
    """

    spec: KernelSpec
    options: "CreatorOptions | None"
    spec_dig: str
    opts_dig: str
    variant_id: int
    digest: str
    name: str

    def memo_key(self) -> tuple[str, str]:
        """The expansion this ref resolves from (one pipeline run each)."""
        return (self.spec_dig, self.opts_dig)


def expand_spec_variants(
    spec: KernelSpec,
    options: "CreatorOptions | None",
    gen_cache: "GenerationCache | None",
) -> list[object]:
    """Every variant of ``spec`` under ``options``, cached when possible.

    A warm :class:`~repro.engine.gencache.GenerationCache` returns
    :class:`~repro.engine.gencache.CachedVariant` handles without running
    the pass pipeline; a miss generates, stores the full expansion
    (pre-filter — the cache key knows nothing about sweep filters), and
    returns the fresh kernels.
    """
    spec_dig = spec_digest(spec)
    opts_dig = creator_options_digest(options)
    if gen_cache is not None:
        cached = gen_cache.get(spec_dig, opts_dig)
        if cached is not None:
            return cached
    from repro.creator import MicroCreator

    variants: list[object] = list(MicroCreator(options).stream(spec))
    if gen_cache is not None:
        gen_cache.put(spec_dig, opts_dig, spec.name, variants)
    return variants


def resolve_kernel_ref(ref: KernelRef) -> object:
    """Regenerate the referenced variant (memoized per process).

    Raises ``RuntimeError`` when the regenerated slice has no such
    variant or its digest disagrees with the ref — the scheduler treats
    that as a failed attempt, never as a result.
    """
    key = ref.memo_key()
    expansion = _GEN_MEMO.pop(key, None)
    if expansion is None:
        with obs.span("gen.worker", spec=ref.spec.name) as sp:
            from repro.creator import MicroCreator

            variants = list(MicroCreator(ref.options).stream(ref.spec))
            sp.set(variants=len(variants))
        expansion = {v.variant_id: v for v in variants}  # type: ignore[attr-defined]
        from repro.engine.runner import _memo_capacity

        while len(_GEN_MEMO) >= _memo_capacity(
            "REPRO_GEN_MEMO_MAX", _GEN_MEMO_MAX
        ):
            _GEN_MEMO.pop(next(iter(_GEN_MEMO)))
    # LRU: re-insert at the tail on hit and miss alike — workers persist
    # across campaigns now, so the expansions still in use must outlive
    # colder ones.
    _GEN_MEMO[key] = expansion
    kernel = expansion.get(ref.variant_id)
    if kernel is None:
        raise RuntimeError(
            f"spec {ref.spec.name!r} regenerated {len(expansion)} variants; "
            f"no variant {ref.variant_id} (stale reference?)"
        )
    if kernel_digest(kernel) != ref.digest:
        raise RuntimeError(
            f"variant {ref.name!r} regenerated with digest "
            f"{kernel_digest(kernel)[:12]}..., expected {ref.digest[:12]}...; "
            "generation is not deterministic across processes"
        )
    return kernel
