"""Declarative campaigns: kernel grids x launcher-option axes -> jobs.

A :class:`SweepSpec` names what to measure (explicit kernels, or a kernel
description expanded through the streaming generator with an optional
variant filter), a base :class:`~repro.launcher.LauncherOptions`, and the
option axes to sweep.  A :class:`Campaign` groups sweeps against one
machine and expands them — deterministically — into :class:`Job` records
whose IDs hash the measured content (kernel text + options + machine +
mode), never the expansion order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Sequence

from repro.engine.hashing import (
    job_id_for,
    kernel_digest,
    machine_digest,
    options_digest,
)
from repro.fastpickle import fast_slots_pickling
from repro.launcher.options import LauncherOptions
from repro.machine.config import MachineConfig
from repro.spec.schema import KernelSpec

#: Execution modes a job may request, mirroring the launcher entry points.
JOB_MODES = ("sequential", "forked", "openmp", "alignment_sweep")

#: Modulus keeping derived noise seeds in a comfortable integer range.
_SEED_SPACE = 2**31 - 1


@fast_slots_pickling
@dataclass(frozen=True, slots=True)
class Job:
    """One schedulable measurement: a kernel, options, and a mode.

    ``job_id`` is a stable content hash (kernel-text digest + options
    digest + machine digest + mode) — the cache key.  ``index`` is the
    job's position in the campaign's deterministic expansion order, used
    only to order result rows.  ``tags`` carries the sweep's labels plus
    the axis values that produced this point, so consumers can group
    results without re-deriving the grid.
    """

    job_id: str
    index: int
    kernel: object
    kernel_name: str
    mode: str
    options: LauncherOptions
    tags: dict[str, object] = field(default_factory=dict)
    #: Digest of the kernel's emitted text (one component of ``job_id``),
    #: carried so workers can memoize kernel-model evaluation across jobs
    #: that sweep options over the same kernel.
    kernel_digest: str = ""

    def execution_options(self) -> LauncherOptions:
        """Options actually run: the per-job derived noise seed applied.

        The seed blends the configured base seed with the job's content
        hash, so (a) every job perturbs its measurements with an
        independent noise stream — grid neighbours do not share spikes —
        and (b) the stream depends only on the job's identity, making
        results bit-identical regardless of worker count or scheduling
        order.
        """
        derived = (self.options.noise_seed + int(self.job_id, 16)) % _SEED_SPACE
        return self.options.with_(noise_seed=derived)


@dataclass(frozen=True, slots=True)
class SweepSpec:
    """One grid of a campaign: kernels x option axes, under one mode.

    Parameters
    ----------
    kernels:
        Explicit kernel objects (anything the launcher accepts).
    spec:
        Alternatively, a kernel description: variants are generated
        lazily through :meth:`MicroCreator.stream` at expansion time.
    variant_filter:
        With ``spec``: keep only variants this predicate accepts (the
        "generated-variant filter" axis of a campaign).
    base:
        Options every point starts from.
    axes:
        Mapping of ``LauncherOptions`` field name -> values to sweep.
        Points expand as the Cartesian product in the mapping's order.
    mode:
        ``"sequential"`` | ``"forked"`` | ``"openmp"`` |
        ``"alignment_sweep"`` — which launcher entry point runs the job.
    tags:
        Free-form labels copied into every job's ``tags`` (axis values
        are merged in automatically).
    """

    kernels: tuple = ()
    spec: KernelSpec | None = None
    variant_filter: Callable[[object], bool] | None = None
    base: LauncherOptions = field(default_factory=LauncherOptions)
    axes: Mapping[str, Sequence] = field(default_factory=dict)
    mode: str = "sequential"
    tags: Mapping[str, object] = field(default_factory=dict)
    #: Creator knobs for spec expansion (``None`` = defaults).  Part of
    #: the generation-cache key: different knobs, different variants.
    creator_options: object = None

    def __post_init__(self) -> None:
        if self.mode not in JOB_MODES:
            raise ValueError(f"unknown job mode {self.mode!r}; have {JOB_MODES}")
        if not self.kernels and self.spec is None:
            raise ValueError("sweep needs kernels or a spec to expand")
        valid = set(LauncherOptions.__dataclass_fields__)
        unknown = set(self.axes) - valid
        if unknown:
            raise ValueError(f"unknown option axes: {sorted(unknown)}")

    def iter_kernels(self, gen_cache=None) -> Iterator[object]:
        """The sweep's kernels, generating lazily when given a spec.

        With a :class:`~repro.engine.gencache.GenerationCache`, spec
        expansion goes through it: a warm cache skips the pass pipeline,
        a cold one populates it.  The variant filter applies after either
        path — cache entries always hold the complete expansion.
        """
        yield from self.kernels
        if self.spec is None:
            return
        if gen_cache is not None:
            from repro.engine.generation import expand_spec_variants

            variants: Iterator[object] = iter(
                expand_spec_variants(self.spec, self.creator_options, gen_cache)
            )
        else:
            from repro.creator import MicroCreator

            variants = MicroCreator(self.creator_options).stream(self.spec)
        for variant in variants:
            if self.variant_filter is None or self.variant_filter(variant):
                yield variant

    def option_points(self) -> Iterator[dict[str, object]]:
        """Every axis combination as a field-override dict."""
        if not self.axes:
            yield {}
            return
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))


@dataclass(frozen=True, slots=True)
class Campaign:
    """A named set of sweeps against one machine."""

    name: str
    machine: MachineConfig
    sweeps: Sequence[SweepSpec]
    description: str = ""

    def jobs(self, *, gen_cache=None, defer: bool = False) -> Iterator[Job]:
        """Expand every sweep into jobs, streaming, in deterministic order.

        Kernels generated from a spec flow straight from the streaming
        pass pipeline (or from ``gen_cache`` when one is given and warm):
        the first jobs are ready to measure while later variants are
        still being expanded.

        With ``defer=True``, spec-derived jobs carry a
        :class:`~repro.engine.generation.KernelRef` instead of the
        rendered kernel — workers regenerate their slice locally.  Job
        IDs are content hashes either way, so deferral never changes a
        job's identity or its results.  Explicit kernels are always
        shipped as-is: there is nothing to regenerate them from.
        """
        machine_dig = machine_digest(self.machine)
        index = 0
        for sweep in self.sweeps:
            n_explicit = len(sweep.kernels)
            spec_dig = opts_dig = ""
            if defer and sweep.spec is not None:
                from repro.engine.generation import KernelRef
                from repro.engine.hashing import (
                    creator_options_digest,
                    spec_digest,
                )

                spec_dig = spec_digest(sweep.spec)
                opts_dig = creator_options_digest(sweep.creator_options)
            for ki, kernel in enumerate(sweep.iter_kernels(gen_cache)):
                kernel_dig = kernel_digest(kernel)
                kernel_name = getattr(kernel, "name", None) or str(kernel)
                payload: object = kernel
                if defer and ki >= n_explicit:
                    payload = KernelRef(
                        spec=sweep.spec,
                        options=sweep.creator_options,
                        spec_dig=spec_dig,
                        opts_dig=opts_dig,
                        variant_id=kernel.variant_id,  # type: ignore[attr-defined]
                        digest=kernel_dig,
                        name=kernel_name,
                    )
                for overrides in sweep.option_points():
                    options = sweep.base.with_(**overrides)
                    job_id = job_id_for(
                        kernel_dig, options_digest(options), machine_dig, sweep.mode
                    )
                    yield Job(
                        job_id=job_id,
                        index=index,
                        kernel=payload,
                        kernel_name=kernel_name,
                        mode=sweep.mode,
                        options=options,
                        tags=dict(sweep.tags, **overrides),
                        kernel_digest=kernel_dig,
                    )
                    index += 1

    def job_list(self, *, gen_cache=None, defer: bool = False) -> list[Job]:
        """The fully expanded job list (materializes the stream)."""
        return list(self.jobs(gen_cache=gen_cache, defer=defer))
