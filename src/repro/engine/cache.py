"""The disk-backed result cache: one JSONL file keyed by job ID.

Layout: ``<cache_dir>/results.jsonl``, one line per stored job::

    {"job_id": "6fb0...", "kernel": "...", "mode": "sequential",
     "measurements": [{...}, ...], "check": "9c41..."}

Append-only and crash-tolerant: every completed job is flushed
immediately, so an interrupted campaign resumes from the last finished
job.  Damage anywhere in the file — a torn trailing write, a truncated
middle line, garbage bytes from a crashed writer — is detected on load
and the damaged lines are skipped; ``check`` (a digest over the whole
record's canonical JSON) catches lines whose bytes were altered but
still parse.  The first ``put`` after loading a damaged
file *repairs* it: the file is atomically rewritten to exactly the
surviving valid records.  When a job ID appears twice the later line
wins, which is what re-measuring with ``resume=False`` produces.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path


def _record_check(record: dict) -> str:
    """Digest over the whole record (minus ``check`` itself).

    Covering every key means any parse-surviving byte alteration — a
    flipped value, a mangled field name, an injected extra key — breaks
    the digest and the line is treated as corrupt.
    """
    body = {k: v for k, v in record.items() if k != "check"}
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode(errors="replace")).hexdigest()[:16]


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/store accounting for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Measurement-dict cache over a directory; see the module docstring."""

    FILENAME = "results.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self.stats = CacheStats()
        self._records: dict[str, dict] = {}
        self._corrupt_lines = 0
        self._load()

    @staticmethod
    def _valid_record(record: object) -> bool:
        """Structural + integrity validation of one loaded record."""
        if not isinstance(record, dict):
            return False
        job_id = record.get("job_id")
        measurements = record.get("measurements")
        if not isinstance(job_id, str) or not isinstance(measurements, list):
            return False
        if not all(isinstance(m, dict) for m in measurements):
            return False
        check = record.get("check")
        if check is not None and check != _record_check(record):
            return False  # line parsed but its bytes were altered
        return True

    def _load(self) -> None:
        if not self.path.exists():
            return
        # errors="replace": damage can leave bytes that are not UTF-8;
        # the mangled line then fails JSON or checksum validation below
        # instead of killing the load.
        with self.path.open(encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self._corrupt_lines += 1
                    continue
                if self._valid_record(record):
                    self._records[record["job_id"]] = record
                else:
                    self._corrupt_lines += 1

    @property
    def corrupt_lines(self) -> int:
        """Damaged lines detected at load time (0 after a repair)."""
        return self._corrupt_lines

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def get(self, job_id: str) -> list[dict] | None:
        """Stored measurement dicts for ``job_id``, or ``None`` (counted)."""
        record = self._records.get(job_id)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record["measurements"]

    def put(
        self,
        job_id: str,
        measurements: list[dict],
        *,
        kernel: str = "",
        mode: str = "",
    ) -> None:
        """Store and immediately flush one job's measurements.

        If damaged lines were detected when the file was loaded, the
        whole file is first rewritten to the surviving valid records —
        the cache heals itself the next time it is written to.
        """
        record = {
            "job_id": job_id,
            "kernel": kernel,
            "mode": mode,
            "measurements": measurements,
        }
        record["check"] = _record_check(record)
        self._records[job_id] = record
        if self._corrupt_lines:
            self._rewrite()
        else:
            # A torn write can leave a valid final line with no newline;
            # appending straight onto it would weld two records
            # together, so restore the separator first.
            torn_tail = self.path.exists() and not self._ends_with_newline()
            with self.path.open("ab") as fh:
                if torn_tail:
                    fh.write(b"\n")
                fh.write(json.dumps(record).encode() + b"\n")
        self.stats.stores += 1

    def _ends_with_newline(self) -> bool:
        if self.path.stat().st_size == 0:
            return True
        with self.path.open("rb") as fh:
            fh.seek(-1, 2)
            return fh.read(1) == b"\n"

    def _rewrite(self) -> None:
        """Compact the file to exactly the valid records (atomic replace)."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w") as fh:
            for record in self._records.values():
                fh.write(json.dumps(record) + "\n")
        tmp.replace(self.path)
        self._corrupt_lines = 0

    def clear(self) -> None:
        """Drop every stored result (and the file)."""
        self._records.clear()
        self._corrupt_lines = 0
        if self.path.exists():
            self.path.unlink()
