"""The disk-backed result cache: one JSONL file keyed by job ID.

Layout: ``<cache_dir>/results.jsonl``, one line per stored job::

    {"job_id": "6fb0...", "kernel": "...", "mode": "sequential",
     "measurements": [{...}, ...], "check": "9c41..."}

Append-only and crash-tolerant: every completed job is flushed
immediately, so an interrupted campaign resumes from the last finished
job.  Damage anywhere in the file — a torn trailing write, a truncated
middle line, garbage bytes from a crashed writer — is detected on load
and the damaged lines are skipped; ``check`` (a digest over the whole
record's canonical JSON) catches lines whose bytes were altered but
still parse.  The first ``put`` after loading a damaged
file *repairs* it: the file is atomically rewritten to exactly the
surviving valid records.  When a job ID appears twice the later line
wins, which is what re-measuring with ``resume=False`` produces.

The same storage discipline backs the generation cache
(:mod:`repro.engine.gencache`); the shared machinery lives in
:class:`JsonlCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path


def record_check(record: dict) -> str:
    """Digest over the whole record (minus ``check`` itself).

    Covering every key means any parse-surviving byte alteration — a
    flipped value, a mangled field name, an injected extra key — breaks
    the digest and the line is treated as corrupt.
    """
    body = {k: v for k, v in record.items() if k != "check"}
    canonical = json.dumps(body, sort_keys=True)
    return hashlib.sha256(canonical.encode(errors="replace")).hexdigest()[:16]


# Backwards-compatible alias (pre-gencache name).
_record_check = record_check


def check_passes(record: dict) -> bool:
    """Checksum validation shared by every record shape.

    Records written before checksums existed carry no ``check`` field and
    are accepted as-is; anything else must digest to its stored value.
    """
    check = record.get("check")
    return check is None or check == record_check(record)


#: Exactly the keys :meth:`ResultCache.put` (and the sharded backend)
#: writes.  Closed-world: damage that mangles the ``check`` key itself
#: yields a parseable record with an unknown key and *no* checksum —
#: indistinguishable from a legacy record by ``check_passes`` alone.
_RESULT_RECORD_KEYS = frozenset(
    {"job_id", "kernel", "mode", "measurements", "check"}
)


def valid_result_record(record: object) -> bool:
    """Structural + integrity validation of one result-cache record.

    Shared by every result-store backend (:class:`ResultCache` and the
    sharded store in :mod:`repro.engine.store`): the record shape is the
    storage contract, not a property of any one file layout.
    """
    if not isinstance(record, dict):
        return False
    if not set(record) <= _RESULT_RECORD_KEYS:
        return False
    job_id = record.get("job_id")
    measurements = record.get("measurements")
    if not isinstance(job_id, str) or not isinstance(measurements, list):
        return False
    if not all(isinstance(m, dict) for m in measurements):
        return False
    return check_passes(record)


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/store accounting for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class JsonlCache:
    """Append-only JSONL store with checksums and self-repair.

    Subclasses set :attr:`FILENAME` and :attr:`KEY` (the record field
    holding the primary key) and implement :meth:`_valid_record` for
    their payload shape.  The base class owns loading (damaged lines
    skipped and counted), checksumming, atomic repair on the next write,
    and torn-tail handling.

    The trailing-newline state of the file is tracked *in memory*: it is
    probed once when the file is loaded (a torn write can leave a valid
    final line with no newline) and maintained across appends, so a
    store costs one append — not a stat+open+seek probe per call.  The
    cache assumes it is the file's only writer for its lifetime, which
    the engine guarantees (workers never write caches).
    """

    FILENAME = "cache.jsonl"
    KEY = "key"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self.stats = CacheStats()
        self._records: dict[str, dict] = {}
        self._corrupt_lines = 0
        # True when the next append must first restore a missing trailing
        # newline (one probe per lifetime, at load).
        self._torn_tail = False
        self._load()

    def _valid_record(self, record: object) -> bool:
        """Structural + integrity validation of one loaded record."""
        raise NotImplementedError

    def _check_passes(self, record: dict) -> bool:
        """Checksum validation shared by every record shape."""
        return check_passes(record)

    def _load(self) -> None:
        if not self.path.exists():
            return
        # errors="replace": damage can leave bytes that are not UTF-8;
        # the mangled line then fails JSON or checksum validation below
        # instead of killing the load.
        with self.path.open(encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self._corrupt_lines += 1
                    continue
                if self._valid_record(record):
                    self._records[record[self.KEY]] = record
                else:
                    self._corrupt_lines += 1
        self._torn_tail = not self._ends_with_newline()

    @property
    def corrupt_lines(self) -> int:
        """Damaged lines detected at load time (0 after a repair)."""
        return self._corrupt_lines

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def _store(self, record: dict) -> None:
        """Checksum, remember, and flush one record.

        If damaged lines were detected when the file was loaded, the
        whole file is first rewritten to the surviving valid records —
        the cache heals itself the next time it is written to.
        """
        record["check"] = record_check(record)
        self._records[record[self.KEY]] = record
        if self._corrupt_lines:
            self._rewrite()
        else:
            # A torn write can leave a valid final line with no newline;
            # appending straight onto it would weld two records
            # together, so restore the separator first.
            with self.path.open("ab") as fh:
                if self._torn_tail:
                    fh.write(b"\n")
                fh.write(json.dumps(record).encode() + b"\n")
            self._torn_tail = False
        self.stats.stores += 1

    def _store_many(self, records: list[dict]) -> None:
        """Checksum and append a batch of records under one open+flush.

        Same durability point as ``_store`` called in a loop — the batch
        is on disk when this returns — but one file open and one flush
        for the whole batch instead of per record, which is what lets
        the scheduler persist a chunk's rows at its boundary without
        paying per-job I/O.
        """
        if not records:
            return
        for record in records:
            record["check"] = record_check(record)
            self._records[record[self.KEY]] = record
        if self._corrupt_lines:
            self._rewrite()
        else:
            with self.path.open("ab") as fh:
                if self._torn_tail:
                    fh.write(b"\n")
                for record in records:
                    fh.write(json.dumps(record).encode() + b"\n")
            self._torn_tail = False
        self.stats.stores += len(records)

    def _ends_with_newline(self) -> bool:
        if self.path.stat().st_size == 0:
            return True
        with self.path.open("rb") as fh:
            fh.seek(-1, 2)
            return fh.read(1) == b"\n"

    def _rewrite(self) -> None:
        """Compact the file to exactly the valid records (atomic replace).

        The replacement is made durable *before* it replaces the damaged
        file: the tmp file is flushed and fsynced so a crash mid-repair
        can never swap in a half-written file that the next load would
        count as fresh corruption.
        """
        tmp = self.path.with_name(self.path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            for record in self._records.values():
                fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.path)
        self._corrupt_lines = 0
        self._torn_tail = False

    def clear(self) -> None:
        """Drop every stored record (and the file).

        Accounting resets with the contents: hit/miss/store counts from
        before the clear would otherwise leak into post-clear rates.
        """
        self._records.clear()
        self.stats = CacheStats()
        self._corrupt_lines = 0
        self._torn_tail = False
        if self.path.exists():
            self.path.unlink()


class ResultCache(JsonlCache):
    """Measurement-dict cache over a directory; see the module docstring."""

    FILENAME = "results.jsonl"
    KEY = "job_id"

    def _valid_record(self, record: object) -> bool:
        return valid_result_record(record)

    def get(self, job_id: str) -> list[dict] | None:
        """Stored measurement dicts for ``job_id``, or ``None`` (counted).

        Returns a fresh list of fresh dicts: the in-memory record is what
        a later self-repair rewrites to disk (under a freshly computed
        checksum), so handing callers the live internals would let an
        innocent mutation persist as silently corrupted measurements.
        """
        record = self._records.get(job_id)
        if record is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return [dict(m) for m in record["measurements"]]

    def put(
        self,
        job_id: str,
        measurements: list[dict],
        *,
        kernel: str = "",
        mode: str = "",
    ) -> None:
        """Store and immediately flush one job's measurements."""
        self._store(
            {
                "job_id": job_id,
                "kernel": kernel,
                "mode": mode,
                "measurements": measurements,
            }
        )

    def put_many(
        self, entries: list[tuple[str, list[dict], str, str]]
    ) -> None:
        """Store a chunk's results — ``(job_id, measurements, kernel,
        mode)`` tuples — in one batched append (see ``_store_many``)."""
        self._store_many(
            [
                {
                    "job_id": job_id,
                    "kernel": kernel,
                    "mode": mode,
                    "measurements": measurements,
                }
                for job_id, measurements, kernel, mode in entries
            ]
        )
