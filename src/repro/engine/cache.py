"""The disk-backed result cache: one JSONL file keyed by job ID.

Layout: ``<cache_dir>/results.jsonl``, one line per stored job::

    {"job_id": "6fb0...", "kernel": "...", "mode": "sequential",
     "measurements": [{...}, ...]}

Append-only and crash-tolerant: every completed job is flushed
immediately, so an interrupted campaign resumes from the last finished
job; a malformed trailing line (torn write) is skipped on load.  When a
job ID appears twice the later line wins, which is what re-measuring
with ``resume=False`` produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/store accounting for one cache lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Measurement-dict cache over a directory; see the module docstring."""

    FILENAME = "results.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / self.FILENAME
        self.stats = CacheStats()
        self._index: dict[str, list[dict]] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing write from an interrupted run
                job_id = record.get("job_id")
                measurements = record.get("measurements")
                if isinstance(job_id, str) and isinstance(measurements, list):
                    self._index[job_id] = measurements

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._index

    def get(self, job_id: str) -> list[dict] | None:
        """Stored measurement dicts for ``job_id``, or ``None`` (counted)."""
        found = self._index.get(job_id)
        if found is None:
            self.stats.misses += 1
        else:
            self.stats.hits += 1
        return found

    def put(
        self,
        job_id: str,
        measurements: list[dict],
        *,
        kernel: str = "",
        mode: str = "",
    ) -> None:
        """Store and immediately flush one job's measurements."""
        record = {
            "job_id": job_id,
            "kernel": kernel,
            "mode": mode,
            "measurements": measurements,
        }
        with self.path.open("a") as fh:
            fh.write(json.dumps(record) + "\n")
        self._index[job_id] = measurements
        self.stats.stores += 1

    def clear(self) -> None:
        """Drop every stored result (and the file)."""
        self._index.clear()
        if self.path.exists():
            self.path.unlink()
