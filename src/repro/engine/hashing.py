"""Content digests for campaign jobs.

A job's identity is the content it measures, not the order it was created
in: the kernel's emitted text, the launcher options, the machine
description, and the execution mode.  Hashing those gives every job a
stable ID that survives process restarts, re-ordered sweeps, and adding
or removing unrelated jobs — the property the result cache and the
resume path rely on.
"""

from __future__ import annotations

import hashlib
import json
import weakref
from pathlib import Path

from repro.isa.instructions import AsmProgram
from repro.isa.writer import write_program
from repro.machine.config import MachineConfig
from repro.machine.serialize import machine_to_dict
from repro.spec.schema import KernelSpec


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace (digest input)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def spec_digest(spec: KernelSpec) -> str:
    """Digest of a kernel description (its canonical XML form)."""
    from repro.spec.xmlio import write_kernel_spec

    return _sha(write_kernel_spec(spec))


#: Fallback digest memo for kernel objects that are weak-referenceable
#: but cannot grow attributes (no ``_digest_memo`` slot, no ``__dict__``).
_DIGEST_MEMO: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()


def kernel_digest(kernel: object) -> str:
    """Digest of a measurable kernel (its emitted program text).

    Accepts every input form the launcher accepts: a
    :class:`~repro.creator.GeneratedKernel`, an ``AsmProgram``, a
    ``SimKernel``, source text, or a path to a source file.  Two kernels
    with identical emitted text hash identically — exactly the dedup rule
    the code-generation pass already applies.

    The digest is memoized on the kernel *object* (a ``_digest_memo``
    attribute when the object allows it, a weak-keyed side table
    otherwise), so a sweep hashing the same kernel once per option point
    emits and hashes its text only once.  Text and path inputs are never
    memoized: a path's content can change, and hashing a string is the
    memo lookup.
    """
    if isinstance(kernel, (str, Path)):
        return _sha(_kernel_text(kernel))
    memo = getattr(kernel, "_digest_memo", None)
    if isinstance(memo, str):
        return memo
    try:
        memo = _DIGEST_MEMO.get(kernel)
    except TypeError:  # not weak-referenceable
        memo = None
    if memo is not None:
        return memo
    digest = _sha(_kernel_text(kernel))
    try:
        kernel._digest_memo = digest  # type: ignore[attr-defined]
    except (AttributeError, TypeError):
        try:
            _DIGEST_MEMO[kernel] = digest
        except TypeError:
            pass  # frozen slots, no weakref: recompute next time
    return digest


def _kernel_text(kernel: object) -> str:
    if isinstance(kernel, AsmProgram):
        return write_program(kernel, full_file=True)
    asm_text = getattr(kernel, "asm_text", None)
    if callable(asm_text):  # GeneratedKernel
        return asm_text(full_file=True)
    program = getattr(kernel, "program", None)
    if isinstance(program, AsmProgram):  # SimKernel / CompiledKernel
        return write_program(program, full_file=True)
    if isinstance(kernel, Path):
        return kernel.read_text()
    if isinstance(kernel, str):
        if "\n" not in kernel and kernel.endswith((".s", ".c", ".f", ".f90")):
            return Path(kernel).read_text()
        return kernel
    raise TypeError(
        f"cannot digest {type(kernel).__name__}; pass a GeneratedKernel, "
        "AsmProgram, SimKernel, source text, or a source-file path"
    )


def creator_options_digest(options: object) -> str:
    """Digest of a :class:`~repro.creator.CreatorOptions` value (or ``None``).

    One half of the generation-cache key: the same spec expanded under
    different creator knobs (random selection, seed, limits) yields a
    different variant set and must not share cache entries.  ``None``
    digests like the default options, which is what ``MicroCreator()``
    runs with.
    """
    import dataclasses

    from repro.creator.pass_manager import CreatorOptions

    payload = dataclasses.asdict(options if options is not None else CreatorOptions())
    return _sha(canonical_json(payload))


def options_digest(options: object) -> str:
    """Digest of a :class:`~repro.launcher.LauncherOptions` value."""
    from repro.engine.serialize import options_to_dict

    return _sha(canonical_json(options_to_dict(options)))


def machine_digest(config: MachineConfig) -> str:
    """Digest of a machine description (its serialized dict form)."""
    return _sha(canonical_json(machine_to_dict(config)))


def job_id_for(
    kernel_dig: str, options_dig: str, machine_dig: str, mode: str
) -> str:
    """Stable 16-hex-digit job ID from the component digests."""
    return _sha("|".join((kernel_dig, options_dig, machine_dig, mode)))[:16]
