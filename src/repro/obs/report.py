"""Human-readable summary of a trace and/or metrics export.

Turns the raw JSONL/JSON files written by ``--trace`` and
``--metrics-out`` into the questions an operator actually asks: where
did the time go (slowest spans, per-name totals), did the cache work
(hit rate), and how rough was the ride (retry/timeout/quarantine
counts, job-duration percentiles).  Every formatter is total-safe: an
empty trace, a metrics file with zero lookups, or a run where every job
was quarantined renders as an honest report, never a division by zero.

Shell usage::

    python -m repro.obs.report --trace trace.jsonl --metrics metrics.json
"""

from __future__ import annotations

import argparse
import math
import sys
from collections import defaultdict

from repro.obs.metrics import load_metrics
from repro.obs.trace import load_trace


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:,.2f} ms"


def _ratio(numerator: float, denominator: float) -> float:
    """A rate that is NaN — not a crash — when nothing was counted."""
    return numerator / denominator if denominator else float("nan")


def _fmt_rate(value: float) -> str:
    return "n/a" if math.isnan(value) else f"{value:.1%}"


def summarize_spans(records: list[dict], *, top: int = 10) -> list[str]:
    """Top-N slowest spans plus per-name aggregates."""
    lines = [f"spans: {len(records)}"]
    if not records:
        return lines + ["  (no spans recorded)"]
    slowest = sorted(records, key=lambda r: r.get("duration_s", 0.0), reverse=True)
    lines.append(f"top {min(top, len(slowest))} slowest:")
    for record in slowest[:top]:
        attrs = record.get("attrs") or {}
        detail = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"  {_fmt_ms(record.get('duration_s', 0.0)):>14}  "
            f"{record.get('name', '?')}" + (f"  [{detail}]" if detail else "")
        )
    totals: dict[str, list[float]] = defaultdict(list)
    for record in records:
        totals[record.get("name", "?")].append(record.get("duration_s", 0.0))
    lines.append("by span name (count, total, mean):")
    ranked = sorted(totals.items(), key=lambda kv: sum(kv[1]), reverse=True)
    for name, durations in ranked:
        total = sum(durations)
        lines.append(
            f"  {name:<28} x{len(durations):<5} {_fmt_ms(total):>14}  "
            f"mean {_fmt_ms(total / len(durations))}"
        )
    return lines


def summarize_metrics(snapshot: dict) -> list[str]:
    """Cache hit rate, failure-path counters, and histogram summaries."""
    counters: dict = snapshot.get("counters") or {}
    histograms: dict = snapshot.get("histograms") or {}
    gauges: dict = snapshot.get("gauges") or {}
    lines: list[str] = []

    hits = counters.get("engine.cache.hits", 0)
    misses = counters.get("engine.cache.misses", 0)
    lines.append(
        f"cache: {hits} hits / {misses} misses "
        f"(hit rate {_fmt_rate(_ratio(hits, hits + misses))})"
    )
    retries = counters.get("engine.job.retries", 0)
    timeouts = counters.get("engine.job.timeouts", 0)
    quarantined = counters.get("engine.job.quarantined", 0)
    if retries or timeouts or quarantined:
        lines.append(
            f"failures: {retries} retries, {timeouts} timeouts, "
            f"{quarantined} quarantined"
        )
    shown = {
        "engine.cache.hits",
        "engine.cache.misses",
        "engine.job.retries",
        "engine.job.timeouts",
        "engine.job.quarantined",
    }
    other = {k: v for k, v in counters.items() if k not in shown}
    if other:
        lines.append("counters:")
        lines.extend(f"  {name:<32} {value}" for name, value in sorted(other.items()))
    if gauges:
        lines.append("gauges:")
        lines.extend(f"  {name:<32} {value:g}" for name, value in sorted(gauges.items()))
    for name, data in sorted(histograms.items()):
        lines.extend(_histogram_lines(name, data))
    return lines


def _histogram_lines(name: str, data: dict) -> list[str]:
    count = data.get("count", 0)
    if not count:
        return [f"{name}: no observations"]
    total = data.get("total", 0.0)
    mean = _ratio(total, count)
    head = (
        f"{name}: n={count} mean={mean:.3g} "
        f"min={data.get('min'):.3g} max={data.get('max'):.3g}"
    )
    bounds = data.get("bounds") or []
    bucket_counts = data.get("counts") or []
    bars = []
    peak = max(bucket_counts) if bucket_counts else 0
    for i, n in enumerate(bucket_counts):
        if not n:
            continue
        edge = f"<= {bounds[i]:g}" if i < len(bounds) else f"> {bounds[-1]:g}"
        bar = "#" * max(1, round(n / peak * 20)) if peak else ""
        bars.append(f"  {edge:>12}  {n:>6}  {bar}")
    return [head, *bars]


def render(
    trace_records: list[dict] | None = None,
    metrics_snapshot: dict | None = None,
    *,
    top: int = 10,
) -> str:
    """The full text report for whichever inputs are present."""
    sections: list[str] = ["== observability report =="]
    if trace_records is not None:
        sections.extend(summarize_spans(trace_records, top=top))
    if metrics_snapshot is not None:
        sections.extend(summarize_metrics(metrics_snapshot))
    if trace_records is None and metrics_snapshot is None:
        sections.append("(nothing to report: pass --trace and/or --metrics)")
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a --trace JSONL and/or --metrics-out JSON export.",
    )
    parser.add_argument("--trace", metavar="FILE", default=None)
    parser.add_argument("--metrics", metavar="FILE", default=None)
    parser.add_argument("--top", type=int, default=10, help="slowest spans to list")
    args = parser.parse_args(argv)
    try:
        records = load_trace(args.trace) if args.trace else None
        snapshot = load_metrics(args.metrics) if args.metrics else None
    except (OSError, ValueError) as exc:
        print(f"repro.obs.report: {exc}", file=sys.stderr)
        return 2
    try:
        print(render(records, snapshot, top=args.top))
    except BrokenPipeError:
        # Downstream closed early (`report ... | head`); not an error.
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
