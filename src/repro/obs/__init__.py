"""Observability: tracing spans + metrics for the whole pipeline.

The paper's thesis is measurement you can trust; this package applies it
to the tools themselves.  When enabled, the creator's pass pipeline, the
campaign engine's scheduler, and the launcher's measurement core emit
hierarchical :mod:`~repro.obs.trace` spans and
:mod:`~repro.obs.metrics` instruments, exportable as JSONL/JSON
(``--trace`` / ``--metrics-out`` on both CLIs) and summarized by
``python -m repro.obs.report``.

**Off by default, and nearly free when off.**  Every helper here starts
with one module-global check; a disabled ``span()`` returns a shared
no-op singleton.  ``benchmarks/test_obs_overhead.py`` asserts the
disabled path stays within noise of uninstrumented code — the
instrumentation sites in hot loops rely on that.

Usage::

    from repro import obs

    session = obs.enable()
    with obs.span("engine.dispatch", chunks=4):
        obs.count("engine.cache.hits")
        obs.observe("engine.job.duration_ms", 12.5)
    session.tracer.write_jsonl("trace.jsonl")
    session.metrics.write_json("metrics.json")
    obs.disable()

The span/metric naming conventions and export schemas live in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    DURATION_MS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    load_metrics,
)
from repro.obs.trace import NOOP_SPAN, Span, Tracer, load_trace


class ObsSession:
    """One enabled observability window: a tracer plus a registry."""

    __slots__ = ("tracer", "metrics")

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()


#: The active session, or ``None`` (the default — observability is off).
#: A single global keeps the disabled check to one attribute lookup.
_SESSION: ObsSession | None = None


def enable() -> ObsSession:
    """Turn observability on; returns the (new or existing) session.

    Idempotent: enabling twice keeps the first session so nested users
    (a CLI enabling around an already-instrumented library call) share
    one trace and one registry.
    """
    global _SESSION
    if _SESSION is None:
        _SESSION = ObsSession()
    return _SESSION


def disable() -> None:
    """Turn observability off and drop the session."""
    global _SESSION
    _SESSION = None


def is_enabled() -> bool:
    return _SESSION is not None


def session() -> ObsSession | None:
    """The active session (``None`` when disabled)."""
    return _SESSION


# -- fast-path emission helpers ---------------------------------------------
#
# Each helper is safe to call unconditionally from hot code: disabled,
# it is one global read and a branch.


def span(name: str, *, metric: str | None = None, **attrs: object):
    """Open a span (context manager); a shared no-op when disabled.

    ``metric`` optionally names a duration histogram that receives the
    span's elapsed milliseconds when it closes.
    """
    s = _SESSION
    if s is None:
        return NOOP_SPAN
    return s.tracer.span(name, metric=metric, **attrs)


def add_span(name: str, start_s: float, duration_s: float, **attrs: object) -> None:
    """Record a pre-timed interval (see :meth:`Tracer.add`)."""
    s = _SESSION
    if s is not None:
        s.tracer.add(name, start_s, duration_s, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a counter."""
    s = _SESSION
    if s is not None:
        s.metrics.counter(name).inc(n)


def gauge(name: str, value: float) -> None:
    """Set a gauge."""
    s = _SESSION
    if s is not None:
        s.metrics.gauge(name).set(value)


def observe(
    name: str, value: float, bounds: tuple[float, ...] = DURATION_MS_BUCKETS
) -> None:
    """Record one histogram observation (``bounds`` apply on first use)."""
    s = _SESSION
    if s is not None:
        s.metrics.histogram(name, bounds).observe(value)


def metrics_snapshot() -> dict:
    """The registry's snapshot, or ``{}`` when disabled."""
    s = _SESSION
    return s.metrics.snapshot() if s is not None else {}


__all__ = [
    "Counter",
    "DURATION_MS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "ObsSession",
    "SIZE_BUCKETS",
    "Span",
    "Tracer",
    "add_span",
    "count",
    "disable",
    "enable",
    "gauge",
    "is_enabled",
    "load_metrics",
    "load_trace",
    "metrics_snapshot",
    "observe",
    "session",
    "span",
]
