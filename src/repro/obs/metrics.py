"""The metrics registry: counters, gauges, fixed-bucket histograms.

Names are dotted paths owned by the layer that emits them
(``engine.cache.hits``, ``creator.variants.generated``,
``launcher.batch.size``; see ``docs/OBSERVABILITY.md`` for the full
catalogue).  Histograms use fixed bucket boundaries chosen at
registration, Prometheus-style: ``counts[i]`` holds observations with
``value <= bounds[i]``, plus one overflow bucket — cheap to merge and
stable to serialize.

Everything snapshots to plain JSON-safe dicts (:meth:`MetricsRegistry.
snapshot` / :meth:`write_json`), which is also what
:class:`~repro.engine.runner.RunStats` carries back from a campaign.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from pathlib import Path

#: Default boundaries for duration-style histograms, in milliseconds.
DURATION_MS_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
)

#: Default boundaries for size/count-style histograms (powers of two).
SIZE_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Observation counts over fixed bucket boundaries.

    ``bounds`` are inclusive upper edges in ascending order; an
    observation lands in the first bucket whose edge is >= the value,
    or the overflow bucket past the last edge.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: tuple[float, ...]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram bounds must be ascending, got {bounds!r}")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """NaN for an empty histogram — there is no average of nothing."""
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) from the bucket edges.

        Returns the upper edge of the bucket containing the q-th
        observation (``max`` for the overflow bucket), or NaN when the
        histogram is empty — never a division by zero.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return float("nan")
        rank = max(1, round(q / 100.0 * self.count))
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= rank:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max  # pragma: no cover - rank <= count by construction

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Create-on-first-use registry; all mutation under one lock.

    The instrument objects themselves are lock-free (single attribute
    bumps); the lock only guards the name -> instrument maps, so the
    enabled hot path is a dict ``get`` plus an integer add.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DURATION_MS_BUCKETS
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(name, Histogram(name, bounds))
        return h

    # -- snapshot ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe view of every instrument (counters sorted by name)."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.to_dict()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path


def load_metrics(path: str | Path) -> dict:
    """Read a :meth:`MetricsRegistry.write_json` file back as a snapshot."""
    return json.loads(Path(path).read_text())
