"""Hierarchical tracing spans: where a campaign's wall-clock went.

A :class:`Tracer` records :class:`Span` intervals — named, attributed,
parent/child nested — on a monotonic clock (``time.perf_counter``), with
one wall-clock anchor per tracer so consumers can place the whole trace
in calendar time.  Nesting is per thread: each thread keeps its own span
stack, so a span opened on the engine's watchdog thread becomes a root
there instead of corrupting the main thread's hierarchy.

Spans are context managers::

    with tracer.span("pass:unroll", variants=12) as sp:
        ...
        sp.set(variants_out=96)

and export as JSON lines (:meth:`Tracer.write_jsonl`), one span per
line, children guaranteed to lie inside their parent's interval — the
property the integration tests assert.  See ``docs/OBSERVABILITY.md``
for the schema.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path


class Span:
    """One timed interval; records itself on the tracer when it closes."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "attrs",
        "metric",
        "_finished",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: int | None,
        attrs: dict[str, object],
        metric: str | None = None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self.parent_id = parent_id
        self.attrs = attrs
        self.metric = metric
        self.start_s = 0.0
        self.duration_s = 0.0
        self._finished = False

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.tracer._push(self)
        self.start_s = time.perf_counter() - self.tracer.epoch_s
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = (time.perf_counter() - self.tracer.epoch_s) - self.start_s
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._pop(self)
        self._finished = True
        self.tracer._record(self)
        return False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_s": round(self.start_s, 9),
            "duration_s": round(self.duration_s, 9),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._finished else "open"
        return f"<Span {self.name!r} #{self.span_id} {state}>"


class Tracer:
    """Collects spans from any thread; thread-local nesting stacks."""

    def __init__(self) -> None:
        #: Monotonic zero point: every span's ``start_s`` is relative to it.
        self.epoch_s = time.perf_counter()
        #: Wall-clock time (seconds since the Unix epoch) at ``epoch_s``,
        #: so a JSONL consumer can anchor the monotonic timeline.
        self.epoch_wall = time.time()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self._records: list[dict] = []

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, *, metric: str | None = None, **attrs: object) -> Span:
        """Open a span; nests under the current thread's innermost span."""
        return Span(self, name, self._current_id(), attrs, metric)

    def add(
        self,
        name: str,
        start_s: float,
        duration_s: float,
        **attrs: object,
    ) -> None:
        """Record an already-timed interval (no context manager).

        For intervals measured outside a ``with`` block — e.g. a chunk's
        dispatch-to-completion time observed from the scheduler's event
        loop.  ``start_s`` is absolute ``time.perf_counter()`` time; it
        is rebased onto the tracer's epoch.  The span parents under the
        calling thread's current span.
        """
        span = Span(self, name, self._current_id(), attrs)
        span.start_s = start_s - self.epoch_s
        span.duration_s = duration_s
        span._finished = True
        self._record(span)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - mismatched exit ordering
            stack.remove(span)

    def _record(self, span: Span) -> None:
        record = span.to_dict()
        with self._lock:
            self._records.append(record)
        if span.metric is not None:
            from repro import obs

            obs.observe(span.metric, span.duration_s * 1e3)

    # -- export --------------------------------------------------------------

    @property
    def records(self) -> list[dict]:
        """Finished spans, in completion order (children before parents)."""
        with self._lock:
            return list(self._records)

    def write_jsonl(self, path: str | Path) -> Path:
        """One JSON object per line: a meta header, then one span each."""
        path = Path(path)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        header = {
            "meta": {
                "format": "repro-trace-v1",
                "epoch_wall": self.epoch_wall,
                "spans": len(self._records),
            }
        }
        with path.open("w") as fh:
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for record in self.records:
                fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        return path


def load_trace(path: str | Path) -> list[dict]:
    """Read a trace JSONL file back into span dicts (header dropped)."""
    records = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if "meta" in record and "name" not in record:
                continue
            records.append(record)
    return records


class _NoopSpan:
    """The disabled fast path: every operation is a constant no-op.

    A single shared instance stands in for every span while observability
    is off, so ``with obs.span(...)`` costs one module-global check plus
    two trivial method calls — verified to sit within noise of no
    instrumentation by ``benchmarks/test_obs_overhead.py``.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: object) -> "_NoopSpan":
        return self


NOOP_SPAN = _NoopSpan()
