"""The ``microlauncher`` command-line tool.

Measures a kernel on a simulated machine::

    microlauncher kernel.s --machine nehalem-2s --array-bytes 65536
    microlauncher kernel.s --fork 8
    microlauncher kernel.s --openmp 4 --trip 6000000
    microlauncher kernel.s --alignment-sweep --csv sweep.csv
    microlauncher kernel.s --jobs 4 --cache-dir .cache --csv out.csv
    microlauncher --exhibit fig14 --jobs 4   # regenerate a paper exhibit
    microlauncher --list-exhibits

``--jobs``, ``--cache-dir``, ``--job-timeout`` and ``--output jsonl``
route the run through the campaign engine: results are bit-identical to
an inline run, cached by content hash, and resumable (``--no-resume``
forces re-measurement).  Failing jobs retry up to ``--max-retries``
times and hung jobs are bounded by ``--job-timeout``; a job that keeps
failing is quarantined — the run completes degraded and exits 3.

``--trace FILE`` and ``--metrics-out FILE`` turn on the observability
layer for the run: a JSONL span trace of where the time went and a JSON
metrics snapshot (cache traffic, retries, histograms), both readable by
``python -m repro.obs.report``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import available_experiments, run_experiment
from repro.launcher import LauncherOptions, MicroLauncher
from repro.machine import PRESETS, preset


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="microlauncher",
        description="Execute a microbenchmark kernel in a stable, simulated "
        "environment and report cycles per iteration.",
    )
    parser.add_argument("kernel", nargs="?", help="assembly (.s) kernel file")
    parser.add_argument(
        "--machine",
        choices=sorted(PRESETS),
        default="nehalem-2s",
        help="machine preset (default: nehalem-2s)",
    )
    parser.add_argument(
        "--machine-file",
        metavar="JSON",
        default=None,
        help="custom machine description (overrides --machine)",
    )
    parser.add_argument(
        "--machine-overlay",
        metavar="JSON",
        default=None,
        help="apply a machine-config overlay (e.g. one derived by "
        "`python -m repro.characterize run`) on top of the selected "
        "machine",
    )
    parser.add_argument("--function", default=None, help="kernel function name")
    parser.add_argument(
        "--nbvectors", type=int, default=None, help="number of arrays the kernel needs"
    )
    parser.add_argument(
        "--array-bytes", type=int, default=16 * 1024, help="bytes per array"
    )
    parser.add_argument("--trip", type=int, default=4096, help="trip count n")
    parser.add_argument("--repetitions", type=int, default=32, help="inner-loop calls")
    parser.add_argument("--experiments", type=int, default=8, help="outer-loop runs")
    parser.add_argument(
        "--rciw-target",
        type=float,
        default=None,
        metavar="W",
        help="adaptive stopping: batch experiments until the bootstrapped "
        "relative CI width of cycles/iteration is <= W (e.g. 0.02) or "
        "--max-experiments is reached; unset/0 keeps the fixed "
        "--experiments count",
    )
    parser.add_argument(
        "--min-experiments",
        type=int,
        default=None,
        metavar="N",
        help="adaptive floor: experiments run before the first "
        "convergence check (default: 3)",
    )
    parser.add_argument(
        "--max-experiments",
        type=int,
        default=None,
        metavar="N",
        help="adaptive cap: a configuration that never converges stops "
        "here with converged=False (default: 64)",
    )
    parser.add_argument(
        "--stopping-batch",
        type=int,
        default=None,
        metavar="K",
        help="experiments added per adaptive round after the floor "
        "(default: 8)",
    )
    parser.add_argument("--core", type=int, default=0, help="core to pin to")
    parser.add_argument("--no-pin", action="store_true", help="disable core pinning")
    parser.add_argument(
        "--no-warmup", action="store_true", help="skip the cache-heating call"
    )
    parser.add_argument(
        "--no-overhead-subtraction",
        action="store_true",
        help="keep the call overhead in the measurement",
    )
    parser.add_argument(
        "--frequency", type=float, default=None, help="core frequency in GHz (DVFS)"
    )
    parser.add_argument(
        "--fork", type=int, default=None, metavar="N", help="fork N pinned processes"
    )
    parser.add_argument(
        "--openmp", type=int, default=None, metavar="T", help="run with T OpenMP threads"
    )
    parser.add_argument(
        "--alignment-sweep", action="store_true", help="sweep array alignments"
    )
    parser.add_argument(
        "--energy",
        action="store_true",
        help="also report the energy model's per-iteration estimate",
    )
    parser.add_argument("--csv", default=None, help="append results to this CSV file")
    parser.add_argument(
        "--csv-full", action="store_true", help="one CSV row per experiment"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for campaign execution (default: 1, inline)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help="jobs per worker batch with --jobs (default: auto-sized); "
        "results are byte-identical for every chunking",
    )
    parser.add_argument(
        "--chunk-policy",
        choices=("auto", "static", "dynamic"),
        default="auto",
        help="how worker chunks are sized with --jobs: 'dynamic' "
        "(the 'auto' default) seeds small and re-sizes from measured "
        "per-job durations to hit --chunk-target-ms per chunk; "
        "'static' uses fixed --chunk-size batches; results are "
        "byte-identical for every policy",
    )
    parser.add_argument(
        "--chunk-target-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-time each dynamic chunk aims for (default: 250)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="cache measurements by content hash; re-runs skip finished jobs",
    )
    parser.add_argument(
        "--gen-cache",
        metavar="DIR",
        default=None,
        help="persist generated variants for spec-backed sweeps "
        "(e.g. --exhibit runs): repeated campaigns skip the generation "
        "pipeline entirely",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached results (--no-resume re-measures everything)",
    )
    parser.add_argument(
        "--store-format",
        choices=("jsonl", "sharded"),
        default="sharded",
        help="on-disk layout for --cache-dir/--gen-cache: 'sharded' "
        "(default) uses indexed fixed-size segments with columnar "
        "sidecars and migrates a legacy JSONL cache on first open; "
        "'jsonl' keeps the single-file layout",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="failed attempts a job may retry before it is quarantined "
        "(default: 2); a quarantined job drops its rows and exits 3",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per job; a chunk past its budget is "
        "killed and its jobs retried (default: no timeout)",
    )
    parser.add_argument(
        "--output",
        choices=("csv", "jsonl"),
        default="csv",
        help="result file format for --csv when running through the engine",
    )
    parser.add_argument(
        "--exhibit",
        default=None,
        help="regenerate a paper exhibit (fig03..fig18, table1, table2, ...)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="smaller sweeps for --exhibit"
    )
    parser.add_argument(
        "--save-data",
        metavar="DIR",
        default=None,
        help="with --exhibit: also write the series/tables as CSV files",
    )
    parser.add_argument(
        "--list-exhibits", action="store_true", help="list available exhibits"
    )
    parser.add_argument(
        "--report",
        metavar="OUT.md",
        default=None,
        help="regenerate every exhibit and write a markdown report",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the run (engine scheduling, "
        "launcher batches); summarize with `python -m repro.obs.report`",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write a JSON metrics snapshot (cache traffic, retries, "
        "job-duration histograms)",
    )
    return parser


def _run_engine(args, machine, options, path: Path) -> int:
    """Route a single-kernel run through the campaign engine."""
    from repro.engine import Campaign, SweepSpec, run_campaign

    if options.csv_path:
        # The engine owns output; keep job IDs (cache keys) independent
        # of where the results land.
        options = options.with_(csv_path=None)
    if args.alignment_sweep:
        mode = "alignment_sweep"
    elif args.fork:
        mode = "forked"
    elif args.openmp:
        mode = "openmp"
    else:
        mode = "sequential"
    campaign = Campaign(
        name=path.stem,
        machine=machine,
        sweeps=(SweepSpec(kernels=(path,), base=options, mode=mode),),
    )
    run = run_campaign(
        campaign,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        chunk_policy=args.chunk_policy,
        chunk_target_ms=args.chunk_target_ms,
        cache_dir=args.cache_dir,
        resume=args.resume,
        progress=print,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        gen_cache_dir=args.gen_cache,
        store_format=args.store_format,
    )
    ms = run.measurements()
    if not ms:
        pass  # every job quarantined: the failure report below says why
    elif mode == "alignment_sweep":
        best = min(ms, key=lambda m: m.cycles_per_iteration)
        worst = max(ms, key=lambda m: m.cycles_per_iteration)
        print(f"{len(ms)} alignment configurations")
        print(f"best : {best.cycles_per_iteration:.3f} cycles/iter "
              f"alignments={best.alignments}")
        print(f"worst: {worst.cycles_per_iteration:.3f} cycles/iter "
              f"alignments={worst.alignments}")
    elif mode == "forked":
        mean = sum(m.cycles_per_iteration for m in ms) / len(ms)
        print(f"forked {len(ms)} processes on cores {[m.core for m in ms]}")
        print(f"mean cycles/iteration: {mean:.3f}")
        print(f"max  cycles/iteration: "
              f"{max(m.cycles_per_iteration for m in ms):.3f}")
    else:
        m = ms[0]
        print(f"kernel: {m.kernel_name} on {machine.name}")
        print(f"cycles/iteration: {m.cycles_per_iteration:.3f} "
              f"[{m.min_cycles_per_iteration:.3f}, {m.max_cycles_per_iteration:.3f}]")
        print(f"bottleneck: {m.bottleneck}")
    if args.csv:
        if args.output == "jsonl":
            out = run.write_jsonl(args.csv)
        else:
            out = run.write_csv(args.csv, full=args.csv_full)
        print(f"wrote {out}")
    return _report_failures("microlauncher", run)


def _report_failures(prog: str, run) -> int:
    """Print quarantined jobs to stderr; exit 3 for a degraded run."""
    if not run.failures:
        return 0
    for failure in run.failures:
        print(
            f"{prog}: job {failure.job_id} ({failure.kernel}, {failure.mode}) "
            f"failed after {failure.attempts} attempts: {failure.reason}",
            file=sys.stderr,
        )
    print(
        f"{prog}: {len(run.failures)} of {run.stats.total_jobs} jobs "
        "quarantined; results are degraded",
        file=sys.stderr,
    )
    return 3


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.trace or args.metrics_out:
        from repro import obs

        obs.enable()
        try:
            return _observed_main(args)
        finally:
            session = obs.session()
            if args.trace:
                print(f"wrote trace to {session.tracer.write_jsonl(args.trace)}")
            if args.metrics_out:
                print(
                    "wrote metrics to "
                    f"{session.metrics.write_json(args.metrics_out)}"
                )
            obs.disable()
    return _observed_main(args)


def _observed_main(args) -> int:
    """The CLI's dispatch body (observability already decided)."""
    if args.list_exhibits:
        for name in available_experiments():
            print(name)
        return 0

    if args.report is not None:
        from repro.analysis.report import write_report

        path = write_report(args.report, quick=args.quick)
        print(f"wrote reproduction report to {path}")
        return 0

    if args.exhibit is not None:
        try:
            result = run_experiment(
                args.exhibit,
                quick=args.quick,
                jobs=args.jobs,
                chunk_size=args.chunk_size,
                chunk_policy=args.chunk_policy,
                chunk_target_ms=args.chunk_target_ms,
                cache_dir=args.cache_dir,
                resume=args.resume,
                max_retries=args.max_retries,
                job_timeout=args.job_timeout,
                gen_cache_dir=args.gen_cache,
                store_format=args.store_format,
                rciw_target=args.rciw_target,
                max_experiments=args.max_experiments,
            )
        except KeyError as exc:
            print(f"microlauncher: {exc}", file=sys.stderr)
            return 2
        print(result.render())
        if args.save_data is not None:
            from repro.analysis.export import export_result

            written = export_result(result, args.save_data)
            for path in written:
                print(f"wrote {path}")
        return 0

    if args.kernel is None:
        print("microlauncher: provide a kernel file or --exhibit", file=sys.stderr)
        return 2
    path = Path(args.kernel)
    if not path.exists():
        print(f"microlauncher: no such kernel {path}", file=sys.stderr)
        return 2

    if args.machine_file is not None:
        from repro.machine.serialize import MachineFileError, load_machine

        try:
            machine = load_machine(args.machine_file)
        except MachineFileError as exc:
            print(f"microlauncher: {exc}", file=sys.stderr)
            return 2
    else:
        machine = preset(args.machine)
    if args.machine_overlay is not None:
        from repro.machine.serialize import (
            MachineFileError,
            apply_machine_overlay,
            load_overlay,
        )

        try:
            machine = apply_machine_overlay(
                machine, load_overlay(args.machine_overlay)
            )
        except MachineFileError as exc:
            print(f"microlauncher: {exc}", file=sys.stderr)
            return 2
    launcher = MicroLauncher(machine)
    from repro.launcher.stopping import adaptive_overrides

    options = LauncherOptions(
        function_name=args.function,
        nbvectors=args.nbvectors,
        array_bytes=args.array_bytes,
        trip_count=args.trip,
        repetitions=args.repetitions,
        experiments=args.experiments,
        core=args.core,
        pin=not args.no_pin,
        warmup=not args.no_warmup,
        subtract_overhead=not args.no_overhead_subtraction,
        frequency_ghz=args.frequency,
        n_cores=args.fork or 1,
        omp_threads=args.openmp or 1,
        csv_path=args.csv,
        csv_full=args.csv_full,
        **adaptive_overrides(
            rciw_target=args.rciw_target,
            min_experiments=args.min_experiments,
            max_experiments=args.max_experiments,
            batch_size=args.stopping_batch,
        ),
    )

    if (
        args.jobs > 1
        or args.cache_dir is not None
        or args.output == "jsonl"
        or args.job_timeout is not None
    ):
        return _run_engine(args, machine, options, path)

    if args.alignment_sweep:
        series = launcher.run_alignment_sweep(path, options)
        best, worst = series.best(), series.worst()
        print(f"{len(series)} alignment configurations")
        print(f"best : {best.cycles_per_iteration:.3f} cycles/iter "
              f"alignments={best.alignments}")
        print(f"worst: {worst.cycles_per_iteration:.3f} cycles/iter "
              f"alignments={worst.alignments}")
        return 0

    if args.fork:
        result = launcher.run_forked(path, options)
        print(f"forked {result.n_cores} processes on cores {result.pinned_cores}")
        print(f"mean cycles/iteration: {result.mean_cycles_per_iteration:.3f}")
        print(f"max  cycles/iteration: {result.max_cycles_per_iteration:.3f}")
        return 0

    if args.openmp:
        result = launcher.run_openmp(path, options)
        m = result.measurement
        print(f"openmp threads: {result.threads}")
        print(f"cycles/iteration: {m.cycles_per_iteration:.3f} "
              f"[{m.min_cycles_per_iteration:.3f}, {m.max_cycles_per_iteration:.3f}]")
        return 0

    m = launcher.run(path, options)
    print(f"kernel: {m.kernel_name} on {machine.name}")
    print(f"cycles/iteration: {m.cycles_per_iteration:.3f} "
          f"[{m.min_cycles_per_iteration:.3f}, {m.max_cycles_per_iteration:.3f}]")
    print(f"cycles/memory-instruction: {m.cycles_per_memory_instruction:.3f}")
    print(f"bottleneck: {m.bottleneck}")
    if m.rciw is not None:
        status = "converged" if m.converged else "hit max_experiments"
        print(f"rciw: {m.rciw:.4f} after {m.experiments_spent} "
              f"experiments ({status})")
    if args.energy:
        from repro.launcher.arrays import ArrayAllocator
        from repro.launcher.kernel_input import as_sim_kernel
        from repro.machine.power import estimate_iteration_energy

        sim = as_sim_kernel(path, trip_count=options.trip_count)
        bindings = ArrayAllocator(sim, options).bindings()
        energy = estimate_iteration_energy(
            sim.analysis, bindings, machine, freq_ghz=options.frequency_ghz
        )
        print(
            f"energy/iteration: {energy.total_nj:.2f} nJ "
            f"(dynamic {energy.dynamic_nj:.2f}, memory {energy.memory_nj:.2f}, "
            f"static {energy.static_nj:.2f}); avg power {energy.average_power_w:.2f} W"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
