"""Command-line front-ends: ``microcreator`` and ``microlauncher``.

The two binaries the paper ships, as console scripts::

    microcreator kernel.xml -o out/ --language asm
    microlauncher out/kernel_v0000.s --machine nehalem-2s --array-bytes 65536
    microlauncher --exhibit fig11        # regenerate a paper figure
"""
