"""The ``microcreator`` command-line tool.

Reads a kernel-description XML file and writes one assembly (or C) file
per generated variant::

    microcreator kernel.xml -o generated/
    microcreator kernel.xml --list
    microcreator kernel.xml --random 20 --seed 7 -o sample/
    microcreator kernel.xml --plugin my_passes.py -o out/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.creator import CreatorOptions, MicroCreator
from repro.spec import SpecParseError, parse_spec_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="microcreator",
        description="Generate microbenchmark program variants from a kernel "
        "description (XML).",
    )
    parser.add_argument("input", help="kernel description XML file")
    parser.add_argument(
        "-o", "--output", default=None, help="directory to write variants into"
    )
    parser.add_argument(
        "--language",
        choices=("asm", "c"),
        default="asm",
        help="output language (default: asm)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print variant names and metadata instead of writing files",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="cap the number of generated variants"
    )
    parser.add_argument(
        "--random",
        type=int,
        default=None,
        metavar="K",
        help="randomly keep K variants after instruction selection",
    )
    parser.add_argument("--seed", type=int, default=0, help="random-selection seed")
    parser.add_argument(
        "--schedule",
        action="store_true",
        help="enable the scheduling pass (interleave induction updates)",
    )
    parser.add_argument(
        "--plugin",
        action="append",
        default=[],
        metavar="FILE.py",
        help="load a plugin (pluginInit) before generating; repeatable",
    )
    parser.add_argument(
        "--show",
        metavar="VARIANT",
        default=None,
        help="print one variant's code (by name or index) and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = parse_spec_file(args.input)
    except (SpecParseError, OSError) as exc:
        print(f"microcreator: {exc}", file=sys.stderr)
        return 2
    options = CreatorOptions(
        random_selection=args.random,
        seed=args.seed,
        max_benchmarks=args.limit,
        schedule=args.schedule,
    )
    creator = MicroCreator(options, plugins=args.plugin)
    kernels = creator.generate(spec)
    print(f"generated {len(kernels)} variants from {args.input}")

    if args.show is not None:
        selected = None
        if args.show.isdigit():
            index = int(args.show)
            if 0 <= index < len(kernels):
                selected = kernels[index]
        else:
            selected = next((k for k in kernels if k.name == args.show), None)
        if selected is None:
            print(f"microcreator: no variant {args.show!r}", file=sys.stderr)
            return 2
        text = selected.asm_text(full_file=True) if args.language == "asm" else selected.c_text()
        print(text)
        return 0

    if args.list:
        for k in kernels:
            print(f"  {k.name}  unroll={k.unroll} mix={k.mix or '-'} "
                  f"loads={k.n_loads} stores={k.n_stores}")
        return 0

    if args.output is None:
        print("microcreator: use -o DIR to write variants, --list to inspect",
              file=sys.stderr)
        return 2
    paths = creator.write_all(kernels, Path(args.output), language=args.language)
    print(f"wrote {len(paths)} files to {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
