"""The ``microcreator`` command-line tool.

Reads a kernel-description XML file and writes one assembly (or C) file
per generated variant::

    microcreator kernel.xml -o generated/
    microcreator kernel.xml --list
    microcreator kernel.xml --random 20 --seed 7 -o sample/
    microcreator kernel.xml --plugin my_passes.py -o out/
    microcreator kernel.xml --measure --machine nehalem-2s --jobs 4

Variants are written as they stream out of the pass pipeline, so the
first files appear before the full expansion finishes.  ``--measure``
runs every generated variant through the campaign engine and writes a
results file instead of assembly.

``--trace FILE`` and ``--metrics-out FILE`` turn on the observability
layer: one span per pass of the pipeline (plus engine/launcher spans
under ``--measure``) and a metrics snapshot, both readable by
``python -m repro.obs.report``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.creator import CreatorOptions, MicroCreator
from repro.spec import SpecParseError, parse_spec_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="microcreator",
        description="Generate microbenchmark program variants from a kernel "
        "description (XML).",
    )
    parser.add_argument("input", help="kernel description XML file")
    parser.add_argument(
        "-o", "--output", default=None, help="directory to write variants into"
    )
    parser.add_argument(
        "--language",
        choices=("asm", "c"),
        default="asm",
        help="output language (default: asm)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print variant names and metadata instead of writing files",
    )
    parser.add_argument(
        "--limit", type=int, default=None, help="cap the number of generated variants"
    )
    parser.add_argument(
        "--random",
        type=int,
        default=None,
        metavar="K",
        help="randomly keep K variants after instruction selection",
    )
    parser.add_argument("--seed", type=int, default=0, help="random-selection seed")
    parser.add_argument(
        "--schedule",
        action="store_true",
        help="enable the scheduling pass (interleave induction updates)",
    )
    parser.add_argument(
        "--plugin",
        action="append",
        default=[],
        metavar="FILE.py",
        help="load a plugin (pluginInit) before generating; repeatable",
    )
    parser.add_argument(
        "--show",
        metavar="VARIANT",
        default=None,
        help="print one variant's code (by name or index) and exit",
    )
    parser.add_argument(
        "--measure",
        action="store_true",
        help="measure every generated variant through the campaign engine",
    )
    parser.add_argument(
        "--machine",
        default="nehalem-2s",
        help="with --measure: machine preset (default: nehalem-2s)",
    )
    parser.add_argument(
        "--machine-overlay",
        metavar="JSON",
        default=None,
        help="with --measure: apply a machine-config overlay (e.g. one "
        "derived by `python -m repro.characterize run`) on top of the "
        "preset",
    )
    parser.add_argument(
        "--array-bytes",
        type=int,
        default=16 * 1024,
        help="with --measure: bytes per array",
    )
    parser.add_argument(
        "--trip", type=int, default=4096, help="with --measure: trip count n"
    )
    parser.add_argument(
        "--rciw-target",
        type=float,
        default=None,
        metavar="W",
        help="with --measure: adaptive stopping — batch experiments until "
        "the bootstrapped relative CI width of cycles/iteration is <= W, "
        "or --max-experiments is reached (unset/0 = fixed count)",
    )
    parser.add_argument(
        "--max-experiments",
        type=int,
        default=None,
        metavar="N",
        help="with --measure --rciw-target: cap on experiments per "
        "configuration (default: 64)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="with --measure: worker processes (default: 1, inline)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        metavar="K",
        help="with --measure --jobs: jobs per worker batch (default: auto)",
    )
    parser.add_argument(
        "--chunk-policy",
        choices=("auto", "static", "dynamic"),
        default="auto",
        help="with --measure --jobs: chunk sizing ('dynamic' re-sizes "
        "from measured per-job durations, 'static' uses fixed "
        "--chunk-size batches); results are byte-identical either way",
    )
    parser.add_argument(
        "--chunk-target-ms",
        type=float,
        default=None,
        metavar="MS",
        help="wall-time each dynamic chunk aims for (default: 250)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="with --measure: cache measurements by content hash",
    )
    parser.add_argument(
        "--gen-cache",
        metavar="DIR",
        default=None,
        help="with --measure: persist generated variants keyed by "
        "(spec, options); a warm cache skips the generation pipeline",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="with --measure: reuse cached results (--no-resume re-measures)",
    )
    parser.add_argument(
        "--store-format",
        choices=("jsonl", "sharded"),
        default="sharded",
        help="with --measure: on-disk layout for --cache-dir/--gen-cache "
        "(default: sharded; migrates a legacy JSONL cache on first open)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="with --measure: failed attempts a job may retry before it "
        "is quarantined (default: 2); a degraded run exits 3",
    )
    parser.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --measure: wall-clock budget per job "
        "(default: no timeout)",
    )
    parser.add_argument(
        "--format",
        dest="result_format",
        choices=("csv", "jsonl"),
        default="csv",
        help="with --measure: results file format (default: csv)",
    )
    parser.add_argument(
        "--results",
        metavar="PATH",
        default=None,
        help="with --measure: results file (default: results.csv / results.jsonl)",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a JSONL span trace of the run (pass pipeline, engine, "
        "launcher); summarize with `python -m repro.obs.report`",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write a JSON metrics snapshot (counters/gauges/histograms)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = parse_spec_file(args.input)
    except (SpecParseError, OSError) as exc:
        print(f"microcreator: {exc}", file=sys.stderr)
        return 2
    if args.trace or args.metrics_out:
        from repro import obs

        obs.enable()
        try:
            return _observed_main(args, spec)
        finally:
            session = obs.session()
            if args.trace:
                print(f"wrote trace to {session.tracer.write_jsonl(args.trace)}")
            if args.metrics_out:
                print(
                    "wrote metrics to "
                    f"{session.metrics.write_json(args.metrics_out)}"
                )
            obs.disable()
    return _observed_main(args, spec)


def _observed_main(args, spec) -> int:
    """Everything after spec parsing (observability already decided)."""
    options = CreatorOptions(
        random_selection=args.random,
        seed=args.seed,
        max_benchmarks=args.limit,
        schedule=args.schedule,
    )
    creator = MicroCreator(options, plugins=args.plugin)

    if args.measure:
        return _measure(args, creator, spec)

    if args.show is not None or args.list:
        kernels = creator.generate(spec)
        print(f"generated {len(kernels)} variants from {args.input}")
        if args.show is not None:
            selected = None
            if args.show.isdigit():
                index = int(args.show)
                if 0 <= index < len(kernels):
                    selected = kernels[index]
            else:
                selected = next((k for k in kernels if k.name == args.show), None)
            if selected is None:
                print(f"microcreator: no variant {args.show!r}", file=sys.stderr)
                return 2
            text = selected.asm_text(full_file=True) if args.language == "asm" else selected.c_text()
            print(text)
            return 0
        for k in kernels:
            print(f"  {k.name}  unroll={k.unroll} mix={k.mix or '-'} "
                  f"loads={k.n_loads} stores={k.n_stores}")
        return 0

    if args.output is None:
        print("microcreator: use -o DIR to write variants, --list to inspect",
              file=sys.stderr)
        return 2
    # Stream: each variant hits the disk as soon as the pipeline emits it.
    count = 0
    for kernel in creator.stream(spec):
        kernel.write(Path(args.output), language=args.language)
        count += 1
    print(f"generated {count} variants from {args.input}")
    print(f"wrote {count} files to {args.output}")
    return 0


def _measure(args, creator: MicroCreator, spec) -> int:
    """Generate the spec's variants and measure them as one campaign."""
    from repro.engine import Campaign, SweepSpec, run_campaign
    from repro.launcher import LauncherOptions
    from repro.machine import PRESETS, preset

    if args.machine not in PRESETS:
        print(f"microcreator: unknown machine {args.machine!r}; "
              f"have {sorted(PRESETS)}", file=sys.stderr)
        return 2
    machine = preset(args.machine)
    if args.machine_overlay is not None:
        from repro.machine.serialize import (
            MachineFileError,
            apply_machine_overlay,
            load_overlay,
        )

        try:
            machine = apply_machine_overlay(
                machine, load_overlay(args.machine_overlay)
            )
        except MachineFileError as exc:
            print(f"microcreator: {exc}", file=sys.stderr)
            return 2
    from repro.launcher.stopping import adaptive_overrides

    base = LauncherOptions(
        array_bytes=args.array_bytes,
        trip_count=args.trip,
        **adaptive_overrides(
            rciw_target=args.rciw_target,
            max_experiments=args.max_experiments,
        ),
    )
    if args.plugin:
        # Plugin passes rewrite the pipeline in this process only; worker
        # processes could not reconstruct them, so ship rendered kernels.
        sweep = SweepSpec(kernels=tuple(creator.stream(spec)), base=base)
    else:
        # Spec-backed sweep: workers regenerate variants locally from the
        # (spec, options) pair instead of receiving pickled programs.
        sweep = SweepSpec(spec=spec, base=base, creator_options=creator.options)
    campaign = Campaign(
        name=spec.name,
        machine=machine,
        sweeps=(sweep,),
    )
    run = run_campaign(
        campaign,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        chunk_policy=args.chunk_policy,
        chunk_target_ms=args.chunk_target_ms,
        cache_dir=args.cache_dir,
        resume=args.resume,
        progress=print,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        gen_cache_dir=args.gen_cache,
        store_format=args.store_format,
    )
    results = args.results or f"results.{args.result_format}"
    if args.result_format == "jsonl":
        out = run.write_jsonl(results)
    else:
        out = run.write_csv(results)
    print(f"wrote {len(run.measurements())} measurements to {out}")
    from repro.cli.launcher_cli import _report_failures

    return _report_failures("microcreator", run)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
