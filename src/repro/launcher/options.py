"""MicroLauncher's options.

The paper: "there are currently more than thirty options in the
MicroLauncher tool for behavior tweaking.  These options include modifying
the input file, kernel's function name, number of arrays the kernel
requires, size of the arrays, their alignment ranges, number of
repetitions, CPU pinning, or number of cores on which to run the program"
(section 4.2).  Every one of those knobs exists here, grouped by concern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.fastpickle import fast_slots_pickling
from repro.machine.config import MemLevel


@fast_slots_pickling
@dataclass(frozen=True, slots=True)
class LauncherOptions:
    """All MicroLauncher behaviour knobs (defaults suit new users).

    Input
    -----
    function_name:
        Entry-point symbol when the input holds several (``--function``).
    nbvectors:
        Number of arrays the kernel requires (``--nbvectors``); ``None``
        infers one array per memory stream.
    trip_count:
        The ``n`` passed to the kernel ABI ``int f(int n, ...)`` —
        elements to process per kernel call.

    Arrays
    ------
    array_bytes:
        Default allocation size per array; picks the hierarchy level.
    array_bytes_per_vector:
        Per-array override (tuple aligned with stream order).
    element_size:
        Bytes per logical element (cycles-per-element reporting).
    residence / residence_per_vector:
        Force a residence level instead of the footprint rule — used by
        studies that know the reuse pattern (matmul).

    Alignment
    ---------
    alignment / alignments:
        Base offset for every array, or one offset per array.
    alignment_min / alignment_max / alignment_step:
        The sweep range for :meth:`MicroLauncher.run_alignment_sweep`.
    max_alignment_configs:
        Cap on the number of swept configurations (the paper shows
        "upwards of 2500").

    Measurement (the Fig.-10 algorithm)
    -----------------------------------
    repetitions:
        Inner-loop kernel calls per timed experiment.
    experiments:
        Outer-loop timed experiments (fixed-count mode).
    rciw_target:
        Adaptive stopping: when positive, experiments run in batches and
        a configuration stops as soon as the bootstrapped relative
        confidence-interval width of its cycles-per-iteration falls to
        or under this target (see :mod:`repro.launcher.stopping`).
        ``0.0`` (the default) keeps the fixed-count path.
    min_experiments / max_experiments:
        Adaptive mode's floor and cap on outer-loop experiments; the
        convergence test never fires before ``min_experiments`` and a
        configuration that never converges stops at ``max_experiments``.
    batch_size:
        Experiments added per adaptive sampling round after the initial
        ``min_experiments`` batch.
    warmup:
        Run the kernel once untimed first, heating I+D caches.
    subtract_overhead:
        Measure and subtract the empty-call overhead.
    aggregator:
        How the per-experiment times collapse to one number
        (``"min"`` | ``"median"`` | ``"mean"``).

    Environment
    -----------
    pin:
        Pin the (sequential) run to ``core``.
    core:
        Target core id for sequential runs.
    pin_policy:
        ``"scatter"`` (round-robin over sockets, default) or
        ``"compact"`` for multi-core placement.
    disable_interrupts:
        Mask timer interrupts during measurement.
    noise_seed:
        Seed for the deterministic noise process.
    frequency_ghz:
        Core DVFS frequency; ``None`` = the machine's nominal.

    Parallel
    --------
    n_cores:
        Process count for forked multi-core runs.
    omp_threads:
        Thread count for OpenMP runs.
    omp_region_overhead_ns:
        Fork/join cost charged per parallel region.
    sync_start:
        Synchronize forked processes before timing (section 4.6).

    Output
    ------
    csv_path:
        When set, results are appended to this CSV file.
    csv_full:
        Include every outer-loop experiment in the CSV (the "full kernel
        function's execution" option of section 4.3).
    label:
        Free-form tag copied into result rows.
    """

    # -- input ---------------------------------------------------------------
    function_name: str | None = None
    nbvectors: int | None = None
    trip_count: int = 4096

    # -- arrays ----------------------------------------------------------------
    array_bytes: int = 16 * 1024
    array_bytes_per_vector: tuple[int, ...] = ()
    element_size: int = 4
    residence: MemLevel | None = None
    residence_per_vector: tuple[MemLevel | None, ...] = ()

    # -- alignment ---------------------------------------------------------------
    alignment: int = 0
    alignments: tuple[int, ...] = ()
    alignment_min: int = 0
    alignment_max: int = 1024
    alignment_step: int = 64
    max_alignment_configs: int = 2500

    #: Residence policy: "footprint" (the paper's sizing rule) or
    #: "trace" (replay the streams through the cache simulator; catches
    #: arrays that jointly overflow a level).
    residence_mode: str = "footprint"

    #: Evaluation library: "rdtsc" (default timing) or "events" (also
    #: collect per-call performance-counter estimates) — section 4.2's
    #: switchable evaluation library.
    eval_library: str = "rdtsc"

    # -- measurement -----------------------------------------------------------
    repetitions: int = 32
    experiments: int = 8
    rciw_target: float = 0.0
    min_experiments: int = 3
    max_experiments: int = 64
    batch_size: int = 8
    warmup: bool = True
    subtract_overhead: bool = True
    aggregator: str = "min"

    # -- environment -----------------------------------------------------------
    pin: bool = True
    core: int = 0
    pin_policy: str = "scatter"
    disable_interrupts: bool = True
    noise_seed: int = 12345
    frequency_ghz: float | None = None

    # -- parallel ----------------------------------------------------------------
    n_cores: int = 1
    omp_threads: int = 1
    omp_region_overhead_ns: float = 1500.0
    sync_start: bool = True

    # -- output ------------------------------------------------------------------
    csv_path: str | None = None
    csv_full: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise ValueError("trip_count must be >= 1")
        if self.repetitions < 1 or self.experiments < 1:
            raise ValueError("repetitions and experiments must be >= 1")
        if not math.isfinite(self.rciw_target) or self.rciw_target < 0:
            raise ValueError(
                f"rciw_target must be finite and >= 0, got {self.rciw_target!r}"
            )
        if self.min_experiments < 1 or self.max_experiments < 1:
            raise ValueError("min_experiments and max_experiments must be >= 1")
        if self.min_experiments > self.max_experiments:
            raise ValueError(
                f"min_experiments ({self.min_experiments}) must not exceed "
                f"max_experiments ({self.max_experiments})"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.aggregator not in ("min", "median", "mean"):
            raise ValueError(f"unknown aggregator {self.aggregator!r}")
        if self.pin_policy not in ("scatter", "compact"):
            raise ValueError(f"unknown pin policy {self.pin_policy!r}")
        if self.alignment_step < 1:
            raise ValueError("alignment_step must be >= 1")
        if self.element_size < 1:
            raise ValueError("element_size must be >= 1")
        if self.residence_mode not in ("footprint", "trace"):
            raise ValueError(f"unknown residence mode {self.residence_mode!r}")
        from repro.launcher.evallib import EVAL_LIBRARIES

        if self.eval_library not in EVAL_LIBRARIES:
            raise ValueError(f"unknown evaluation library {self.eval_library!r}")

    def with_(self, **changes: object) -> "LauncherOptions":
        """Copy with field overrides (sweep helper)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @property
    def adaptive(self) -> bool:
        """Whether the adaptive RCIW stopping rule is in effect."""
        return self.rciw_target > 0.0

    @property
    def experiment_budget(self) -> int:
        """Most outer-loop experiments this run may take.

        ``experiments`` in fixed-count mode, ``max_experiments`` under
        adaptive stopping — the length any per-experiment input (e.g.
        unsynchronized parallel ideals) must cover.
        """
        return self.max_experiments if self.adaptive else self.experiments

    def array_size(self, index: int) -> int:
        """Allocation size for array ``index``."""
        if index < len(self.array_bytes_per_vector):
            return self.array_bytes_per_vector[index]
        return self.array_bytes

    def array_residence(self, index: int) -> MemLevel | None:
        if index < len(self.residence_per_vector):
            override = self.residence_per_vector[index]
            if override is not None:
                return override
        return self.residence

    def array_alignment(self, index: int) -> int:
        if index < len(self.alignments):
            return self.alignments[index]
        return self.alignment
