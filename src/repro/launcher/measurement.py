"""The Fig.-10 measurement algorithm and its result records.

MicroLauncher's timing pseudo-algorithm (section 4.5):

1. measure the empty-call overhead,
2. call the benchmark function once to heat the instruction and data
   caches,
3. run the outer experiment loop; each experiment times ``repetitions``
   back-to-back kernel calls with the TSC,
4. subtract the overhead and divide by repetitions x iterations for
   cycles per iteration.

Here the "kernel call" is simulated: its ideal duration comes from the
machine model, the TSC is the simulated reference counter, and the noise
process perturbs every timed region according to the environment controls
in effect — so warm-up, pinning, interrupt masking, inner-loop length and
overhead subtraction all have measurable consequences.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.launcher.options import LauncherOptions
from repro.machine.noise import NoiseEnvironment, NoiseModel

#: Simulated cost of one kernel-function invocation (call, prologue,
#: argument setup) — what the overhead-subtraction step removes.
CALL_OVERHEAD_NS = 100.0


@dataclass(frozen=True, slots=True)
class Measurement:
    """One measured kernel configuration (the launcher's CSV row).

    ``experiment_tsc`` holds the outer-loop experiments' TSC counts after
    overhead subtraction; all derived metrics aggregate over it with the
    options' aggregator (the paper takes minima, "though the variance was
    minimal").
    """

    kernel_name: str
    label: str
    trip_count: int
    repetitions: int
    loop_iterations: int
    elements_per_iteration: int
    n_memory_instructions: int
    experiment_tsc: tuple[float, ...]
    freq_ghz: float
    tsc_ghz: float
    aggregator: str = "min"
    alignments: tuple[int, ...] = ()
    core: int | None = None
    n_cores: int = 1
    bottleneck: str = ""
    metadata: dict[str, object] = field(default_factory=dict)

    def _aggregate(self, values: Sequence[float]) -> float:
        if self.aggregator == "min":
            return min(values)
        if self.aggregator == "median":
            return statistics.median(values)
        return statistics.fmean(values)

    @property
    def tsc_per_call(self) -> float:
        """Aggregated TSC cycles per kernel invocation."""
        return self._aggregate(self.experiment_tsc) / self.repetitions

    @property
    def cycles_per_iteration(self) -> float:
        """The paper's headline metric: TSC cycles per loop iteration.

        "MicroLauncher retrieves the iteration count and, with the
        benchmark program's elapsed time, calculates the number of cycles
        per iteration" (section 4.4)."""
        return self.tsc_per_call / self.loop_iterations

    @property
    def cycles_per_element(self) -> float:
        return self.cycles_per_iteration / self.elements_per_iteration

    @property
    def cycles_per_memory_instruction(self) -> float:
        """Average cycles per load/store — Figs. 11/12's Y axis."""
        if self.n_memory_instructions == 0:
            return self.cycles_per_iteration
        return self.cycles_per_iteration / self.n_memory_instructions

    @property
    def min_cycles_per_iteration(self) -> float:
        return min(self.experiment_tsc) / self.repetitions / self.loop_iterations

    @property
    def max_cycles_per_iteration(self) -> float:
        return max(self.experiment_tsc) / self.repetitions / self.loop_iterations

    @property
    def spread(self) -> float:
        """Run-to-run instability, (max - min) / min — the stability
        figure of merit of section 4.7."""
        lo = self.min_cycles_per_iteration
        hi = self.max_cycles_per_iteration
        return (hi - lo) / lo if lo else 0.0

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds for the whole measured run."""
        return sum(self.experiment_tsc) / self.tsc_ghz * 1e-9

    @property
    def counters(self) -> dict[str, float]:
        """Per-call performance-counter estimates (empty unless the run
        used the "events" evaluation library, section 4.2)."""
        counters = self.metadata.get("counters")
        return dict(counters) if isinstance(counters, dict) else {}


@dataclass(slots=True)
class MeasurementSeries:
    """An ordered collection of measurements from one sweep."""

    measurements: list[Measurement] = field(default_factory=list)

    def append(self, m: Measurement) -> None:
        self.measurements.append(m)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    def __getitem__(self, index: int) -> Measurement:
        return self.measurements[index]

    def best(self) -> Measurement:
        """The fastest configuration by cycles per iteration."""
        if not self.measurements:
            raise ValueError("empty series")
        return min(self.measurements, key=lambda m: m.cycles_per_iteration)

    def worst(self) -> Measurement:
        if not self.measurements:
            raise ValueError("empty series")
        return max(self.measurements, key=lambda m: m.cycles_per_iteration)

    def group_min(self, key: str) -> dict[object, Measurement]:
        """Per-group minima, the aggregation behind Figs. 11/12 ("For each
        unroll group, the minimum value was taken")."""
        groups: dict[object, Measurement] = {}
        for m in self.measurements:
            k = m.metadata.get(key)
            if k not in groups or m.cycles_per_iteration < groups[k].cycles_per_iteration:
                groups[k] = m
        return groups


def run_measurement(
    *,
    ideal_call_ns: float,
    kernel_name: str,
    options: LauncherOptions,
    loop_iterations: int,
    elements_per_iteration: int,
    n_memory_instructions: int,
    freq_ghz: float,
    tsc_ghz: float,
    noise: NoiseModel,
    alignments: tuple[int, ...] = (),
    core: int | None = None,
    n_cores: int = 1,
    bottleneck: str = "",
    metadata: dict[str, object] | None = None,
    per_experiment_ideal_ns: Sequence[float] | None = None,
) -> Measurement:
    """Replay the Fig.-10 algorithm against the simulated clock.

    ``ideal_call_ns`` is the machine model's duration for one kernel call
    (loop iterations x per-iteration time); ``per_experiment_ideal_ns``
    optionally varies it per outer-loop experiment (unsynchronized
    parallel runs do).
    """
    env = NoiseEnvironment(
        pinned=options.pin,
        interrupts_disabled=options.disable_interrupts,
        warmed_up=options.warmup,
        inner_repetitions=options.repetitions,
    )

    # Step 1 - overhead measurement (an empty-call timing, itself noisy).
    overhead_estimate_ns = 0.0
    if options.subtract_overhead:
        raw = options.repetitions * CALL_OVERHEAD_NS
        overhead_estimate_ns = noise.perturb(raw, env, experiment=-1)

    # Steps 2-3 - warm-up happens implicitly: when options.warmup is set
    # the noise model never applies the cold-start factor; when it is not,
    # the first experiment pays it.
    experiment_tsc: list[float] = []
    for e in range(options.experiments):
        ideal = (
            per_experiment_ideal_ns[e]
            if per_experiment_ideal_ns is not None
            else ideal_call_ns
        )
        duration_ns = options.repetitions * (ideal + CALL_OVERHEAD_NS)
        duration_ns = noise.perturb(duration_ns, env, experiment=e, first_run=(e == 0))
        duration_ns -= overhead_estimate_ns
        experiment_tsc.append(max(duration_ns, 0.0) * tsc_ghz)

    return Measurement(
        kernel_name=kernel_name,
        label=options.label,
        trip_count=options.trip_count,
        repetitions=options.repetitions,
        loop_iterations=loop_iterations,
        elements_per_iteration=elements_per_iteration,
        n_memory_instructions=n_memory_instructions,
        experiment_tsc=tuple(experiment_tsc),
        freq_ghz=freq_ghz,
        tsc_ghz=tsc_ghz,
        aggregator=options.aggregator,
        alignments=alignments,
        core=core,
        n_cores=n_cores,
        bottleneck=bottleneck,
        metadata=dict(metadata or {}),
    )
