"""The Fig.-10 measurement algorithm and its result records.

MicroLauncher's timing pseudo-algorithm (section 4.5):

1. measure the empty-call overhead,
2. call the benchmark function once to heat the instruction and data
   caches,
3. run the outer experiment loop; each experiment times ``repetitions``
   back-to-back kernel calls with the TSC,
4. subtract the overhead and divide by repetitions x iterations for
   cycles per iteration.

Here the "kernel call" is simulated: its ideal duration comes from the
machine model, the TSC is the simulated reference counter, and the noise
process perturbs every timed region according to the environment controls
in effect — so warm-up, pinning, interrupt masking, inner-loop length and
overhead subtraction all have measurable consequences.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.launcher.options import LauncherOptions
from repro.machine.noise import NoiseEnvironment, NoiseModel

#: Simulated cost of one kernel-function invocation (call, prologue,
#: argument setup) — what the overhead-subtraction step removes.
CALL_OVERHEAD_NS = 100.0

#: Aggregators a measurement accepts (mirrors ``LauncherOptions``; the
#: cache deserializes measurements without going through options, so the
#: record validates its own copy).
AGGREGATORS = ("min", "median", "mean")


@dataclass(frozen=True, slots=True)
class Measurement:
    """One measured kernel configuration (the launcher's CSV row).

    ``experiment_tsc`` holds the outer-loop experiments' TSC counts after
    overhead subtraction; all derived metrics aggregate over it with the
    options' aggregator (the paper takes minima, "though the variance was
    minimal").
    """

    kernel_name: str
    label: str
    trip_count: int
    repetitions: int
    loop_iterations: int
    elements_per_iteration: int
    n_memory_instructions: int
    experiment_tsc: tuple[float, ...]
    freq_ghz: float
    tsc_ghz: float
    aggregator: str = "min"
    alignments: tuple[int, ...] = ()
    core: int | None = None
    n_cores: int = 1
    bottleneck: str = ""
    metadata: dict[str, object] = field(default_factory=dict)
    #: Adaptive-stopping quality fields — ``None`` on fixed-count runs so
    #: existing records (and their serialized form) are unchanged.
    ci_low: float | None = None
    ci_high: float | None = None
    rciw: float | None = None
    converged: bool | None = None

    def __post_init__(self) -> None:
        if self.aggregator not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregator {self.aggregator!r}; have {AGGREGATORS}"
            )

    def _aggregate(self, values: Sequence[float]) -> float:
        if self.aggregator == "min":
            return min(values)
        if self.aggregator == "median":
            return statistics.median(values)
        if self.aggregator == "mean":
            return statistics.fmean(values)
        raise ValueError(f"unknown aggregator {self.aggregator!r}")

    @property
    def tsc_per_call(self) -> float:
        """Aggregated TSC cycles per kernel invocation."""
        return self._aggregate(self.experiment_tsc) / self.repetitions

    @property
    def cycles_per_iteration(self) -> float:
        """The paper's headline metric: TSC cycles per loop iteration.

        "MicroLauncher retrieves the iteration count and, with the
        benchmark program's elapsed time, calculates the number of cycles
        per iteration" (section 4.4)."""
        return self.tsc_per_call / self.loop_iterations

    @property
    def cycles_per_element(self) -> float:
        return self.cycles_per_iteration / self.elements_per_iteration

    @property
    def cycles_per_memory_instruction(self) -> float:
        """Average cycles per load/store — Figs. 11/12's Y axis."""
        if self.n_memory_instructions == 0:
            return self.cycles_per_iteration
        return self.cycles_per_iteration / self.n_memory_instructions

    @property
    def experiments_spent(self) -> int:
        """Outer-loop experiments actually run (= requested count in
        fixed mode; under adaptive stopping, where sampling stopped)."""
        return len(self.experiment_tsc)

    @property
    def min_cycles_per_iteration(self) -> float:
        return min(self.experiment_tsc) / self.repetitions / self.loop_iterations

    @property
    def max_cycles_per_iteration(self) -> float:
        return max(self.experiment_tsc) / self.repetitions / self.loop_iterations

    @property
    def spread(self) -> float:
        """Run-to-run instability, (max - min) / min — the stability
        figure of merit of section 4.7."""
        lo = self.min_cycles_per_iteration
        hi = self.max_cycles_per_iteration
        return (hi - lo) / lo if lo else 0.0

    @property
    def total_seconds(self) -> float:
        """Wall-clock seconds for the whole measured run."""
        return sum(self.experiment_tsc) / self.tsc_ghz * 1e-9

    @property
    def counters(self) -> dict[str, float]:
        """Per-call performance-counter estimates (empty unless the run
        used the "events" evaluation library, section 4.2)."""
        counters = self.metadata.get("counters")
        return dict(counters) if isinstance(counters, dict) else {}


@dataclass(slots=True)
class MeasurementSeries:
    """An ordered collection of measurements from one sweep."""

    measurements: list[Measurement] = field(default_factory=list)

    def append(self, m: Measurement) -> None:
        self.measurements.append(m)

    def __iter__(self) -> Iterator[Measurement]:
        return iter(self.measurements)

    def __len__(self) -> int:
        return len(self.measurements)

    def __getitem__(self, index: int) -> Measurement:
        return self.measurements[index]

    def cycles_per_iteration_array(self) -> np.ndarray:
        """Every measurement's cycles-per-iteration, computed in one pass.

        When the series is uniform (same experiment count and aggregator
        throughout — the normal sweep shape) the aggregation runs as one
        vectorized reduction over the experiment matrix instead of one
        property chain per measurement; ragged or mean-aggregated series
        fall back to the per-measurement properties.  Values are
        identical either way.
        """
        ms = self.measurements
        if not ms:
            return np.empty(0)
        n_exp = len(ms[0].experiment_tsc)
        aggregator = ms[0].aggregator
        uniform = all(
            len(m.experiment_tsc) == n_exp and m.aggregator == aggregator
            for m in ms
        )
        # fmean sums with compensated precision; numpy's pairwise mean can
        # differ in the last ulp, so "mean" keeps the scalar path.
        if not uniform or aggregator == "mean":
            return np.array([m.cycles_per_iteration for m in ms])
        tsc = np.array([m.experiment_tsc for m in ms])
        aggregated = (
            tsc.min(axis=1) if aggregator == "min" else np.median(tsc, axis=1)
        )
        repetitions = np.array([m.repetitions for m in ms], dtype=np.float64)
        iterations = np.array([m.loop_iterations for m in ms], dtype=np.float64)
        return aggregated / repetitions / iterations

    def best(self) -> Measurement:
        """The fastest configuration by cycles per iteration."""
        if not self.measurements:
            raise ValueError("empty series")
        return self.measurements[int(np.argmin(self.cycles_per_iteration_array()))]

    def worst(self) -> Measurement:
        if not self.measurements:
            raise ValueError("empty series")
        return self.measurements[int(np.argmax(self.cycles_per_iteration_array()))]

    def group_min(self, key: str) -> dict[object, Measurement]:
        """Per-group minima, the aggregation behind Figs. 11/12 ("For each
        unroll group, the minimum value was taken")."""
        values = self.cycles_per_iteration_array()
        groups: dict[object, Measurement] = {}
        group_values: dict[object, float] = {}
        for m, value in zip(self.measurements, values):
            k = m.metadata.get(key)
            if k not in groups or value < group_values[k]:
                groups[k] = m
                group_values[k] = value
        return groups


@dataclass(frozen=True, slots=True)
class MeasurementRequest:
    """One configuration of a batched measurement sweep.

    Everything :func:`run_measurement` takes per configuration; the
    shared knobs (options, frequencies, noise model) live on the batch
    call so a whole kernel family can be timed in one vectorized pass.
    """

    ideal_call_ns: float
    kernel_name: str
    loop_iterations: int
    elements_per_iteration: int
    n_memory_instructions: int
    alignments: tuple[int, ...] = ()
    core: int | None = None
    n_cores: int = 1
    bottleneck: str = ""
    metadata: dict[str, object] | None = None
    per_experiment_ideal_ns: Sequence[float] | None = None


def run_measurement_batch(
    requests: Sequence[MeasurementRequest],
    *,
    options: LauncherOptions,
    freq_ghz: float,
    tsc_ghz: float,
    noise: NoiseModel,
) -> list[Measurement]:
    """Replay the Fig.-10 algorithm for many configurations at once.

    All configurations share one options/noise context — the shape of a
    variant-family sweep, where only the kernel changes.  The whole
    ``n_configs x n_experiments`` grid perturbs in a single
    :meth:`~repro.machine.noise.NoiseModel.perturb_batch` call, and every
    returned record is bit-identical to what the per-configuration
    :func:`run_measurement` would produce.
    """
    requests = list(requests)
    if not requests:
        return []
    if options.adaptive:
        # Lazy import: stopping.py builds on this module's batch grid.
        from repro.launcher.stopping import run_adaptive_measurement_batch

        return run_adaptive_measurement_batch(
            requests,
            options=options,
            freq_ghz=freq_ghz,
            tsc_ghz=tsc_ghz,
            noise=noise,
        )
    env = NoiseEnvironment(
        pinned=options.pin,
        interrupts_disabled=options.disable_interrupts,
        warmed_up=options.warmup,
        inner_repetitions=options.repetitions,
    )
    n_experiments = options.experiments

    # Step 1 - overhead measurement (an empty-call timing, itself noisy).
    # The overhead stream (-1) and raw duration are configuration-
    # independent, so one estimate serves the whole batch.
    overhead_estimate_ns = 0.0
    if options.subtract_overhead:
        raw = options.repetitions * CALL_OVERHEAD_NS
        overhead_estimate_ns = float(
            noise.perturb_batch(np.array([raw]), env, (-1,))[0]
        )

    # Steps 2-3 - warm-up happens implicitly: when options.warmup is set
    # the noise model never applies the cold-start factor; when it is not,
    # each configuration's first experiment pays it.
    ideals = np.empty((len(requests), n_experiments))
    for k, request in enumerate(requests):
        if request.per_experiment_ideal_ns is not None:
            per_experiment = list(request.per_experiment_ideal_ns)
            if len(per_experiment) < n_experiments:
                raise ValueError(
                    f"per_experiment_ideal_ns has {len(per_experiment)} "
                    f"entries; need {n_experiments}"
                )
            ideals[k] = per_experiment[:n_experiments]
        else:
            ideals[k] = request.ideal_call_ns
    durations = options.repetitions * (ideals + CALL_OVERHEAD_NS)
    first_run_mask = np.arange(n_experiments) == 0
    perturbed = noise.perturb_batch(
        durations, env, range(n_experiments), first_run_mask=first_run_mask
    )
    tsc = np.maximum(perturbed - overhead_estimate_ns, 0.0) * tsc_ghz

    return [
        Measurement(
            kernel_name=request.kernel_name,
            label=options.label,
            trip_count=options.trip_count,
            repetitions=options.repetitions,
            loop_iterations=request.loop_iterations,
            elements_per_iteration=request.elements_per_iteration,
            n_memory_instructions=request.n_memory_instructions,
            experiment_tsc=tuple(float(t) for t in tsc[k]),
            freq_ghz=freq_ghz,
            tsc_ghz=tsc_ghz,
            aggregator=options.aggregator,
            alignments=request.alignments,
            core=request.core,
            n_cores=request.n_cores,
            bottleneck=request.bottleneck,
            metadata=dict(request.metadata or {}),
        )
        for k, request in enumerate(requests)
    ]


def run_measurement(
    *,
    ideal_call_ns: float,
    kernel_name: str,
    options: LauncherOptions,
    loop_iterations: int,
    elements_per_iteration: int,
    n_memory_instructions: int,
    freq_ghz: float,
    tsc_ghz: float,
    noise: NoiseModel,
    alignments: tuple[int, ...] = (),
    core: int | None = None,
    n_cores: int = 1,
    bottleneck: str = "",
    metadata: dict[str, object] | None = None,
    per_experiment_ideal_ns: Sequence[float] | None = None,
) -> Measurement:
    """Replay the Fig.-10 algorithm against the simulated clock.

    ``ideal_call_ns`` is the machine model's duration for one kernel call
    (loop iterations x per-iteration time); ``per_experiment_ideal_ns``
    optionally varies it per outer-loop experiment (unsynchronized
    parallel runs do).  A batch of one on the vectorized fast path — see
    :func:`run_measurement_batch`.
    """
    return run_measurement_batch(
        [
            MeasurementRequest(
                ideal_call_ns=ideal_call_ns,
                kernel_name=kernel_name,
                loop_iterations=loop_iterations,
                elements_per_iteration=elements_per_iteration,
                n_memory_instructions=n_memory_instructions,
                alignments=alignments,
                core=core,
                n_cores=n_cores,
                bottleneck=bottleneck,
                metadata=metadata,
                per_experiment_ideal_ns=per_experiment_ideal_ns,
            )
        ],
        options=options,
        freq_ghz=freq_ghz,
        tsc_ghz=tsc_ghz,
        noise=noise,
    )[0]
