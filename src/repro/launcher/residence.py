"""Residence derivation: footprint rule vs. trace-driven simulation.

The analytic pipeline needs to know which hierarchy level serves each
array stream.  Two policies:

- ``"footprint"`` (default): the paper's construction — an array is
  resident at the smallest level that holds it ("twice the size of the
  underlying memory hierarchy" for the next level, section 5.1).  Exact
  for single-stream kernels, and free.
- ``"trace"``: replay a steady-state sweep of **all** streams together
  through the set-associative cache simulator and read off where each
  stream's lines actually live.  This captures what the footprint rule
  cannot: several arrays *jointly* overflowing a level that each would
  fit alone, and pathological set-aliased layouts.

The trace is line-granular (one probe per touched line, wrapping at the
array size), so cost is proportional to the combined working set in
lines, independent of the element count.
"""

from __future__ import annotations

from repro.launcher.kernel_input import SimKernel
from repro.machine.cache import CacheHierarchy
from repro.machine.config import MachineConfig, MemLevel
from repro.machine.kernel_model import ArrayBinding

#: Cap on probes per replay round, keeping huge arrays affordable.
MAX_PROBES_PER_ROUND = 1 << 16

#: Arrays are laid out in distinct virtual regions this far apart; only
#: the low bits (set index, conflict window) of the alignment matter.
REGION_STRIDE = 1 << 28


def derive_residences(
    sim: SimKernel,
    bindings: dict[str, ArrayBinding],
    machine: MachineConfig,
    *,
    mode: str = "footprint",
) -> dict[str, ArrayBinding]:
    """Return bindings with the residence field resolved per ``mode``."""
    if mode == "footprint":
        return bindings
    if mode != "trace":
        raise ValueError(f"unknown residence mode {mode!r}")

    hierarchy = CacheHierarchy(machine)
    traces: dict[str, list[int]] = {}
    for region, (register, binding) in enumerate(sorted(bindings.items())):
        stream = sim.analysis.streams.get(register)
        if stream is None or not stream.accesses:
            continue
        traces[register] = _line_trace(stream, binding, machine, region)

    if not traces:
        return bindings

    # Interleave the streams round-robin, as the loop touches them, and
    # replay twice: the first round warms, the second measures.
    interleaved = _interleave(list(traces.values()))
    for address in interleaved:
        hierarchy.access(address)

    resolved = dict(bindings)
    for register, trace in traces.items():
        histogram: dict[MemLevel, int] = {}
        for address in trace:
            level = hierarchy.access(address).level
            histogram[level] = histogram.get(level, 0) + 1
        dominant = max(histogram, key=lambda lvl: histogram[lvl])
        resolved[register] = ArrayBinding(
            register=register,
            size_bytes=bindings[register].size_bytes,
            alignment=bindings[register].alignment,
            residence=dominant,
        )
    return resolved


def _line_trace(
    stream, binding: ArrayBinding, machine: MachineConfig, region: int
) -> list[int]:
    """One steady-state sweep of the stream, one probe per touched line."""
    line = machine.cache(MemLevel.L1).line_bytes
    base = region * REGION_STRIDE + binding.alignment
    size = max(binding.size_bytes, line)
    step = abs(stream.step_bytes) or line
    # Lines touched per iteration step; sample one probe per line.
    probe_stride = max(line, step) if step > line else line
    n_probes = min(max(size // probe_stride, 1), MAX_PROBES_PER_ROUND)
    return [base + (i * probe_stride) % size for i in range(n_probes)]


def _interleave(traces: list[list[int]]) -> list[int]:
    out: list[int] = []
    longest = max(len(t) for t in traces)
    for i in range(longest):
        for t in traces:
            out.append(t[i % len(t)])
    return out
