"""Kernel input normalization.

"As input, the launcher accepts any assembly, source code (C or Fortran),
object file, or even a dynamic library" (section 4.1).  In this
reproduction the accepted forms are everything that can reach the machine
model:

- a :class:`~repro.creator.GeneratedKernel` (MicroCreator output),
- an :class:`~repro.isa.AsmProgram`,
- AT&T assembly text or a path to a ``.s`` file,
- a :class:`~repro.compiler.CompiledKernel` (the mini C front-end's
  output — the "C source" input path),

each normalized into a :class:`SimKernel`: the loop body analysis plus
the stream->array mapping the launcher's allocator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.isa.instructions import AsmProgram
from repro.isa.parser import parse_asm
from repro.machine.kernel_model import KernelAnalysis, analyze_kernel

#: Stream base registers in kernel-ABI argument order: array ``k`` of the
#: signature ``int f(int n, void *a0, void *a1, ...)`` arrives in these.
ABI_POINTER_ORDER = ("%rsi", "%rdx", "%rcx", "%r8", "%r9")


class KernelInputError(TypeError):
    """The launcher cannot interpret this object as a kernel."""


@dataclass(slots=True)
class SimKernel:
    """A kernel ready for simulated execution."""

    name: str
    program: AsmProgram
    analysis: KernelAnalysis
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def stream_registers(self) -> list[str]:
        """Memory-stream base registers in ABI argument order.

        Registers outside the ABI pointer set (rare: index-register
        walks) follow, sorted, so every stream gets an array.
        """
        present = [r for r in ABI_POINTER_ORDER if r in self.analysis.streams]
        extras = sorted(r for r in self.analysis.streams if r not in ABI_POINTER_ORDER)
        return present + extras

    @property
    def n_arrays(self) -> int:
        return len(self.stream_registers)

    @property
    def elements_per_iteration(self) -> int:
        return self.analysis.elements_per_iteration

    def loop_iterations_for(self, trip_count: int) -> int:
        """Loop iterations executed for ``n = trip_count`` elements.

        This is the value the Fig.-9 ``%eax`` counter reports back to the
        launcher: the body consumes ``elements_per_iteration`` per trip,
        and the do/while structure always executes at least once.
        """
        return max(1, -(-trip_count // self.elements_per_iteration))


def as_sim_kernel(
    kernel: object, *, name: str | None = None, trip_count: int | None = None
) -> SimKernel:
    """Normalize any accepted input form into a :class:`SimKernel`.

    ``trip_count`` is required when the input is C source (a ``.c`` path
    or text containing a function definition): the C front-end lowers at
    a concrete problem size — the same ``n`` the kernel ABI receives.
    """
    metadata: dict[str, object] = {}

    if isinstance(kernel, SimKernel):
        return kernel

    # GeneratedKernel / CompiledKernel (duck-typed to avoid import cycles).
    program = getattr(kernel, "program", None)
    if isinstance(program, AsmProgram):
        metadata = dict(getattr(kernel, "metadata", {}) or {})
        return _from_program(program, name or program.name, metadata)

    if isinstance(kernel, AsmProgram):
        return _from_program(kernel, name or kernel.name, metadata)

    if isinstance(kernel, Path):
        return as_sim_kernel(str(kernel), name=name or kernel.stem, trip_count=trip_count)

    if isinstance(kernel, str):
        if "\n" not in kernel and kernel.endswith(".s"):
            path = Path(kernel)
            return _from_program(parse_asm(path.read_text()), name or path.stem, metadata)
        if "\n" not in kernel and kernel.endswith(".c"):
            return _from_c_source(Path(kernel).read_text(), name, trip_count)
        if "\n" not in kernel and kernel.endswith((".f", ".f90")):
            return _from_fortran_source(Path(kernel).read_text(), name, trip_count)
        if _looks_like_c(kernel):
            return _from_c_source(kernel, name, trip_count)
        if kernel.lstrip().lower().startswith(("subroutine ", "!$omp")):
            return _from_fortran_source(kernel, name, trip_count)
        return _from_program(parse_asm(kernel), name or "kernel", metadata)

    raise KernelInputError(
        f"cannot interpret {type(kernel).__name__} as a kernel; pass a "
        "GeneratedKernel, AsmProgram, CompiledKernel, assembly or C text, "
        "or a path to a .s/.c file"
    )


def _looks_like_c(text: str) -> bool:
    stripped = text.lstrip()
    return stripped.startswith(("void ", "int ", "#pragma", "/*", "//")) and "{" in text


def _from_c_source(source: str, name: str | None, trip_count: int | None) -> SimKernel:
    if trip_count is None:
        raise KernelInputError(
            "C source needs a problem size to lower at; pass trip_count "
            "(the launcher forwards options.trip_count automatically)"
        )
    from repro.compiler.cparse import CParseError, compile_c

    try:
        compiled = compile_c(source, n=trip_count, name=name)
    except CParseError as exc:
        raise KernelInputError(f"cannot compile C kernel: {exc}") from exc
    return as_sim_kernel(compiled)


def _from_fortran_source(
    source: str, name: str | None, trip_count: int | None
) -> SimKernel:
    if trip_count is None:
        raise KernelInputError(
            "Fortran source needs a problem size to lower at; pass trip_count"
        )
    from repro.compiler.fparse import FortranParseError, compile_fortran

    try:
        compiled = compile_fortran(source, n=trip_count, name=name)
    except FortranParseError as exc:
        raise KernelInputError(f"cannot compile Fortran kernel: {exc}") from exc
    return as_sim_kernel(compiled)


def _from_program(program: AsmProgram, name: str, metadata: dict[str, object]) -> SimKernel:
    try:
        _, body = program.kernel_loop()
    except ValueError as exc:
        raise KernelInputError(str(exc)) from exc
    return SimKernel(
        name=name,
        program=program,
        analysis=analyze_kernel(body),
        metadata=metadata,
    )
