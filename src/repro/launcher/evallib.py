"""Evaluation libraries (paper section 4.2).

"The user may switch the evaluation library to a custom library if the
default *rdtsc* register is not required."  The launcher's default
measurement is the simulated TSC; this module adds the alternative: a
performance-counter library that reports per-call event counts alongside
the timing — retired instructions, loads/stores, line fills per level,
and the model's port-occupancy estimates.

Counters are derived from the same kernel analysis the cycle model uses,
scaled by the executed iteration count, so they are exact (hardware
counters count, they do not sample) and they give tests and users an
independent cross-check of the timing model's inputs.
"""

from __future__ import annotations

from typing import Protocol

from repro.machine.config import MachineConfig, MemLevel
from repro.machine.kernel_model import ArrayBinding, KernelAnalysis

#: Registry of evaluation libraries by option name.
EVAL_LIBRARIES = ("rdtsc", "events")


class EvalLibrary(Protocol):  # pragma: no cover - typing aid
    def counters(
        self,
        analysis: KernelAnalysis,
        bindings: dict[str, ArrayBinding],
        machine: MachineConfig,
        loop_iterations: int,
    ) -> dict[str, float]:
        ...


class RdtscLibrary:
    """The default: timing only, no event counters."""

    name = "rdtsc"

    def counters(self, analysis, bindings, machine, loop_iterations):
        return {}


class EventCounterLibrary:
    """Per-call event counts, derived from the kernel analysis."""

    name = "events"

    def counters(
        self,
        analysis: KernelAnalysis,
        bindings: dict[str, ArrayBinding],
        machine: MachineConfig,
        loop_iterations: int,
    ) -> dict[str, float]:
        counts: dict[str, float] = {
            "instructions": analysis.n_instructions * loop_iterations,
            "uops": analysis.n_uops * loop_iterations,
            "loads": analysis.n_loads * loop_iterations,
            "stores": analysis.n_stores * loop_iterations,
            "branches": analysis.port_demand.get("branch", 0.0) * loop_iterations,
        }
        fills = {MemLevel.L2: 0.0, MemLevel.L3: 0.0, MemLevel.RAM: 0.0}
        for stream in analysis.streams.values():
            if not stream.accesses:
                continue
            binding = bindings.get(stream.base)
            level = binding.resolve_residence(machine) if binding else MemLevel.L1
            if level == MemLevel.L1:
                continue
            alignment = binding.alignment if binding else 0
            fills[level] += stream.touched_lines(alignment) * loop_iterations
        counts["l2_lines_in"] = fills[MemLevel.L2]
        counts["l3_lines_in"] = fills[MemLevel.L3]
        counts["dram_lines_in"] = fills[MemLevel.RAM]
        counts["bytes_accessed"] = (
            sum(s.bytes_accessed for s in analysis.streams.values())
            * loop_iterations
        )
        for port, demand in analysis.port_demand.items():
            counts[f"port_{port}_uops"] = demand * loop_iterations
        return counts


def eval_library(name: str) -> RdtscLibrary | EventCounterLibrary:
    """Look up an evaluation library by option name."""
    if name == "rdtsc":
        return RdtscLibrary()
    if name == "events":
        return EventCounterLibrary()
    raise ValueError(
        f"unknown evaluation library {name!r}; have {EVAL_LIBRARIES}"
    )
