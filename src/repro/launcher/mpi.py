"""MPI-style execution model (paper future work).

Section 7 lists "fully supporting every OpenMP/MPI constructs" as future
work for MicroCreator/MicroLauncher; this module adds the MPI side of the
execution model, complementing :mod:`repro.launcher.parallel`'s fork and
OpenMP modes.

The model: ``mpi_ranks`` single-threaded processes, pinned like a forked
run, each executing the kernel on its own arrays (the HPC
process-per-core profile).  After every kernel invocation each rank
exchanges a halo of ``mpi_message_bytes`` with its two ring neighbours —
the canonical stencil communication pattern.  A message costs::

    latency + bytes / bandwidth

with different (latency, bandwidth) for intra-socket (shared L3) and
inter-socket (QPI-class link) neighbour pairs, so compact pinning
communicates faster but saturates memory earlier — the same placement
trade-off the fork experiments expose, now with a communication term.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import statistics

from repro.launcher.arrays import ArrayAllocator
from repro.launcher.kernel_input import as_sim_kernel
from repro.launcher.measurement import Measurement, run_measurement
from repro.launcher.options import LauncherOptions
from repro.machine.pipeline import estimate_iteration_time


@dataclass(frozen=True, slots=True)
class LinkModel:
    """Point-to-point message costs by neighbour placement."""

    intra_socket_latency_ns: float = 600.0
    intra_socket_bandwidth: float = 8.0  # bytes / ns
    inter_socket_latency_ns: float = 1400.0
    inter_socket_bandwidth: float = 4.0

    def message_ns(self, nbytes: int, *, same_socket: bool) -> float:
        if nbytes <= 0:
            return 0.0
        if same_socket:
            return self.intra_socket_latency_ns + nbytes / self.intra_socket_bandwidth
        return self.inter_socket_latency_ns + nbytes / self.inter_socket_bandwidth


@dataclass(slots=True)
class MPIResult:
    """Outcome of an MPI-model run."""

    per_rank: list[Measurement] = field(default_factory=list)
    pinned_cores: list[int] = field(default_factory=list)
    communication_ns_per_call: float = 0.0
    compute_ns_per_call: float = 0.0

    @property
    def n_ranks(self) -> int:
        return len(self.per_rank)

    @property
    def mean_cycles_per_iteration(self) -> float:
        return statistics.fmean(m.cycles_per_iteration for m in self.per_rank)

    @property
    def communication_fraction(self) -> float:
        total = self.communication_ns_per_call + self.compute_ns_per_call
        return self.communication_ns_per_call / total if total else 0.0


def run_mpi(
    launcher,
    kernel: object,
    options: LauncherOptions,
    *,
    ranks: int,
    message_bytes: int = 0,
    link: LinkModel | None = None,
) -> MPIResult:
    """Run ``ranks`` pinned MPI processes with ring halo exchange.

    Every rank computes its own copy of the kernel (weak scaling, like
    the paper's forked runs) and then exchanges ``message_bytes`` with
    each ring neighbour; the exchange serializes after the compute, so
    the per-call time is ``compute + slowest neighbour exchange``.
    """
    link = link or LinkModel()
    sim = as_sim_kernel(kernel, trip_count=options.trip_count)
    machine = launcher.machine
    if options.pin_policy == "compact":
        pinned = machine.pin_compact(ranks)
    else:
        pinned = machine.pin_scatter(ranks)
    allocator = ArrayAllocator(sim, options)
    freq = options.frequency_ghz or launcher.config.freq_ghz
    loop_iters = sim.loop_iterations_for(options.trip_count)

    result = MPIResult(pinned_cores=pinned)
    for rank, core_id in enumerate(pinned):
        peers = machine.peers_on_socket(core_id, pinned)
        timing = estimate_iteration_time(
            sim.analysis,
            allocator.bindings(),
            launcher.config,
            active_cores_on_socket=peers,
        )
        compute_ns = timing.time_ns(freq) * loop_iters
        comm_ns = 0.0
        if ranks > 1 and message_bytes > 0:
            for neighbour in ((rank - 1) % ranks, (rank + 1) % ranks):
                same = machine.socket_of(pinned[neighbour]) == machine.socket_of(core_id)
                comm_ns = max(
                    comm_ns, link.message_ns(message_bytes, same_socket=same)
                )
        measurement = run_measurement(
            ideal_call_ns=compute_ns + comm_ns,
            kernel_name=sim.name,
            options=options,
            loop_iterations=loop_iters,
            elements_per_iteration=sim.elements_per_iteration,
            n_memory_instructions=sim.analysis.n_loads + sim.analysis.n_stores,
            freq_ghz=freq,
            tsc_ghz=launcher.config.freq_ghz,
            noise=launcher._noise_for(options, 1000 + core_id),
            core=core_id,
            n_cores=ranks,
            bottleneck=timing.bottleneck,
            metadata=dict(
                sim.metadata,
                rank=rank,
                socket=machine.socket_of(core_id),
                comm_ns=comm_ns,
            ),
        )
        result.per_rank.append(measurement)
        result.compute_ns_per_call = max(result.compute_ns_per_call, compute_ns)
        result.communication_ns_per_call = max(
            result.communication_ns_per_call, comm_ns
        )
    launcher._maybe_csv(options, result.per_rank)
    return result
