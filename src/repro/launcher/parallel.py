"""Parallel execution models: process forking and OpenMP.

Forking (section 4.6): MicroLauncher "forks its execution into multiple
launchers, pins each to a separate core; after synchronization, it records
the time taken to execute the benchmark."  Every forked process runs the
*same* sequential kernel on its own arrays; what couples them is the
shared memory system — per-socket DRAM bandwidth divides among the
processes pinned there, which is the entire story of Fig. 14.

OpenMP (section 5.2.3): one kernel's trip count divides among threads;
every kernel invocation is a parallel region paying a fork/join overhead,
and the threads share socket bandwidth.  Amdahl on the region overhead
plus the bandwidth roofline reproduce Table 2's flat OpenMP column.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import statistics

from repro.launcher.arrays import ArrayAllocator
from repro.launcher.kernel_input import as_sim_kernel
from repro.launcher.measurement import Measurement, run_measurement
from repro.launcher.options import LauncherOptions
from repro.machine.noise import NoiseModel
from repro.machine.pipeline import estimate_iteration_time


@dataclass(slots=True, repr=False)
class ForkResult:
    """Outcome of a forked multi-core run."""

    per_core: list[Measurement] = field(default_factory=list)
    pinned_cores: list[int] = field(default_factory=list)

    def __repr__(self) -> str:
        # Summarized rather than the dataclass default (which would dump
        # every per-core Measurement), and total for the degraded case:
        # an all-quarantined campaign yields an empty co-run, where the
        # aggregate properties are NaN by contract — never an exception.
        return (
            f"ForkResult(n_cores={self.n_cores}, "
            f"cores={self.pinned_cores!r}, "
            f"mean_cpi={self.mean_cycles_per_iteration:.4g}, "
            f"max_cpi={self.max_cycles_per_iteration:.4g}, "
            f"spread={self.spread:.4g})"
        )

    @property
    def n_cores(self) -> int:
        return len(self.per_core)

    @property
    def mean_cycles_per_iteration(self) -> float:
        """NaN when no cores ran — an empty co-run has no timing at all."""
        if not self.per_core:
            return float("nan")
        return statistics.fmean(m.cycles_per_iteration for m in self.per_core)

    @property
    def max_cycles_per_iteration(self) -> float:
        """The slowest process — the completion time that matters for the
        synchronized co-run.  NaN when no cores ran."""
        if not self.per_core:
            return float("nan")
        return max(m.cycles_per_iteration for m in self.per_core)

    @property
    def spread(self) -> float:
        if not self.per_core:
            return float("nan")
        values = [m.cycles_per_iteration for m in self.per_core]
        lo = min(values)
        return (max(values) - lo) / lo if lo else 0.0


@dataclass(slots=True)
class OpenMPResult:
    """Outcome of an OpenMP-model run."""

    measurement: Measurement
    threads: int
    region_overhead_ns: float
    total_seconds: float

    @property
    def cycles_per_iteration(self) -> float:
        """Cycles per *global* loop iteration, the Fig. 17/18 Y axis.

        The measurement's loop iterations are per-thread; dividing the
        per-call time by the global iteration count lets the sequential
        and OpenMP series share an axis.
        """
        return self.measurement.cycles_per_iteration

    @property
    def min_cycles_per_iteration(self) -> float:
        return self.measurement.min_cycles_per_iteration

    @property
    def max_cycles_per_iteration(self) -> float:
        return self.measurement.max_cycles_per_iteration


def run_forked(launcher, kernel: object, options: LauncherOptions) -> ForkResult:
    """Run ``options.n_cores`` pinned copies of the kernel concurrently."""
    sim = as_sim_kernel(kernel, trip_count=options.trip_count)
    machine = launcher.machine
    if options.pin_policy == "compact":
        pinned = machine.pin_compact(options.n_cores)
    else:
        pinned = machine.pin_scatter(options.n_cores)
    allocator = ArrayAllocator(sim, options)
    freq = options.frequency_ghz or launcher.config.freq_ghz
    loop_iters = sim.loop_iterations_for(options.trip_count)
    result = ForkResult(pinned_cores=pinned)
    for core_id in pinned:
        peers = machine.peers_on_socket(core_id, pinned)
        bindings = allocator.bindings()
        timing = estimate_iteration_time(
            sim.analysis, bindings, launcher.config, active_cores_on_socket=peers
        )
        per_experiment = None
        if not options.sync_start:
            # Unsynchronized processes overlap only partially: each
            # experiment sees a random number of concurrent peers, so the
            # measured contention is both lower and unstable — the reason
            # the launcher synchronizes before timing.
            rng = NoiseModel(seed=options.noise_seed + core_id).rng_for(0)
            per_experiment = []
            # Budget, not count: adaptive stopping may consume up to
            # max_experiments, and the ideals must cover the whole grid.
            for _ in range(options.experiment_budget):
                active = int(rng.integers(1, peers + 1))
                t = estimate_iteration_time(
                    sim.analysis,
                    bindings,
                    launcher.config,
                    active_cores_on_socket=active,
                )
                per_experiment.append(t.time_ns(freq) * loop_iters)
        measurement = run_measurement(
            ideal_call_ns=timing.time_ns(freq) * loop_iters,
            kernel_name=sim.name,
            options=options,
            loop_iterations=loop_iters,
            elements_per_iteration=sim.elements_per_iteration,
            n_memory_instructions=sim.analysis.n_loads + sim.analysis.n_stores,
            freq_ghz=freq,
            tsc_ghz=launcher.config.freq_ghz,
            noise=launcher._noise_for(options, core_id),
            core=core_id,
            n_cores=options.n_cores,
            bottleneck=timing.bottleneck,
            metadata=dict(sim.metadata, socket=machine.socket_of(core_id), peers=peers),
            per_experiment_ideal_ns=per_experiment,
        )
        result.per_core.append(measurement)
    launcher._maybe_csv(options, result.per_core)
    return result


def run_openmp(launcher, kernel: object, options: LauncherOptions) -> OpenMPResult:
    """Run the kernel under the OpenMP execution model.

    The trip count splits evenly over ``options.omp_threads`` threads
    (static schedule); each kernel invocation is one parallel region and
    pays ``omp_region_overhead_ns`` for fork/join.  Threads are pinned one
    per core ("MicroLauncher lets the OpenMP runtime pin the threads on
    each separate core") and share socket bandwidth accordingly.
    """
    sim = as_sim_kernel(kernel, trip_count=options.trip_count)
    machine = launcher.machine
    threads = max(1, options.omp_threads)
    if threads > len(machine.cores):
        raise ValueError(
            f"{threads} threads exceed {launcher.config.name}'s "
            f"{len(machine.cores)} cores"
        )
    pinned = machine.pin_compact(threads)
    freq = options.frequency_ghz or launcher.config.freq_ghz

    # Per-thread share of the global iteration space.
    global_iters = sim.loop_iterations_for(options.trip_count)
    per_thread_iters = max(1, -(-global_iters // threads))

    # The region runs at the pace of the slowest thread; with an even
    # split that is any thread on the most-contended socket.
    worst_ns = 0.0
    bottleneck = ""
    bindings = ArrayAllocator(sim, options).bindings()
    for core_id in pinned:
        peers = machine.peers_on_socket(core_id, pinned)
        timing = estimate_iteration_time(
            sim.analysis, bindings, launcher.config, active_cores_on_socket=peers
        )
        thread_ns = timing.time_ns(freq) * per_thread_iters
        if thread_ns > worst_ns:
            worst_ns = thread_ns
            bottleneck = timing.bottleneck
    region_ns = options.omp_region_overhead_ns if threads > 1 else 0.0
    call_ns = worst_ns + region_ns

    measurement = run_measurement(
        ideal_call_ns=call_ns,
        kernel_name=sim.name,
        options=options,
        loop_iterations=global_iters,
        elements_per_iteration=sim.elements_per_iteration,
        n_memory_instructions=sim.analysis.n_loads + sim.analysis.n_stores,
        freq_ghz=freq,
        tsc_ghz=launcher.config.freq_ghz,
        noise=launcher._noise_for(options, threads),
        n_cores=threads,
        bottleneck=bottleneck,
        metadata=dict(sim.metadata, omp_threads=threads),
    )
    total_seconds = measurement.total_seconds
    launcher._maybe_csv(options, [measurement])
    return OpenMPResult(
        measurement=measurement,
        threads=threads,
        region_overhead_ns=region_ns,
        total_seconds=total_seconds,
    )
