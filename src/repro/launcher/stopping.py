"""Adaptive RCIW stopping: spend experiments where the noise is.

Fixed-count measurement runs every configuration for
``LauncherOptions.experiments`` outer-loop experiments regardless of how
noisy it is — stable configs waste time, noisy ones ship untrustworthy
numbers.  This module implements the sequential-sampling alternative
(nanoBench's variability-aware measurement, with the LLM4JMH RCIW
convergence rule as the stopping test): run experiments in batches,
bootstrap the confidence interval of mean cycles-per-iteration after
each batch, and stop a configuration as soon as its *relative
confidence-interval width* ``(ci_high - ci_low) / mean`` falls to or
under ``rciw_target`` — or unconditionally at ``max_experiments``.

Determinism is structural, not incidental:

- The noise process draws per ``(seed, experiment-index)`` stream, and
  :meth:`~repro.machine.noise.NoiseModel.perturb_batch` is element-wise
  — a cell depends only on its own duration and experiment index, never
  on which other configurations share the batch.  Adaptive samples are
  therefore a *prefix* of the fixed-count run's samples: configurations
  that converge drop out of later rounds without shifting anybody
  else's draws, and ``min_experiments == max_experiments`` reproduces
  the fixed path bit-for-bit.
- Bootstrap resampling uses a shared index matrix keyed only by
  ``(seed, n_samples)`` — independent of configuration order, batch
  composition, chunking, worker count, and resume position.

Both properties are pinned by ``tests/launcher/test_stopping.py`` and
``tests/engine/test_adaptive_campaign.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.launcher.measurement import (
    CALL_OVERHEAD_NS,
    Measurement,
    MeasurementRequest,
)
from repro.launcher.options import LauncherOptions
from repro.machine.noise import NoiseEnvironment, NoiseModel

#: Bootstrap resamples per convergence check.  Enough for a stable
#: percentile CI of the mean at microbenchmark sample sizes; small
#: enough that the check is negligible next to the perturbation grid.
BOOTSTRAP_RESAMPLES = 200

#: Two-sided confidence level of the bootstrapped interval.
CONFIDENCE = 0.95

#: Histogram bounds for the per-job experiments-spent metric.
EXPERIMENT_BUCKETS = (4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Cached resample-index matrices, keyed by ``(|seed|, n_samples)``.
#: A campaign re-checks convergence at the same handful of sample counts
#: for every job sharing a noise seed; the matrix depends on nothing
#: else, so it is drawn once.
_RESAMPLE_CACHE: dict[tuple[int, int], np.ndarray] = {}

_RESAMPLE_CACHE_MAX = 1 << 10

#: Seed-sequence tag separating bootstrap streams from the noise
#: process's per-experiment streams (which use ``experiment + 1_000_003``).
_BOOTSTRAP_STREAM_TAG = 2_000_003


def adaptive_overrides(
    rciw_target: float | None = None,
    min_experiments: int | None = None,
    max_experiments: int | None = None,
    batch_size: int | None = None,
) -> dict[str, object]:
    """Non-``None`` adaptive knobs as ``LauncherOptions`` field overrides.

    The CLIs and the analysis experiments thread optional adaptive
    settings through to option construction; leaving a knob unset must
    leave the corresponding field untouched (digest stability — see
    ``repro.engine.serialize.options_to_dict``), so only explicit values
    survive into the override dict.
    """
    overrides = {
        "rciw_target": rciw_target,
        "min_experiments": min_experiments,
        "max_experiments": max_experiments,
        "batch_size": batch_size,
    }
    return {k: v for k, v in overrides.items() if v is not None}


#: Default stopping parameters for instruction-characterization probes
#: (``repro.characterize``).  Probe kernels are register-only — no memory
#: streams, so the noise floor is the baseline jitter alone — and the
#: solver differences pairs of probe readings, doubling their error.
#: A 1 % RCIW target converges in the minimum batch on a quiet machine
#: while still bounding the table's solve error well under one cycle.
PROBE_RCIW_TARGET = 0.01
PROBE_MIN_EXPERIMENTS = 3
PROBE_MAX_EXPERIMENTS = 32
PROBE_BATCH_SIZE = 4


def probe_stopping_defaults(
    rciw_target: float | None = None,
    min_experiments: int | None = None,
    max_experiments: int | None = None,
    batch_size: int | None = None,
) -> dict[str, object]:
    """Adaptive-stopping option overrides for characterization probes.

    Like :func:`adaptive_overrides`, but every unset knob falls back to
    the probe defaults above instead of staying untouched: a
    characterization campaign is always adaptive — fixed-count probes
    would spend the whole budget on configurations that converge in the
    first batch.
    """
    return {
        "rciw_target": PROBE_RCIW_TARGET if rciw_target is None else rciw_target,
        "min_experiments": (
            PROBE_MIN_EXPERIMENTS if min_experiments is None else min_experiments
        ),
        "max_experiments": (
            PROBE_MAX_EXPERIMENTS if max_experiments is None else max_experiments
        ),
        "batch_size": PROBE_BATCH_SIZE if batch_size is None else batch_size,
    }


def resample_indices(seed: int, n_samples: int) -> np.ndarray:
    """The shared bootstrap index matrix for ``n_samples`` observations.

    Shape ``(BOOTSTRAP_RESAMPLES, n_samples)``, values in
    ``[0, n_samples)``.  Keyed only by ``(|seed|, n_samples)`` so every
    configuration with the same sample count resamples identically — the
    property that makes adaptive convergence independent of batch
    composition and config order.
    """
    key = (abs(seed), n_samples)
    indices = _RESAMPLE_CACHE.get(key)
    if indices is None:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                (abs(seed), _BOOTSTRAP_STREAM_TAG, n_samples)
            )
        )
        indices = rng.integers(
            0, n_samples, size=(BOOTSTRAP_RESAMPLES, n_samples)
        )
        if len(_RESAMPLE_CACHE) >= _RESAMPLE_CACHE_MAX:
            _RESAMPLE_CACHE.clear()
        _RESAMPLE_CACHE[key] = indices
    return indices


def bootstrap_ci(
    samples: Sequence[float], seed: int
) -> tuple[float, float, float]:
    """Bootstrapped CI of the mean, clamped to bracket the sample mean.

    Returns ``(ci_low, ci_high, rciw)`` where ``rciw`` is the relative
    CI width ``(ci_high - ci_low) / mean``.  The percentile interval is
    clamped outward to include the sample mean so the reported bounds
    always bracket the reported statistic (a documented invariant, not a
    numerical accident — with few samples the percentile method can
    otherwise exclude the point estimate).
    """
    values = np.asarray(samples, dtype=np.float64)
    mean = float(values.mean())
    if len(values) < 2:
        return mean, mean, 0.0
    indices = resample_indices(seed, len(values))
    means = values[indices].mean(axis=1)
    alpha = 100.0 * (1.0 - CONFIDENCE) / 2.0
    lo, hi = np.percentile(means, (alpha, 100.0 - alpha))
    ci_low = min(float(lo), mean)
    ci_high = max(float(hi), mean)
    if mean > 0.0:
        rciw = (ci_high - ci_low) / mean
    else:
        rciw = 0.0 if ci_high == ci_low else float("inf")
    return ci_low, ci_high, rciw


def run_adaptive_measurement_batch(
    requests: Sequence[MeasurementRequest],
    *,
    options: LauncherOptions,
    freq_ghz: float,
    tsc_ghz: float,
    noise: NoiseModel,
) -> list[Measurement]:
    """The Fig.-10 algorithm under the adaptive RCIW stopping rule.

    Runs an initial batch of ``min_experiments`` for every configuration,
    then rounds of ``batch_size`` for the configurations whose relative
    CI width still exceeds ``rciw_target`` — re-batched together through
    one :meth:`~repro.machine.noise.NoiseModel.perturb_batch` grid per
    round, never measured one at a time.  A configuration that never
    converges stops at ``max_experiments`` with ``converged=False``.

    Drop-in for :func:`~repro.launcher.measurement.run_measurement_batch`
    (which dispatches here whenever ``options.adaptive``); every returned
    record carries the quality fields ``ci_low`` / ``ci_high`` / ``rciw``
    / ``converged``, and its ``experiment_tsc`` prefix is bit-identical
    to what the fixed-count path produces for the same seed.
    """
    requests = list(requests)
    if not requests:
        return []
    env = NoiseEnvironment(
        pinned=options.pin,
        interrupts_disabled=options.disable_interrupts,
        warmed_up=options.warmup,
        inner_repetitions=options.repetitions,
    )
    budget = options.max_experiments

    # Overhead measurement: stream -1, one estimate for the whole batch —
    # exactly the fixed path's step 1.
    overhead_estimate_ns = 0.0
    if options.subtract_overhead:
        raw = options.repetitions * CALL_OVERHEAD_NS
        overhead_estimate_ns = float(
            noise.perturb_batch(np.array([raw]), env, (-1,))[0]
        )

    # Ideal durations for the full budget up front; adaptive rounds slice
    # columns out of this grid.
    ideals = np.empty((len(requests), budget))
    for k, request in enumerate(requests):
        if request.per_experiment_ideal_ns is not None:
            per_experiment = list(request.per_experiment_ideal_ns)
            if len(per_experiment) < budget:
                raise ValueError(
                    f"per_experiment_ideal_ns has {len(per_experiment)} "
                    f"entries; adaptive stopping needs max_experiments "
                    f"({budget})"
                )
            ideals[k] = per_experiment[:budget]
        else:
            ideals[k] = request.ideal_call_ns
    durations_full = options.repetitions * (ideals + CALL_OVERHEAD_NS)

    # Cycles-per-iteration divisor per configuration; the bootstrap runs
    # on the headline metric, not raw TSC, so rciw_target means the same
    # thing across repetition/unroll settings.
    divisors = np.array(
        [options.repetitions * r.loop_iterations for r in requests],
        dtype=np.float64,
    )

    tsc_samples: list[list[float]] = [[] for _ in requests]
    quality: list[tuple[float, float, float, bool] | None] = [None] * len(
        requests
    )
    live = list(range(len(requests)))
    n_done = 0
    while live:
        step = options.min_experiments if n_done == 0 else options.batch_size
        step = min(step, budget - n_done)
        exp_indices = range(n_done, n_done + step)
        first_run_mask = np.arange(n_done, n_done + step) == 0
        durations = durations_full[np.array(live)][:, n_done : n_done + step]
        perturbed = noise.perturb_batch(
            durations, env, exp_indices, first_run_mask=first_run_mask
        )
        tsc = np.maximum(perturbed - overhead_estimate_ns, 0.0) * tsc_ghz
        n_done += step

        still_live = []
        for row, cfg in enumerate(live):
            tsc_samples[cfg].extend(float(t) for t in tsc[row])
            cpi = np.asarray(tsc_samples[cfg]) / divisors[cfg]
            ci_low, ci_high, rciw = bootstrap_ci(cpi, noise.seed)
            converged = rciw <= options.rciw_target
            if converged or n_done >= budget:
                quality[cfg] = (ci_low, ci_high, rciw, converged)
                obs.count(
                    "stopping.converged" if converged else "stopping.capped"
                )
                obs.observe(
                    "stopping.experiments",
                    float(n_done),
                    bounds=EXPERIMENT_BUCKETS,
                )
            else:
                still_live.append(cfg)
        live = still_live

    results = []
    for k, request in enumerate(requests):
        ci_low, ci_high, rciw, converged = quality[k]  # type: ignore[misc]
        results.append(
            Measurement(
                kernel_name=request.kernel_name,
                label=options.label,
                trip_count=options.trip_count,
                repetitions=options.repetitions,
                loop_iterations=request.loop_iterations,
                elements_per_iteration=request.elements_per_iteration,
                n_memory_instructions=request.n_memory_instructions,
                experiment_tsc=tuple(tsc_samples[k]),
                freq_ghz=freq_ghz,
                tsc_ghz=tsc_ghz,
                aggregator=options.aggregator,
                alignments=request.alignments,
                core=request.core,
                n_cores=request.n_cores,
                bottleneck=request.bottleneck,
                metadata=dict(request.metadata or {}),
                ci_low=ci_low,
                ci_high=ci_high,
                rciw=rciw,
                converged=converged,
            )
        )
    return results
