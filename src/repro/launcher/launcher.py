"""The MicroLauncher front-end."""

from __future__ import annotations

from pathlib import Path

from repro import obs
from repro.launcher.arrays import AlignmentSweep, ArrayAllocator
from repro.launcher.csvout import write_csv
from repro.launcher.kernel_input import SimKernel, as_sim_kernel
from repro.launcher.measurement import (
    Measurement,
    MeasurementRequest,
    MeasurementSeries,
    run_measurement_batch,
)
from repro.launcher.options import LauncherOptions
from repro.machine.config import MachineConfig, nehalem_2s_x5650
from repro.machine.kernel_model import ArrayBinding
from repro.machine.noise import NoiseModel
from repro.machine.pipeline import estimate_iteration_time
from repro.machine.topology import Machine


class MicroLauncher:
    """Executes benchmark programs in a contained, controlled environment.

    Parameters
    ----------
    machine:
        The simulated machine (defaults to the dual-socket Nehalem behind
        most of the paper's figures).
    noise:
        The environmental-noise process; defaults to a model seeded from
        each run's ``noise_seed`` option, so results are reproducible per
        configuration.
    """

    def __init__(
        self, machine: MachineConfig | None = None, *, noise: NoiseModel | None = None
    ) -> None:
        self.config = machine or nehalem_2s_x5650()
        self.machine = Machine(self.config)
        self._noise_override = noise

    # ------------------------------------------------------------------ #
    # sequential execution                                                 #
    # ------------------------------------------------------------------ #

    def run(
        self,
        kernel: object,
        options: LauncherOptions | None = None,
        *,
        active_cores_on_socket: int = 1,
        noise_salt: int = 0,
    ) -> Measurement:
        """Measure one kernel configuration (sequential, pinned).

        The run follows the paper's flow: normalize the input (section
        4.1), allocate and align arrays, pin to ``options.core``, heat the
        caches, run the Fig.-10 loops, and report cycles per iteration.
        """
        options = options or LauncherOptions()
        sim = as_sim_kernel(kernel, trip_count=options.trip_count)
        bindings = ArrayAllocator(sim, options).bindings()
        return self._measure(
            sim,
            options,
            bindings,
            active_cores_on_socket=active_cores_on_socket,
            core=options.core if options.pin else None,
            noise_salt=noise_salt,
        )

    def run_with_bindings(
        self,
        kernel: object,
        bindings: dict[str, ArrayBinding],
        options: LauncherOptions | None = None,
        *,
        active_cores_on_socket: int = 1,
        noise_salt: int = 0,
    ) -> Measurement:
        """Measure with caller-supplied array bindings.

        For studies that know residence better than the footprint rule
        does — the matmul analysis binds each stream to the level its
        reuse distance dictates.
        """
        options = options or LauncherOptions()
        sim = as_sim_kernel(kernel, trip_count=options.trip_count)
        return self._measure(
            sim,
            options,
            bindings,
            active_cores_on_socket=active_cores_on_socket,
            core=options.core if options.pin else None,
            alignments=tuple(b.alignment for b in bindings.values()),
            noise_salt=noise_salt,
        )

    def run_batch(
        self,
        kernels: object,
        options: LauncherOptions | None = None,
        *,
        active_cores_on_socket: int = 1,
        noise_salt: int = 0,
    ) -> MeasurementSeries:
        """Measure many kernel configurations in one vectorized sweep.

        The batched equivalent of ``[self.run(k, options) for k in
        kernels]`` — every kernel is normalized and modelled
        individually, then the whole family replays the Fig.-10 loops in
        a single :func:`~repro.launcher.measurement.run_measurement_batch`
        call sharing one noise context.  Results are bit-identical to the
        sequential loop; wall-clock is dominated by the model evaluation
        instead of per-measurement noise-stream setup.
        """
        options = options or LauncherOptions()
        with obs.span("launcher.run_batch") as batch_span:
            requests = []
            with obs.span("launcher.normalize", metric="launcher.model.duration_ms"):
                for kernel in kernels:
                    sim = as_sim_kernel(kernel, trip_count=options.trip_count)
                    bindings = ArrayAllocator(sim, options).bindings()
                    requests.append(
                        self._request(
                            sim,
                            options,
                            bindings,
                            active_cores_on_socket=active_cores_on_socket,
                            core=options.core if options.pin else None,
                        )
                    )
            batch_span.set(batch=len(requests))
            obs.observe("launcher.batch.size", len(requests), bounds=obs.SIZE_BUCKETS)
            with obs.span("launcher.measure", metric="launcher.sim.duration_ms"):
                measurements = run_measurement_batch(
                    requests,
                    options=options,
                    freq_ghz=options.frequency_ghz or self.config.freq_ghz,
                    tsc_ghz=self.config.freq_ghz,
                    noise=self._noise_for(options, noise_salt),
                )
        self._maybe_csv(options, measurements)
        return MeasurementSeries(measurements)

    def run_alignment_sweep(
        self,
        kernel: object,
        options: LauncherOptions | None = None,
        *,
        active_cores_on_socket: int = 1,
    ) -> MeasurementSeries:
        """Measure every alignment configuration of the sweep range.

        "When considering alignments, MicroLauncher tests a variety of
        alignment settings for each allocated array" (section 5.2.2).
        ``active_cores_on_socket`` models the sweep running as one process
        of a multi-core co-run (Figs. 15/16 sweep alignments while 8 or 32
        cores execute the kernel).
        """
        options = options or LauncherOptions()
        sim = as_sim_kernel(kernel, trip_count=options.trip_count)
        allocator = ArrayAllocator(sim, options)
        sweep = AlignmentSweep(n_arrays=sim.n_arrays, options=options)
        series = MeasurementSeries()
        for config_id, alignments in enumerate(sweep.configurations()):
            bindings = allocator.bindings(alignments)
            m = self._measure(
                sim,
                options,
                bindings,
                active_cores_on_socket=active_cores_on_socket,
                core=options.core if options.pin else None,
                alignments=alignments,
                noise_salt=config_id,
                extra_metadata={"alignment_config": config_id},
            )
            series.append(m)
        self._maybe_csv(options, list(series))
        return series

    # ------------------------------------------------------------------ #
    # internals                                                            #
    # ------------------------------------------------------------------ #

    def _noise_for(self, options: LauncherOptions, salt: int) -> NoiseModel:
        if self._noise_override is not None:
            return self._noise_override
        return NoiseModel(seed=options.noise_seed + salt)

    def _request(
        self,
        sim: SimKernel,
        options: LauncherOptions,
        bindings: dict[str, ArrayBinding],
        *,
        active_cores_on_socket: int,
        core: int | None,
        alignments: tuple[int, ...] = (),
        n_cores: int = 1,
        extra_metadata: dict[str, object] | None = None,
    ) -> MeasurementRequest:
        """Evaluate the machine model for one configuration.

        Everything up to (but excluding) the noisy Fig.-10 replay: the
        noise-free half of a measurement, batchable across a sweep.
        """
        freq = options.frequency_ghz or self.config.freq_ghz
        if options.residence_mode != "footprint":
            from repro.launcher.residence import derive_residences

            bindings = derive_residences(
                sim, bindings, self.config, mode=options.residence_mode
            )
        timing = estimate_iteration_time(
            sim.analysis,
            bindings,
            self.config,
            active_cores_on_socket=active_cores_on_socket,
        )
        iter_ns = timing.time_ns(freq)
        loop_iters = sim.loop_iterations_for(options.trip_count)
        metadata = dict(sim.metadata)
        metadata.update(extra_metadata or {})
        if options.eval_library != "rdtsc":
            from repro.launcher.evallib import eval_library

            metadata["counters"] = eval_library(options.eval_library).counters(
                sim.analysis, bindings, self.config, loop_iters
            )
        return MeasurementRequest(
            ideal_call_ns=iter_ns * loop_iters,
            kernel_name=sim.name,
            loop_iterations=loop_iters,
            elements_per_iteration=sim.elements_per_iteration,
            n_memory_instructions=sim.analysis.n_loads + sim.analysis.n_stores,
            alignments=alignments,
            core=core,
            n_cores=n_cores,
            bottleneck=timing.bottleneck,
            metadata=metadata,
        )

    def _measure(
        self,
        sim: SimKernel,
        options: LauncherOptions,
        bindings: dict[str, ArrayBinding],
        *,
        active_cores_on_socket: int,
        core: int | None,
        alignments: tuple[int, ...] = (),
        n_cores: int = 1,
        noise_salt: int = 0,
        extra_metadata: dict[str, object] | None = None,
    ) -> Measurement:
        # A batch of one: same span vocabulary as run_batch so traces
        # aggregate by name no matter which entry point ran the kernel.
        with obs.span("launcher.run_batch", batch=1):
            with obs.span(
                "launcher.normalize", metric="launcher.model.duration_ms"
            ):
                request = self._request(
                    sim,
                    options,
                    bindings,
                    active_cores_on_socket=active_cores_on_socket,
                    core=core,
                    alignments=alignments,
                    n_cores=n_cores,
                    extra_metadata=extra_metadata,
                )
            obs.observe("launcher.batch.size", 1, bounds=obs.SIZE_BUCKETS)
            with obs.span(
                "launcher.measure", metric="launcher.sim.duration_ms"
            ):
                measurement = run_measurement_batch(
                    [request],
                    options=options,
                    freq_ghz=options.frequency_ghz or self.config.freq_ghz,
                    tsc_ghz=self.config.freq_ghz,
                    noise=self._noise_for(options, noise_salt),
                )[0]
        if n_cores == 1 and not alignments:
            self._maybe_csv(options, [measurement])
        return measurement

    def _maybe_csv(self, options: LauncherOptions, measurements: list[Measurement]) -> None:
        if options.csv_path:
            write_csv(
                Path(options.csv_path),
                measurements,
                full=options.csv_full,
                append=True,
            )

    # ------------------------------------------------------------------ #
    # parallel execution (delegates)                                       #
    # ------------------------------------------------------------------ #

    def run_forked(self, kernel: object, options: LauncherOptions | None = None):
        """Fork-model multi-core run (section 4.6); see
        :func:`repro.launcher.parallel.run_forked`."""
        from repro.launcher.parallel import run_forked

        return run_forked(self, kernel, options or LauncherOptions())

    def run_openmp(self, kernel: object, options: LauncherOptions | None = None):
        """OpenMP-model run (section 5.2.3); see
        :func:`repro.launcher.parallel.run_openmp`."""
        from repro.launcher.parallel import run_openmp

        return run_openmp(self, kernel, options or LauncherOptions())

    def run_standalone(self, work, options: LauncherOptions | None = None, *, name: str = "standalone"):
        """Fork/pin/synchronize/time a standalone application (section
        4.1); see :func:`repro.launcher.standalone.run_standalone`."""
        from repro.launcher.standalone import run_standalone

        return run_standalone(self, work, options, name=name)

    def run_mpi(
        self,
        kernel: object,
        options: LauncherOptions | None = None,
        *,
        ranks: int,
        message_bytes: int = 0,
        link=None,
    ):
        """MPI-model run (paper future work); see
        :func:`repro.launcher.mpi.run_mpi`."""
        from repro.launcher.mpi import run_mpi

        return run_mpi(
            self,
            kernel,
            options or LauncherOptions(),
            ranks=ranks,
            message_bytes=message_bytes,
            link=link,
        )
