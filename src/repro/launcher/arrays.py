"""Array allocation and alignment control.

MicroLauncher "handles the array allocation with automatic alignment
check and comparison" (section 6): arrays are placed at controlled
offsets from an aligned base, and alignment sweeps enumerate offset
combinations for every allocated array (Figs. 4, 15, 16).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.launcher.kernel_input import SimKernel
from repro.launcher.options import LauncherOptions
from repro.machine.kernel_model import ArrayBinding


class ArrayAllocator:
    """Builds the stream->array bindings for a kernel run."""

    def __init__(self, kernel: SimKernel, options: LauncherOptions) -> None:
        self.kernel = kernel
        self.options = options
        n_streams = kernel.n_arrays
        if options.nbvectors is not None and options.nbvectors < n_streams:
            raise ValueError(
                f"kernel touches {n_streams} arrays but --nbvectors is "
                f"{options.nbvectors}"
            )

    def bindings(
        self, alignments: Sequence[int] | None = None
    ) -> dict[str, ArrayBinding]:
        """Bindings for one run, optionally overriding per-array alignments.

        When ``alignments`` is shorter than the array count, remaining
        arrays use the options' defaults.  Arrays that share a 16-byte
        aligned default get successive page-distinct placements so that
        the *default* configuration is conflict-free — matching real
        allocators handing out distinct regions — and the sweep is what
        introduces collisions.
        """
        bindings: dict[str, ArrayBinding] = {}
        for index, register in enumerate(self.kernel.stream_registers):
            if alignments is not None and index < len(alignments):
                alignment = alignments[index]
            else:
                alignment = self.options.array_alignment(index)
                if not self.options.alignments and alignment == 0:
                    # Default placement: spread arrays across the conflict
                    # window like malloc would.
                    alignment = (index * 1088) % 4096
            bindings[register] = ArrayBinding(
                register=register,
                size_bytes=self.options.array_size(index),
                alignment=alignment,
                residence=self.options.array_residence(index),
            )
        return bindings


@dataclass(frozen=True, slots=True)
class AlignmentSweep:
    """Enumerates alignment configurations for an N-array kernel.

    The cartesian product of per-array offsets in
    ``[alignment_min, alignment_max)`` stepping ``alignment_step``, capped
    at ``max_alignment_configs`` by deterministic even subsampling — the
    paper's Fig. 15 shows "upwards of 2500" configurations for four
    arrays.
    """

    n_arrays: int
    options: LauncherOptions

    def offsets(self) -> list[int]:
        return list(
            range(
                self.options.alignment_min,
                self.options.alignment_max,
                self.options.alignment_step,
            )
        )

    def __len__(self) -> int:
        return min(
            len(self.offsets()) ** self.n_arrays, self.options.max_alignment_configs
        )

    def configurations(self) -> Iterator[tuple[int, ...]]:
        """Yield alignment tuples, one per configuration."""
        offsets = self.offsets()
        total = len(offsets) ** self.n_arrays
        cap = self.options.max_alignment_configs
        if total <= cap:
            yield from itertools.product(offsets, repeat=self.n_arrays)
            return
        # Deterministic even subsample of the full cartesian space.
        step = total / cap
        for i in range(cap):
            index = int(i * step)
            config = []
            for _ in range(self.n_arrays):
                index, rem = divmod(index, len(offsets))
                config.append(offsets[rem])
            yield tuple(config)
