"""Standalone-program mode (paper section 4.1).

"A second input type is a stand-alone program.  In the case of an
application, MicroLauncher forks its execution to run the program as a
stand-alone application and times it.  The advantage of using
MicroLauncher is the multi-core aspect.  MicroLauncher internally pins
the processes on various cores and synchronizes before executing the
application."

In the simulation a standalone application is anything that can state
its ideal duration: a plain number of nanoseconds, or a callable
``(machine_config, active_cores_on_socket) -> ns`` so the application's
runtime can respond to contention (which is what makes co-running
interesting).  The launcher adds what it adds on real hardware: pinning,
synchronization, the noise environment, and repeated timed runs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Union

from repro.launcher.measurement import Measurement, run_measurement
from repro.launcher.options import LauncherOptions

#: A standalone application: fixed duration, or contention-aware callable.
AppWork = Union[float, int, Callable[[object, int], float]]


@dataclass(slots=True)
class StandaloneResult:
    """Outcome of a (possibly multi-core) standalone run."""

    per_process: list[Measurement] = field(default_factory=list)
    pinned_cores: list[int] = field(default_factory=list)

    @property
    def n_processes(self) -> int:
        return len(self.per_process)

    @property
    def mean_seconds(self) -> float:
        return statistics.fmean(m.total_seconds for m in self.per_process)

    @property
    def max_seconds(self) -> float:
        """Completion time of the synchronized co-run."""
        return max(m.total_seconds for m in self.per_process)

    @property
    def slowdown(self) -> float:
        """Slowest over fastest process — the co-run interference figure."""
        times = [m.total_seconds for m in self.per_process]
        return max(times) / min(times) if min(times) else 0.0


def _work_ns(work: AppWork, machine_config, peers: int) -> float:
    if callable(work):
        duration = float(work(machine_config, peers))
    else:
        duration = float(work)
    if duration <= 0:
        raise ValueError("standalone application duration must be positive")
    return duration


def run_standalone(
    launcher,
    work: AppWork,
    options: LauncherOptions | None = None,
    *,
    name: str = "standalone",
) -> StandaloneResult:
    """Fork, pin, synchronize and time a standalone application.

    ``options.n_cores`` copies run concurrently (one per pinned core);
    each process is measured with the usual outer experiment loop.  The
    kernel-ABI iteration accounting does not apply — ``loop_iterations``
    is 1 and the interesting outputs are wall-clock seconds.
    """
    options = options or LauncherOptions()
    machine = launcher.machine
    n = max(1, options.n_cores)
    if options.pin_policy == "compact":
        pinned = machine.pin_compact(n)
    else:
        pinned = machine.pin_scatter(n)
    result = StandaloneResult(pinned_cores=pinned)
    for core_id in pinned:
        peers = machine.peers_on_socket(core_id, pinned)
        duration_ns = _work_ns(work, launcher.config, peers)
        measurement = run_measurement(
            ideal_call_ns=duration_ns,
            kernel_name=name,
            options=options,
            loop_iterations=1,
            elements_per_iteration=1,
            n_memory_instructions=0,
            freq_ghz=options.frequency_ghz or launcher.config.freq_ghz,
            tsc_ghz=launcher.config.freq_ghz,
            noise=launcher._noise_for(options, 2000 + core_id),
            core=core_id,
            n_cores=n,
            bottleneck="standalone",
            metadata={"socket": machine.socket_of(core_id), "peers": peers},
        )
        result.per_process.append(measurement)
    launcher._maybe_csv(options, result.per_process)
    return result
