"""CSV output.

"The output of the launcher is a generic CSV file providing the execution
time of the benchmark program which is by default the number of cycles
per iteration.  As an option, the tool may output the full kernel
function's execution." (section 4.3)
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.launcher.measurement import Measurement

#: Default (summary) columns: one row per measured configuration.
SUMMARY_COLUMNS = (
    "kernel",
    "label",
    "trip_count",
    "repetitions",
    "loop_iterations",
    "cycles_per_iteration",
    "cycles_per_memory_instruction",
    "min_cycles_per_iteration",
    "max_cycles_per_iteration",
    "spread",
    "core",
    "n_cores",
    "alignments",
    "bottleneck",
)

#: Full columns add one row per outer-loop experiment.
FULL_COLUMNS = SUMMARY_COLUMNS + ("experiment", "experiment_tsc")

#: Measurement-quality columns, appended to either layout whenever the
#: rows come from an adaptive (RCIW-stopped) run.  Fixed-count output
#: omits them entirely so the default CSV format is unchanged.
QUALITY_COLUMNS = (
    "experiments_spent",
    "ci_low",
    "ci_high",
    "rciw",
    "converged",
)


def _summary_row(m: Measurement) -> dict[str, object]:
    # Values go in untouched: ``csv`` stringifies floats with repr, the
    # shortest exact round-trip form, so read_csv() reconstructs the
    # original numbers bit-for-bit (pre-rounding them here made every
    # write -> read cycle lossy).
    return {
        "kernel": m.kernel_name,
        "label": m.label,
        "trip_count": m.trip_count,
        "repetitions": m.repetitions,
        "loop_iterations": m.loop_iterations,
        "cycles_per_iteration": m.cycles_per_iteration,
        "cycles_per_memory_instruction": m.cycles_per_memory_instruction,
        "min_cycles_per_iteration": m.min_cycles_per_iteration,
        "max_cycles_per_iteration": m.max_cycles_per_iteration,
        "spread": m.spread,
        "core": "" if m.core is None else m.core,
        "n_cores": m.n_cores,
        "alignments": ":".join(str(a) for a in m.alignments),
        "bottleneck": m.bottleneck,
    }


def _quality_row(m: Measurement) -> dict[str, object]:
    return {
        "experiments_spent": m.experiments_spent,
        "ci_low": "" if m.ci_low is None else m.ci_low,
        "ci_high": "" if m.ci_high is None else m.ci_high,
        "rciw": "" if m.rciw is None else m.rciw,
        "converged": "" if m.converged is None else m.converged,
    }


def write_csv(
    path: str | Path,
    measurements: Iterable[Measurement],
    *,
    full: bool = False,
    append: bool = False,
) -> Path:
    """Write measurements to ``path``; returns the path.

    ``full`` emits one row per outer-loop experiment (the optional
    full-execution output); otherwise one summary row per measurement.

    When any measurement carries adaptive-stopping quality fields the
    :data:`QUALITY_COLUMNS` are appended to every row; fixed-count
    batches keep the historical layout byte-for-byte.
    """
    measurements = list(measurements)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    exists = path.exists() and path.stat().st_size > 0
    mode = "a" if append else "w"
    columns = FULL_COLUMNS if full else SUMMARY_COLUMNS
    quality = any(m.rciw is not None for m in measurements)
    if quality:
        columns = columns + QUALITY_COLUMNS
    with path.open(mode, newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        if not (append and exists):
            writer.writeheader()
        for m in measurements:
            base = _summary_row(m)
            if quality:
                base.update(_quality_row(m))
            if full:
                for i, tsc in enumerate(m.experiment_tsc):
                    row = dict(base)
                    row["experiment"] = i
                    row["experiment_tsc"] = tsc
                    writer.writerow(row)
            else:
                writer.writerow(base)
    return path


#: Column typing applied by :func:`read_csv`.
_INT_COLUMNS = frozenset(
    {
        "trip_count",
        "repetitions",
        "loop_iterations",
        "n_cores",
        "experiment",
        "experiments_spent",
    }
)
_FLOAT_COLUMNS = frozenset(
    {
        "cycles_per_iteration",
        "cycles_per_memory_instruction",
        "min_cycles_per_iteration",
        "max_cycles_per_iteration",
        "spread",
        "experiment_tsc",
    }
)
#: Quality floats may be empty on mixed fixed/adaptive appends.
_OPTIONAL_FLOAT_COLUMNS = frozenset({"ci_low", "ci_high", "rciw"})


def _typed(column: str, value: str) -> object:
    if column in _INT_COLUMNS:
        return int(value)
    if column in _FLOAT_COLUMNS:
        return float(value)
    if column in _OPTIONAL_FLOAT_COLUMNS:
        return float(value) if value else None
    if column == "converged":
        return value == "True" if value else None
    if column == "core":
        return int(value) if value else None
    if column == "alignments":
        return tuple(int(a) for a in value.split(":")) if value else ()
    return value


def read_csv(path: str | Path) -> list[dict[str, object]]:
    """Read a launcher CSV back into typed rows.

    Numeric columns come back as ``int``/``float`` (exact — the writer
    emits full-precision values), ``core`` as ``int | None``, and
    ``alignments`` as a tuple of offsets; unknown columns stay strings.
    """
    with Path(path).open(newline="") as fh:
        return [
            {column: _typed(column, value) for column, value in row.items()}
            for row in csv.DictReader(fh)
        ]
