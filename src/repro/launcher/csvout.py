"""CSV output.

"The output of the launcher is a generic CSV file providing the execution
time of the benchmark program which is by default the number of cycles
per iteration.  As an option, the tool may output the full kernel
function's execution." (section 4.3)
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.launcher.measurement import Measurement

#: Default (summary) columns: one row per measured configuration.
SUMMARY_COLUMNS = (
    "kernel",
    "label",
    "trip_count",
    "repetitions",
    "loop_iterations",
    "cycles_per_iteration",
    "cycles_per_memory_instruction",
    "min_cycles_per_iteration",
    "max_cycles_per_iteration",
    "spread",
    "core",
    "n_cores",
    "alignments",
    "bottleneck",
)

#: Full columns add one row per outer-loop experiment.
FULL_COLUMNS = SUMMARY_COLUMNS + ("experiment", "experiment_tsc")


def _summary_row(m: Measurement) -> dict[str, object]:
    return {
        "kernel": m.kernel_name,
        "label": m.label,
        "trip_count": m.trip_count,
        "repetitions": m.repetitions,
        "loop_iterations": m.loop_iterations,
        "cycles_per_iteration": f"{m.cycles_per_iteration:.4f}",
        "cycles_per_memory_instruction": f"{m.cycles_per_memory_instruction:.4f}",
        "min_cycles_per_iteration": f"{m.min_cycles_per_iteration:.4f}",
        "max_cycles_per_iteration": f"{m.max_cycles_per_iteration:.4f}",
        "spread": f"{m.spread:.6f}",
        "core": "" if m.core is None else m.core,
        "n_cores": m.n_cores,
        "alignments": ":".join(str(a) for a in m.alignments),
        "bottleneck": m.bottleneck,
    }


def write_csv(
    path: str | Path,
    measurements: Iterable[Measurement],
    *,
    full: bool = False,
    append: bool = False,
) -> Path:
    """Write measurements to ``path``; returns the path.

    ``full`` emits one row per outer-loop experiment (the optional
    full-execution output); otherwise one summary row per measurement.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    exists = path.exists() and path.stat().st_size > 0
    mode = "a" if append else "w"
    columns = FULL_COLUMNS if full else SUMMARY_COLUMNS
    with path.open(mode, newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        if not (append and exists):
            writer.writeheader()
        for m in measurements:
            base = _summary_row(m)
            if full:
                for i, tsc in enumerate(m.experiment_tsc):
                    row = dict(base)
                    row["experiment"] = i
                    row["experiment_tsc"] = f"{tsc:.1f}"
                    writer.writerow(row)
            else:
                writer.writerow(base)
    return path


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Read a launcher CSV back into dict rows (tests, analysis)."""
    with Path(path).open(newline="") as fh:
        return list(csv.DictReader(fh))
