"""MicroLauncher: the stable measurement harness (paper section 4).

MicroLauncher executes a benchmark program in a contained and controlled
environment: arrays allocated at controlled alignments, execution pinned
to cores, interrupts masked, caches heated, an inner repetition loop
inside an outer experiment loop, call overhead subtracted, results to CSV.

Because this reproduction measures a *simulated* machine (see DESIGN.md),
"executing" a kernel means: statically analyzing its loop, asking the
machine model for the steady-state iteration time, and replaying the
paper's Fig.-10 measurement algorithm against the simulated TSC with the
noise process applied — so every stabilization option has an observable
effect, exactly as on real hardware.

Entry point::

    from repro.launcher import MicroLauncher, LauncherOptions
    from repro.machine import nehalem_2s_x5650

    launcher = MicroLauncher(nehalem_2s_x5650())
    result = launcher.run(kernel, LauncherOptions(array_bytes=16 * 1024))
    print(result.cycles_per_iteration)
"""

from repro.launcher.options import LauncherOptions
from repro.launcher.arrays import AlignmentSweep, ArrayAllocator
from repro.launcher.kernel_input import KernelInputError, SimKernel, as_sim_kernel
from repro.launcher.measurement import (
    Measurement,
    MeasurementRequest,
    MeasurementSeries,
    run_measurement_batch,
)
from repro.launcher.launcher import MicroLauncher
from repro.launcher.parallel import ForkResult, OpenMPResult
from repro.launcher.stopping import (
    bootstrap_ci,
    run_adaptive_measurement_batch,
)
from repro.launcher.mpi import LinkModel, MPIResult, run_mpi
from repro.launcher.standalone import StandaloneResult, run_standalone
from repro.launcher.csvout import write_csv

__all__ = [
    "LauncherOptions",
    "AlignmentSweep",
    "ArrayAllocator",
    "KernelInputError",
    "SimKernel",
    "as_sim_kernel",
    "Measurement",
    "MeasurementRequest",
    "MeasurementSeries",
    "run_measurement_batch",
    "bootstrap_ci",
    "run_adaptive_measurement_batch",
    "MicroLauncher",
    "ForkResult",
    "OpenMPResult",
    "LinkModel",
    "MPIResult",
    "run_mpi",
    "StandaloneResult",
    "run_standalone",
    "write_csv",
]
