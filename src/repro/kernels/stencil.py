"""Stencil kernels (paper section 3.5).

"Though not in the scope of this paper, users are modeling unrolled codes
and stencil codes with the MicroCreator tool."  This module provides the
stencil workload both ways the tools accept it:

- through the mini C front-end (:func:`stencil_kernel`) — the
  three-point update ``b[k] = a[k-1] + a[k] + a[k+1]`` lowered like a
  compiler would, and
- as a MicroCreator description (:func:`stencil_spec`) — the same memory
  behaviour abstracted for variation sweeps (unrolling, operand widths).
"""

from __future__ import annotations

from repro.compiler.ast import Add, ArrayDecl, ArrayRef, Assign, InnerLoop
from repro.compiler.lower import CompiledKernel, lower_loop
from repro.isa.semantics import opcode_info
from repro.spec.builders import KernelBuilder
from repro.spec.schema import KernelSpec


def stencil_source(element_size: int = 4) -> InnerLoop:
    """``b[k] = a[k-1] + a[k] + a[k+1]`` as the mini front-end's AST."""
    a = ArrayDecl("a", element_size)
    b = ArrayDecl("b", element_size)
    return InnerLoop(
        trip_var="k",
        body=(
            Assign(
                ArrayRef(b),
                Add(
                    Add(
                        ArrayRef(a, offset_elements=-1),
                        ArrayRef(a, offset_elements=0),
                    ),
                    ArrayRef(a, offset_elements=1),
                ),
            ),
        ),
        store_target_each_iteration=False,
    )


def stencil_kernel(n: int, unroll: int = 1, *, element_size: int = 4) -> CompiledKernel:
    """The compiled three-point stencil at problem size ``n``."""
    return lower_loop(
        stencil_source(element_size),
        n=n,
        unroll=unroll,
        name=f"stencil3_n{n}_u{unroll}",
    )


def stencil_spec(
    opcode: str = "movss", *, unroll: tuple[int, int] = (1, 8)
) -> KernelSpec:
    """The stencil's memory pattern as a MicroCreator description.

    Three loads from the input array at consecutive offsets plus one
    store to the output per element — the traffic shape of the compiled
    stencil, with the unroll dimension opened for sweeping.
    """
    nbytes = opcode_info(opcode).bytes_moved
    builder = KernelBuilder(f"stencil3_{opcode}")
    for tap in range(3):
        builder.load(
            opcode,
            base="r1",
            offset=tap * nbytes,
            xmm_range=(2 * tap, 2 * tap + 2),
        )
    builder.store(opcode, base="r2", xmm_range=(6, 8))
    builder.unroll(*unroll)
    builder.pointer_induction("r1", step=nbytes)
    builder.pointer_induction("r2", step=nbytes)
    builder.counter_induction("r0", linked_to="r1", element_size=nbytes)
    builder.iteration_counter("%eax")
    builder.branch()
    return builder.build()
