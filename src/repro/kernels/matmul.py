"""The naive matrix multiply of the motivation study (paper section 2).

Fig. 1's C source::

    for (i ...) for (j ...) { *res = 0;
        for (k = 0; k < n; k++)
            *res += second[k] * third[j];     /* third walks a column */
    }

whose ``gcc -O3`` inner loop is Fig. 2.  This module provides

- :func:`matmul_source` -- the inner k-loop as the mini front-end's AST,
- :func:`matmul_kernel` -- the lowered (optionally unrolled) kernel,
- :func:`matmul_bindings` -- per-stream residence from reuse distances,
- :func:`matmul_microbench_spec` -- the MicroCreator abstraction of the
  same assembly (the Fig. 5 comparison partner),
- :func:`measure_matmul` -- one measured configuration.

Residence analysis (the Fig. 3 "cutting points")
------------------------------------------------
The three streams have very different reuse footprints:

- ``res`` (the C[i][j] accumulator) is stationary within the inner loop:
  register + one L1 line.
- ``second`` (a row of B, stride one) is reused for every ``j``; its reuse
  footprint is ``8 n`` bytes.
- ``third`` (a column of C, stride ``8 n``) touches one cache *line* per
  element; successive ``j`` sweeps reuse those lines, so the footprint is
  ``64 n`` bytes.  This stream crosses L1 capacity at ``n = L1/64 = 512``
  — the performance step the paper observes "500 is one of the cutting
  points" — then L2 at ``n = 4096``, then L3.
"""

from __future__ import annotations

from typing import Sequence

from repro.compiler.ast import (
    Accumulate,
    ArrayDecl,
    ArrayRef,
    InnerLoop,
    Mul,
)
from repro.compiler.lower import CompiledKernel, lower_loop
from repro.launcher.measurement import Measurement
from repro.launcher.options import LauncherOptions
from repro.machine.config import MachineConfig
from repro.machine.kernel_model import ArrayBinding
from repro.spec.builders import KernelBuilder
from repro.spec.schema import KernelSpec, MemoryRef, RegisterRange, RegisterRef
from repro.spec.schema import InstructionSpec

#: The paper's Fig. 1 inner loop as actual C text — parseable by
#: :func:`repro.compiler.compile_c` and accepted directly by the launcher.
FIG1_SOURCE = """
void multiplySingle(int n, double *res, double *second, double *third)
{
    int k;
    for (k = 0; k < n; k++) {
        *res += second[k] * third[k * n];
    }
}
"""

#: Array declarations shared by source and analysis (doubles, as Fig. 1).
_RES = ArrayDecl("res", element_size=8)
_SECOND = ArrayDecl("second", element_size=8)
_THIRD = ArrayDecl("third", element_size=8)


def matmul_source() -> InnerLoop:
    """The inner k-loop of Fig. 1 as the mini front-end's AST."""
    return InnerLoop(
        trip_var="k",
        body=(
            Accumulate(
                ArrayRef(_RES, stride_elements=0),
                Mul(
                    ArrayRef(_SECOND, stride_elements=1),
                    ArrayRef(_THIRD, stride_elements="n"),
                ),
            ),
        ),
        store_target_each_iteration=True,
    )


def matmul_kernel(n: int, unroll: int = 1) -> CompiledKernel:
    """Lower the matmul inner loop at size ``n`` with a compiler-hint
    unroll factor (the Fig. 5 sweep)."""
    if n < 1:
        raise ValueError(f"matrix size must be positive, got {n}")
    return lower_loop(
        matmul_source(), n=n, unroll=unroll, name=f"matmul_n{n}_u{unroll}"
    )


def _stream_footprints(n: int) -> dict[str, int]:
    """Reuse footprint per array (see module docstring)."""
    return {
        "res": 64,  # stationary: one line
        "second": 8 * n,  # row of B, reused across j
        "third": 64 * n,  # column of C: one line per element, reused across j
    }


def matmul_bindings(
    kernel: CompiledKernel,
    machine: MachineConfig,
    alignments: Sequence[int] = (0, 0, 0),
) -> dict[str, ArrayBinding]:
    """Array bindings for a lowered matmul kernel.

    ``alignments`` applies to (res, second, third) in that order —
    Fig. 4's per-matrix alignment knobs.
    """
    footprints = _stream_footprints(kernel.n)
    align_map = dict(zip(("res", "second", "third"), alignments))
    bindings: dict[str, ArrayBinding] = {}
    for register, stream in kernel.streams.items():
        name = stream.array.name
        bindings[register] = ArrayBinding(
            register=register,
            size_bytes=footprints[name],
            alignment=align_map.get(name, 0),
        )
    return bindings


def matmul_microbench_spec(
    n: int, *, unroll: tuple[int, int] = (1, 8)
) -> KernelSpec:
    """The MicroCreator abstraction of the Fig. 2 assembly.

    "By abstracting the assembly operations in the MicroCreator format and
    testing various unrolling factors, the MicroTools study the kernel's
    performance variation" (section 2).  The kernel mirrors the compiled
    body — load, multiply-from-memory, accumulate, store — with logical
    registers r1 (row of B), r2 (column of C) and r3 (the accumulator's
    home).
    """
    temps = RegisterRange("%xmm", 0, 8)
    acc = RegisterRef("%xmm8")
    return (
        KernelBuilder(f"matmul_micro_n{n}")
        .instruction(
            InstructionSpec(
                operations=("movsd",),
                operands=(MemoryRef(RegisterRef("r1")), temps),
            )
        )
        .instruction(
            InstructionSpec(
                operations=("mulsd",),
                operands=(MemoryRef(RegisterRef("r2")), temps),
            )
        )
        .instruction(
            InstructionSpec(operations=("addsd",), operands=(temps, acc))
        )
        .instruction(
            InstructionSpec(
                operations=("movsd",),
                operands=(acc, MemoryRef(RegisterRef("r3"))),
            )
        )
        .unroll(*unroll)
        .pointer_induction("r1", step=8)
        .pointer_induction("r2", step=8 * n)
        .counter_induction("r0", linked_to="r1", element_size=8)
        .branch("L3", "jge")
        .build()
    )


def microbench_bindings(
    n: int, machine: MachineConfig, alignments: Sequence[int] = (0, 0, 0)
) -> dict[str, ArrayBinding]:
    """Bindings for the generated microbenchmark's register allocation.

    MicroCreator's allocator maps r1 -> %rsi, r2 -> %rdx (pointer
    inductions in order) and r3 -> %rcx (plain logical); the streams are
    (second, third, res) respectively.
    """
    footprints = _stream_footprints(n)
    align_map = dict(zip(("res", "second", "third"), alignments))
    return {
        "%rsi": ArrayBinding(
            "%rsi", footprints["second"], alignment=align_map["second"]
        ),
        "%rdx": ArrayBinding("%rdx", footprints["third"], alignment=align_map["third"]),
        "%rcx": ArrayBinding("%rcx", footprints["res"], alignment=align_map["res"]),
    }


def measure_matmul(
    launcher,
    n: int,
    *,
    unroll: int = 1,
    alignments: Sequence[int] = (0, 0, 0),
    options: LauncherOptions | None = None,
) -> Measurement:
    """Measure one matmul configuration on ``launcher``'s machine.

    Returns the launcher measurement; ``cycles_per_element`` is the
    paper's "cycles per iteration" for the source loop (one element of
    the k-loop per iteration).
    """
    options = options or LauncherOptions(trip_count=n)
    kernel = matmul_kernel(n, unroll)
    bindings = matmul_bindings(kernel, launcher.config, alignments)
    return launcher.run_with_bindings(kernel, bindings, options)
