"""Reduction kernels: the accumulator-splitting study.

A dot product with a single accumulator is bound by the loop-carried
``addss`` chain (3 cycles per element on Nehalem) no matter how far it is
unrolled; splitting the reduction over K accumulators divides the chain
until the FP ports become the limit — the canonical microbenchmark
investigation MicroTools-style tooling exists to automate.

The kernel description expresses the rotation naturally: the accumulator
operand is a *register range* of width K, so unroll copy k accumulates
into ``%xmm(8 + k mod K)`` — one XML attribute sweeps the whole study.
"""

from __future__ import annotations

from repro.isa.semantics import opcode_info
from repro.spec.builders import KernelBuilder
from repro.spec.schema import (
    InstructionSpec,
    KernelSpec,
    MemoryRef,
    RegisterRange,
    RegisterRef,
)


def dot_product_spec(
    n_accumulators: int = 1,
    *,
    opcode: str = "movss",
    unroll: tuple[int, int] = (8, 8),
) -> KernelSpec:
    """Dot product ``acc += a[k] * b[k]`` with K rotated accumulators.

    Per unroll copy: load from ``a``, multiply from ``b`` (memory
    operand), accumulate into the copy's accumulator register.  With
    ``n_accumulators = 1`` every copy feeds the same register — the
    serial chain; with K the chain splits K ways.
    """
    if not 1 <= n_accumulators <= 8:
        raise ValueError(
            f"accumulator count must be 1..8, got {n_accumulators}"
        )
    nbytes = opcode_info(opcode).bytes_moved
    suffix = opcode[-2:]  # ss / sd
    temps = RegisterRange("%xmm", 0, 8)
    accumulators = RegisterRange("%xmm", 8, 8 + n_accumulators)
    return (
        KernelBuilder(f"dot_{opcode}_k{n_accumulators}")
        .instruction(
            InstructionSpec(
                operations=(opcode,),
                operands=(MemoryRef(RegisterRef("r1")), temps),
            )
        )
        .instruction(
            InstructionSpec(
                operations=(f"mul{suffix}",),
                operands=(MemoryRef(RegisterRef("r2")), temps),
            )
        )
        .instruction(
            InstructionSpec(
                operations=(f"add{suffix}",),
                operands=(temps, accumulators),
            )
        )
        .unroll(*unroll)
        .pointer_induction("r1", step=nbytes)
        .pointer_induction("r2", step=nbytes)
        .counter_induction("r0", linked_to="r1", element_size=nbytes)
        .iteration_counter("%eax")
        .branch("L7", "jge")
        .build()
    )
