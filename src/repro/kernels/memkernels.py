"""Memory-kernel descriptions: the paper's core workloads."""

from __future__ import annotations

from repro.spec.builders import KernelBuilder, load_kernel
from repro.spec.schema import KernelSpec
from repro.isa.semantics import opcode_info

#: The four instruction families of section 5.1's 510-variant study.
MOV_FAMILY_OPCODES = ("movss", "movsd", "movaps", "movapd")


def loadstore_family(
    opcode: str = "movaps", *, unroll: tuple[int, int] = (1, 8)
) -> KernelSpec:
    """The (Load|Store)+ family of sections 3.1/5.1.

    One memory move per copy with ``<swap_after_unroll/>``: unroll factors
    ``unroll[0]..unroll[1]`` with every per-copy load/store combination.
    Over 1..8 that is sum(2^u) = 510 variants — the figure quoted in
    section 5.1 for a single input file.
    """
    return load_kernel(
        opcode,
        unroll=unroll,
        swap_after_unroll=True,
        name=f"{opcode}_loadstore",
    )


def all_mov_families(*, unroll: tuple[int, int] = (1, 8)) -> KernelSpec:
    """All four mov families from one input file.

    Uses instruction *selection* (multiple ``<operation>`` choices) on top
    of the swap-after-unroll family: 4 x 510 = 2040 variants — the "more
    than two thousand benchmark programs from a single input file" of
    section 3.
    """
    nbytes = opcode_info(MOV_FAMILY_OPCODES[0]).bytes_moved
    return (
        KernelBuilder("mov_families")
        .load(*MOV_FAMILY_OPCODES, base="r1", swap_after_unroll=True)
        .unroll(*unroll)
        .pointer_induction("r1", step=nbytes)
        .counter_induction("r0", linked_to="r1")
        .iteration_counter("%eax")
        .branch("L6", "jge")
        .build()
    )


def multi_array_traversal(
    n_arrays: int = 4,
    opcode: str = "movss",
    *,
    unroll: tuple[int, int] = (5, 5),
) -> KernelSpec:
    """Single-strided traversal of several arrays (Figs. 15/16).

    "The benchmark program is a single strided traversal of a number of
    arrays ... four arrays accessed with a stride one and movss
    instructions" (section 5.2.2).  Each array gets its own pointer
    induction and a disjoint XMM register slice so the loads carry no
    false dependences.
    """
    if not 1 <= n_arrays <= 5:
        raise ValueError(
            f"multi-array traversal supports 1..5 arrays (ABI pointer "
            f"registers), got {n_arrays}"
        )
    nbytes = opcode_info(opcode).bytes_moved
    regs_per_array = max(1, 8 // n_arrays)
    builder = KernelBuilder(f"{opcode}_x{n_arrays}_traversal")
    for i in range(n_arrays):
        lo = i * regs_per_array
        builder.load(opcode, base=f"r{i + 1}", xmm_range=(lo, lo + regs_per_array))
    builder.unroll(*unroll)
    for i in range(n_arrays):
        builder.pointer_induction(f"r{i + 1}", step=nbytes)
    builder.counter_induction("r0", linked_to="r1")
    builder.iteration_counter("%eax")
    builder.branch("L6", "jge")
    return builder.build()


def strided_kernel(
    opcode: str = "movaps",
    strides: tuple[int, ...] = (1, 2, 4, 8),
    *,
    unroll: tuple[int, int] = (1, 8),
) -> KernelSpec:
    """Load kernel with stride selection — "detect the effect of strides
    on various microbenchmark program templates" (section 3.5)."""
    nbytes = opcode_info(opcode).bytes_moved
    return (
        KernelBuilder(f"{opcode}_strided")
        .load(opcode, base="r1")
        .unroll(*unroll)
        .pointer_induction("r1", step=nbytes, stride_choices=strides)
        .counter_induction("r0", linked_to="r1")
        .iteration_counter("%eax")
        .branch("L6", "jge")
        .build()
    )


def move_semantics_kernel(
    nbytes: int = 16, *, unroll: tuple[int, int] = (1, 8)
) -> KernelSpec:
    """A kernel described by move *semantics* only (section 3.1).

    MicroCreator expands it into aligned-vector, unaligned-vector and
    scalar encodings of the same payload.
    """
    return (
        KernelBuilder(f"move{nbytes}_semantics")
        .move_bytes(nbytes, base="r1")
        .unroll(*unroll)
        .pointer_induction("r1", step=nbytes)
        .counter_induction("r0", linked_to="r1")
        .iteration_counter("%eax")
        .branch("L6", "jge")
        .build()
    )
