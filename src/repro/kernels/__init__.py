"""Kernel library: the workloads behind the paper's experiments.

- :mod:`repro.kernels.memkernels` -- the (Load|Store)+ families, strided
  and multi-array traversals, move-semantics templates (sections 3.1, 5.1,
  5.2.2),
- :mod:`repro.kernels.matmul` -- the naive matrix multiply of the
  motivation study (section 2): Fig. 1's source, its compiled kernel, the
  MicroCreator-abstracted equivalent, and the per-stream residence
  analysis,
- ``specs/`` -- the same kernels as MicroCreator XML input files
  (:func:`spec_path` locates them).
"""

from pathlib import Path

from repro.kernels.memkernels import (
    all_mov_families,
    loadstore_family,
    move_semantics_kernel,
    multi_array_traversal,
    strided_kernel,
)
from repro.kernels.matmul import (
    matmul_bindings,
    matmul_kernel,
    matmul_microbench_spec,
    matmul_source,
    measure_matmul,
)

_SPEC_DIR = Path(__file__).parent / "specs"


def spec_path(name: str) -> Path:
    """Path to a bundled kernel-description XML file.

    >>> spec_path("loadstore_movaps").name
    'loadstore_movaps.xml'
    """
    if not name.endswith(".xml"):
        name += ".xml"
    path = _SPEC_DIR / name
    if not path.exists():
        available = sorted(p.stem for p in _SPEC_DIR.glob("*.xml"))
        raise FileNotFoundError(f"no bundled spec {name!r}; have {available}")
    return path


__all__ = [
    "all_mov_families",
    "loadstore_family",
    "move_semantics_kernel",
    "multi_array_traversal",
    "strided_kernel",
    "matmul_bindings",
    "matmul_kernel",
    "matmul_microbench_spec",
    "matmul_source",
    "measure_matmul",
    "spec_path",
]
