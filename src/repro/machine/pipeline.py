"""The steady-state cycle model.

Composes the kernel analysis with a machine description into a
per-loop-iteration timing, split by clock domain:

- **core-domain cycles** — execution-port pressure, front-end width,
  loop-carried recurrences, L1/L2 bandwidth, the taken-branch cost, and
  alignment penalties.  These scale with core frequency (DVFS), which is
  what makes Fig. 13's L1/L2 series move in TSC units.
- **uncore-domain nanoseconds** — L3 and DRAM traffic at their bandwidth
  (shared across the active cores of a socket) or, when the stride defeats
  the prefetcher, at concurrency-limited latency.  Fixed wall-clock time,
  hence Fig. 13's flat L3/RAM series.

Composition is roofline-style: the slower of the core pipeline and the
memory system wins, and the taken-branch serialization plus alignment
penalties ride on top::

    time_ns = max(pipe/f, core_mem/f, uncore_ns) + (branch + penalties)/f

The ``max`` (not a sum) is what makes a bandwidth-bound OpenMP run immune
to unrolling (Table 2) while the same kernel, sequential and core-bound,
speeds up.

Alignment conflicts act twice: a fixed per-pair core penalty (set/bank
pressure) and a traffic inflation on beyond-L1 streams (conflict misses
refetch lines) — the latter is why the 32-core alignment sweep of Fig. 16
spreads much wider than the 8-core sweep of Fig. 15 over the *same*
configurations.  Both apply only to pairs of *moving* streams that both
live beyond L1: in-cache kernels such as the 200x200 matmul are alignment-
insensitive (< 3 %, Fig. 4), exactly as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.semantics import opcode_info
from repro.machine.config import MachineConfig, MemLevel
from repro.machine.kernel_model import ArrayBinding, KernelAnalysis, MemStream

#: A socket's shared L3 sustains roughly this multiple of one core's
#: streaming bandwidth before the ring saturates.
L3_SHARING_FACTOR = 3.0


@dataclass(frozen=True, slots=True)
class TimingBreakdown:
    """Per-loop-iteration timing, decomposed by mechanism.

    ``bounds`` records every candidate bottleneck (port pressure,
    front-end, recurrence, per-level memory time, penalties...) so benches
    and tests can assert *why* a configuration is slow, not just how slow
    it is.
    """

    pipe_cycles: float
    core_mem_cycles: float
    uncore_ns: float
    branch_cycles: float
    penalty_cycles: float
    bounds: dict[str, float] = field(default_factory=dict)

    @property
    def core_cycles(self) -> float:
        """Total core-domain cycles (pipeline/memory roofline + penalties)."""
        return (
            max(self.pipe_cycles + self.branch_cycles, self.core_mem_cycles)
            + self.penalty_cycles
        )

    def time_ns(self, freq_ghz: float) -> float:
        """Wall-clock nanoseconds per loop iteration at ``freq_ghz``.

        The taken-branch serialization extends the core pipeline bound
        (it is what unrolling amortizes) but hides under a memory-bound
        roofline — out-of-order execution overlaps loop overhead with
        outstanding misses, which is why bandwidth-bound runs are immune
        to unrolling (Table 2).  Alignment penalties are stalls the
        machine cannot overlap, so they stay additive.
        """
        base = max(
            (self.pipe_cycles + self.branch_cycles) / freq_ghz,
            self.core_mem_cycles / freq_ghz,
            self.uncore_ns,
        )
        return base + self.penalty_cycles / freq_ghz

    def tsc_cycles(self, freq_ghz: float, tsc_ghz: float) -> float:
        """Reference-frequency (rdtsc) cycles per loop iteration.

        ``tsc_ghz`` is the counter's invariant rate — the machine's
        nominal frequency — regardless of the current core frequency.
        """
        return self.time_ns(freq_ghz) * tsc_ghz

    @property
    def bottleneck(self) -> str:
        """Name of the largest contributing bound.

        A diagnostic label, not a unit-exact comparison: ``bounds``
        entries carry their clock domain's unit (core cycles for
        port/front-end/recurrence/L2, nanoseconds for L3/DRAM), so near
        the core/uncore crossover the label can name either side.  Tests
        and benches that need the exact winner compare
        :meth:`time_ns`'s components directly.
        """
        if not self.bounds:
            return "unknown"
        return max(self.bounds, key=lambda k: self.bounds[k])


def _residence(
    stream: MemStream, bindings: dict[str, ArrayBinding], machine: MachineConfig
) -> tuple[MemLevel, int]:
    """(residence level, alignment) for one stream."""
    binding = bindings.get(stream.base)
    if binding is None:
        return MemLevel.L1, 0
    return binding.resolve_residence(machine), binding.alignment


def _conflicts(
    analysis: KernelAnalysis,
    bindings: dict[str, ArrayBinding],
    machine: MachineConfig,
) -> tuple[int, float, float]:
    """Alignment collisions between moving, beyond-L1 stream pairs.

    Returns (conflicting pairs, conflict penalty cycles, aliasing penalty
    cycles).  Pairs where either stream is stationary or L1-resident are
    exempt: associativity absorbs the pressure when the data is cached,
    which is why the in-cache matmul of Fig. 4 shows < 3 % alignment
    sensitivity while the streaming traversals of Figs. 15/16 show ~1.5x.
    """
    line = machine.cache(MemLevel.L1).line_bytes
    eligible: list[tuple[MemStream, int]] = []
    for stream in analysis.streams.values():
        if not stream.accesses or stream.step_bytes == 0:
            continue
        level, alignment = _residence(stream, bindings, machine)
        if level == MemLevel.L1:
            continue
        eligible.append((stream, alignment))

    pairs = 0
    aliasing = 0.0
    for i in range(len(eligible)):
        for j in range(i + 1, len(eligible)):
            (a, align_a), (b, align_b) = eligible[i], eligible[j]
            distance = (a.first_phase(align_a) - b.first_phase(align_b)) % (
                machine.conflict_window
            )
            distance = min(distance, machine.conflict_window - distance)
            if distance < line:
                pairs += 1
                crossed = (a.has_loads and b.has_stores) or (
                    a.has_stores and b.has_loads
                )
                if crossed:
                    aliasing += machine.aliasing_penalty
    return pairs, pairs * machine.conflict_penalty, aliasing


def _split_penalty(
    analysis: KernelAnalysis,
    bindings: dict[str, ArrayBinding],
    machine: MachineConfig,
) -> float:
    """Cache-line-split penalties, amortized over the stride window."""
    line = machine.cache(MemLevel.L1).line_bytes
    total = 0.0
    for stream in analysis.streams.values():
        alignment = bindings[stream.base].alignment if stream.base in bindings else 0
        for opcode, count in stream.amortized_splits(alignment, line).items():
            per_access = (
                machine.movaps_misaligned_penalty
                if opcode_info(opcode).requires_alignment
                else machine.split_penalty
            )
            total += count * per_access
    return total


def estimate_iteration_time(
    analysis: KernelAnalysis,
    bindings: dict[str, ArrayBinding],
    machine: MachineConfig,
    *,
    active_cores_on_socket: int = 1,
) -> TimingBreakdown:
    """Estimate the steady-state time of one loop iteration.

    Parameters
    ----------
    analysis:
        Output of :func:`~repro.machine.kernel_model.analyze_kernel`.
    bindings:
        Base-register -> array binding; streams without a binding are
        treated as L1-resident (stack temporaries).
    machine:
        The machine description (frequency itself is applied later, in
        :meth:`TimingBreakdown.time_ns`).
    active_cores_on_socket:
        How many cores of this socket run memory-hungry work
        concurrently; shared-level bandwidth divides among them
        (Fig. 14's saturation knee).
    """
    bounds: dict[str, float] = {}
    active = max(1, active_cores_on_socket)

    # --- core pipeline bounds (cycles) -----------------------------------
    for port, demand in analysis.port_demand.items():
        slots = machine.ports.get(port, 1.0)
        bounds[f"port:{port}"] = demand / slots
    bounds["frontend"] = analysis.n_uops / machine.issue_width
    bounds["recurrence"] = analysis.recurrence_cycles

    # --- alignment interactions (needed before traffic accounting) -------
    conflict_pairs, conflict_cycles, aliasing_cycles = _conflicts(
        analysis, bindings, machine
    )
    traffic_factor = 1.0 + machine.conflict_traffic_factor * conflict_pairs

    # --- memory system ----------------------------------------------------
    line_bytes = machine.cache(MemLevel.L1).line_bytes
    core_mem_cycles = 0.0
    uncore_ns = 0.0
    fill_by_port: dict[str, float] = {}
    for stream in analysis.streams.values():
        if not stream.accesses:
            continue
        level, alignment = _residence(stream, bindings, machine)
        if level == MemLevel.L1:
            # L1 throughput is already captured by the port model: one
            # load port moving one access per cycle *is* the L1 load
            # bandwidth (and the store port the store bandwidth).  A
            # separate combined-bandwidth charge would double-count and
            # falsely cap kernels that use both ports at once.
            bounds[f"mem:{stream.base}:L1"] = 0.0
            continue
        lines = stream.touched_lines(alignment) * traffic_factor
        if lines == 0:
            continue
        # Fills occupy the port that misses: demand loads block the load
        # port, store misses (RFO allocations) block the store path.
        fill_port = "store" if (stream.has_stores and not stream.has_loads) else "load"
        fill_by_port[fill_port] = fill_by_port.get(fill_port, 0.0) + lines * (
            machine.fill_cost.get(level, 0.0)
        )
        prefetched = (
            0 < abs(stream.step_bytes) <= machine.prefetch_max_stride
        ) or stream.sw_prefetched
        if level == MemLevel.RAM:
            dram = machine.dram
            bw = min(dram.core_bandwidth, dram.socket_bandwidth / active)
            transfer_ns = lines * line_bytes / bw
            if not prefetched:
                transfer_ns = max(
                    transfer_ns, lines * dram.latency_ns / machine.demand_mlp
                )
            bounds[f"mem:{stream.base}:RAM"] = transfer_ns
            uncore_ns += transfer_ns
        else:
            cfg = machine.cache(level)
            if cfg.core_domain:
                cycles = lines * line_bytes / cfg.bandwidth
                if not prefetched:
                    cycles = max(cycles, lines * cfg.latency / machine.demand_mlp)
                bounds[f"mem:{stream.base}:{level.label}"] = cycles
                core_mem_cycles += cycles
            else:
                bw = cfg.bandwidth
                if cfg.shared:
                    bw = min(cfg.bandwidth, cfg.bandwidth * L3_SHARING_FACTOR / active)
                transfer_ns = lines * line_bytes / bw
                if not prefetched:
                    transfer_ns = max(
                        transfer_ns, lines * cfg.latency / machine.demand_mlp
                    )
                bounds[f"mem:{stream.base}:{level.label}"] = transfer_ns
                uncore_ns += transfer_ns

    # --- penalties ----------------------------------------------------------
    penalty = _split_penalty(analysis, bindings, machine)
    if penalty:
        bounds["penalty:split"] = penalty
    if conflict_cycles:
        bounds["penalty:conflict"] = conflict_cycles
        penalty += conflict_cycles
    if aliasing_cycles:
        bounds["penalty:aliasing"] = aliasing_cycles
        penalty += aliasing_cycles

    # Line fills occupy memory ports alongside demand accesses.
    if fill_by_port:
        for port, cycles in fill_by_port.items():
            slots = machine.ports.get(port, 1.0)
            bounds[f"port:{port}"] = bounds.get(f"port:{port}", 0.0) + cycles / slots
        bounds["fill"] = sum(fill_by_port.values())

    pipe_cycles = max(
        (
            v
            for k, v in bounds.items()
            if k.startswith(("port:", "frontend", "recurrence"))
        ),
        default=0.0,
    )
    bounds["core_mem_cycles"] = core_mem_cycles
    bounds["branch_cost"] = machine.branch_cost

    return TimingBreakdown(
        pipe_cycles=pipe_cycles,
        core_mem_cycles=core_mem_cycles,
        uncore_ns=uncore_ns,
        branch_cycles=machine.branch_cost,
        penalty_cycles=penalty,
        bounds=bounds,
    )
