"""Machine topology: sockets, cores, pinning, bandwidth sharing.

MicroLauncher pins work to cores ("For sequential execution, the program
is pinned on a given default core or chosen by the user.  For parallel
execution, the system handles thread core pinning", section 4).  This
module resolves core ids to sockets and answers the question the memory
model needs: how many bandwidth-hungry peers share my socket?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig


@dataclass(frozen=True, slots=True)
class Core:
    """One logical core: global id plus socket placement."""

    core_id: int
    socket: int
    local_id: int


class Machine:
    """A machine instance: config plus core topology and pinning helpers."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.cores = tuple(
            Core(core_id=s * config.cores_per_socket + l, socket=s, local_id=l)
            for s in range(config.n_sockets)
            for l in range(config.cores_per_socket)
        )

    def core(self, core_id: int) -> Core:
        if not 0 <= core_id < len(self.cores):
            raise ValueError(
                f"core {core_id} out of range for {self.config.name} "
                f"({len(self.cores)} cores)"
            )
        return self.cores[core_id]

    def socket_of(self, core_id: int) -> int:
        return self.core(core_id).socket

    # -- pinning policies ---------------------------------------------------

    def pin_compact(self, n: int) -> list[int]:
        """Fill sockets one at a time (cores 0,1,2,... in order)."""
        self._check_count(n)
        return list(range(n))

    def pin_scatter(self, n: int) -> list[int]:
        """Round-robin across sockets — the default for forked multi-core
        runs, spreading memory demand over every socket's channels."""
        self._check_count(n)
        order: list[int] = []
        for local in range(self.config.cores_per_socket):
            for socket in range(self.config.n_sockets):
                order.append(socket * self.config.cores_per_socket + local)
        return order[:n]

    def _check_count(self, n: int) -> None:
        if not 1 <= n <= len(self.cores):
            raise ValueError(
                f"{self.config.name} has {len(self.cores)} cores; asked for {n}"
            )

    # -- bandwidth sharing ----------------------------------------------------

    def active_per_socket(self, pinned_cores: list[int]) -> dict[int, int]:
        """How many of ``pinned_cores`` land on each socket."""
        counts: dict[int, int] = {}
        for core_id in pinned_cores:
            socket = self.socket_of(core_id)
            counts[socket] = counts.get(socket, 0) + 1
        return counts

    def peers_on_socket(self, core_id: int, pinned_cores: list[int]) -> int:
        """Number of pinned cores (including this one) sharing the socket
        of ``core_id`` — the divisor for shared L3/DRAM bandwidth."""
        socket = self.socket_of(core_id)
        return sum(1 for c in pinned_cores if self.socket_of(c) == socket)
