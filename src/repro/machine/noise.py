"""Environmental noise: the adversary MicroLauncher's stabilization fights.

Section 4.7 lists the launcher's stability measures: pin the experiment to
a core, disable interrupts, heat the instruction and data caches, repeat
the kernel in an inner loop, and repeat the measurement in an outer loop.
To make those measures *testable* in simulation, this module provides a
deterministic (seeded) noise process whose magnitude responds to exactly
those controls:

- unpinned runs suffer occasional migration spikes (large, rare),
- interrupt-enabled runs suffer periodic small spikes (timer ticks),
- cold-cache first measurements are inflated by the warm-up factor,
- every run carries a small baseline jitter that averages out over the
  inner-repetition loop (jitter scales as 1/sqrt(repetitions)).

With every control engaged, run-to-run spread collapses to the baseline —
the launcher's stability claim, reproduced as an assertable property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: Cached primitive draws per noise stream, keyed by ``(|seed|, experiment)``.
#:
#: A stream's first three draws — one standard normal, two uniforms — do
#: not depend on the duration being perturbed or on the environment, only
#: on the stream identity, so they can be drawn once and replayed for
#: every measurement that shares the stream.  Constructing the
#: ``SeedSequence``/``Generator`` pair dominates :meth:`NoiseModel.perturb`
#: (an order of magnitude over the draws themselves); a kernel sweep that
#: reuses one noise seed across hundreds of configurations pays it once
#: per stream instead of once per configuration.
_STREAM_CACHE: dict[tuple[int, int], tuple[float, float, float]] = {}

#: Cache bound: cleared wholesale when full (campaign runs derive a fresh
#: seed per job, so unbounded growth is otherwise possible).
_STREAM_CACHE_MAX = 1 << 16


@dataclass(frozen=True, slots=True)
class NoiseEnvironment:
    """Which stabilization measures are in effect for a measurement."""

    pinned: bool = True
    interrupts_disabled: bool = True
    warmed_up: bool = True
    inner_repetitions: int = 1

    def stabilized(self) -> bool:
        return self.pinned and self.interrupts_disabled and self.warmed_up


@dataclass(frozen=True, slots=True)
class NoiseModel:
    """Deterministic noise generator.

    Magnitudes are multiplicative factors applied to a measured duration;
    they are deliberately large enough that an unstabilized measurement is
    *obviously* unstable (the paper's motivation for MicroLauncher) and a
    stabilized one is repeatable to a fraction of a percent.
    """

    seed: int = 12345
    baseline_jitter: float = 0.004          # 0.4 % 1-sigma, per measurement
    migration_probability: float = 0.15     # unpinned: chance of a spike
    migration_magnitude: float = 0.25       # ... costing up to +25 %
    interrupt_rate_per_ms: float = 1.0      # timer ticks while unmasked
    interrupt_cost_us: float = 8.0          # each tick steals ~8 us
    cold_start_factor: float = 1.6          # first run without warm-up

    def rng_for(self, experiment: int) -> np.random.Generator:
        """Independent, reproducible stream per outer-loop experiment.

        ``experiment`` may be negative (the overhead-measurement slot is
        conventionally -1); seed material must be non-negative.
        """
        return np.random.default_rng(
            np.random.SeedSequence((abs(self.seed), experiment + 1_000_003))
        )

    def perturb(
        self,
        duration_ns: float,
        env: NoiseEnvironment,
        experiment: int,
        *,
        first_run: bool = False,
    ) -> float:
        """Apply the environment's noise to an ideal duration."""
        rng = self.rng_for(experiment)
        reps = max(1, env.inner_repetitions)
        # Baseline jitter averages down with the inner-loop length: the
        # stated purpose of the inner loop (section 4, "augments the
        # evaluation time of the kernel, further stabilizing the results").
        jitter_sigma = self.baseline_jitter / np.sqrt(reps)
        factor = 1.0 + rng.normal(0.0, jitter_sigma)
        if not env.pinned and rng.random() < self.migration_probability:
            factor += rng.random() * self.migration_magnitude
        if not env.interrupts_disabled:
            expected_ticks = (duration_ns / 1e6) * self.interrupt_rate_per_ms
            ticks = rng.poisson(max(expected_ticks, 0.0))
            duration_ns += ticks * self.interrupt_cost_us * 1e3
        if first_run and not env.warmed_up:
            factor *= self.cold_start_factor
        return duration_ns * max(factor, 0.5)

    # ------------------------------------------------------------------ #
    # vectorized fast path                                                 #
    # ------------------------------------------------------------------ #

    @staticmethod
    def clear_stream_cache() -> None:
        """Drop cached stream primitives (benchmarks time cold starts)."""
        _STREAM_CACHE.clear()

    def _stream_primitives(
        self, experiments: Sequence[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The first three draws of each experiment's stream, cached.

        ``numpy`` seeds every stream independently, so draws taken past
        the ones a given environment consumes never change the earlier
        values — caching one normal and two uniforms per stream serves
        every interrupt-masked environment, pinned or not.
        """
        seed_key = abs(self.seed)
        n = len(experiments)
        z = np.empty(n)
        u1 = np.empty(n)
        u2 = np.empty(n)
        for i, experiment in enumerate(experiments):
            key = (seed_key, experiment)
            primitives = _STREAM_CACHE.get(key)
            if primitives is None:
                rng = self.rng_for(experiment)
                primitives = (
                    float(rng.standard_normal()),
                    float(rng.random()),
                    float(rng.random()),
                )
                if len(_STREAM_CACHE) >= _STREAM_CACHE_MAX:
                    _STREAM_CACHE.clear()
                _STREAM_CACHE[key] = primitives
            z[i], u1[i], u2[i] = primitives
        return z, u1, u2

    def perturb_batch(
        self,
        durations_ns: object,
        env: NoiseEnvironment,
        experiments: Sequence[int],
        first_run_mask: object = None,
    ) -> np.ndarray:
        """Vectorized :meth:`perturb`: one call for many experiments.

        ``durations_ns`` is an array whose *last* axis aligns with
        ``experiments`` — pass shape ``(n_experiments,)`` for one
        configuration or ``(n_configs, n_experiments)`` for a whole sweep
        sharing this noise model.  ``first_run_mask`` (aligned with
        ``experiments``) marks which experiments are a configuration's
        first run.  Every element of the result is bit-identical to the
        corresponding sequential call
        ``perturb(durations_ns[..., i], env, experiments[i], first_run=first_run_mask[i])``
        — the per-experiment stream definition is frozen API, and the
        vectorized arithmetic replays the scalar operation order exactly.
        """
        durations = np.array(durations_ns, dtype=np.float64, ndmin=1)
        experiments = [int(e) for e in experiments]
        n = len(experiments)
        if durations.shape[-1] != n:
            raise ValueError(
                f"durations last axis ({durations.shape[-1]}) must match "
                f"the number of experiments ({n})"
            )
        reps = max(1, env.inner_repetitions)
        jitter_sigma = self.baseline_jitter / np.sqrt(reps)

        if env.interrupts_disabled:
            # No duration-dependent draw: the whole stream prefix is
            # cacheable and the math is pure array arithmetic.
            z, u1, u2 = self._stream_primitives(experiments)
            factors = 1.0 + jitter_sigma * z
            if not env.pinned:
                factors = np.where(
                    u1 < self.migration_probability,
                    factors + u2 * self.migration_magnitude,
                    factors,
                )
        else:
            # The poisson tick count depends on each duration, so the
            # streams must be consumed live, in scalar draw order.
            generators = [self.rng_for(e) for e in experiments]
            factors = np.empty(n)
            for i, rng in enumerate(generators):
                factor = 1.0 + rng.normal(0.0, jitter_sigma)
                if not env.pinned and rng.random() < self.migration_probability:
                    factor += rng.random() * self.migration_magnitude
                factors[i] = factor
            expected = np.maximum(
                durations / 1e6 * self.interrupt_rate_per_ms, 0.0
            )
            ticks = np.empty(durations.shape)
            if durations.ndim == 1:
                for i, rng in enumerate(generators):
                    ticks[i] = rng.poisson(expected[i])
            else:
                # Each configuration perturbs with a *fresh* generator in
                # the sequential path; replay that by snapshotting the
                # post-prefix state and restoring it per configuration.
                for i, rng in enumerate(generators):
                    state = rng.bit_generator.state
                    for k in range(durations.shape[0]):
                        rng.bit_generator.state = state
                        ticks[k, i] = rng.poisson(expected[k, i])
            durations = durations + ticks * self.interrupt_cost_us * 1e3

        if first_run_mask is not None and not env.warmed_up:
            mask = np.asarray(first_run_mask, dtype=bool)
            factors = np.where(mask, factors * self.cold_start_factor, factors)
        return durations * np.maximum(factors, 0.5)
