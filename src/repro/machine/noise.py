"""Environmental noise: the adversary MicroLauncher's stabilization fights.

Section 4.7 lists the launcher's stability measures: pin the experiment to
a core, disable interrupts, heat the instruction and data caches, repeat
the kernel in an inner loop, and repeat the measurement in an outer loop.
To make those measures *testable* in simulation, this module provides a
deterministic (seeded) noise process whose magnitude responds to exactly
those controls:

- unpinned runs suffer occasional migration spikes (large, rare),
- interrupt-enabled runs suffer periodic small spikes (timer ticks),
- cold-cache first measurements are inflated by the warm-up factor,
- every run carries a small baseline jitter that averages out over the
  inner-repetition loop (jitter scales as 1/sqrt(repetitions)).

With every control engaged, run-to-run spread collapses to the baseline —
the launcher's stability claim, reproduced as an assertable property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class NoiseEnvironment:
    """Which stabilization measures are in effect for a measurement."""

    pinned: bool = True
    interrupts_disabled: bool = True
    warmed_up: bool = True
    inner_repetitions: int = 1

    def stabilized(self) -> bool:
        return self.pinned and self.interrupts_disabled and self.warmed_up


@dataclass(frozen=True, slots=True)
class NoiseModel:
    """Deterministic noise generator.

    Magnitudes are multiplicative factors applied to a measured duration;
    they are deliberately large enough that an unstabilized measurement is
    *obviously* unstable (the paper's motivation for MicroLauncher) and a
    stabilized one is repeatable to a fraction of a percent.
    """

    seed: int = 12345
    baseline_jitter: float = 0.004          # 0.4 % 1-sigma, per measurement
    migration_probability: float = 0.15     # unpinned: chance of a spike
    migration_magnitude: float = 0.25       # ... costing up to +25 %
    interrupt_rate_per_ms: float = 1.0      # timer ticks while unmasked
    interrupt_cost_us: float = 8.0          # each tick steals ~8 us
    cold_start_factor: float = 1.6          # first run without warm-up

    def rng_for(self, experiment: int) -> np.random.Generator:
        """Independent, reproducible stream per outer-loop experiment.

        ``experiment`` may be negative (the overhead-measurement slot is
        conventionally -1); seed material must be non-negative.
        """
        return np.random.default_rng(
            np.random.SeedSequence((abs(self.seed), experiment + 1_000_003))
        )

    def perturb(
        self,
        duration_ns: float,
        env: NoiseEnvironment,
        experiment: int,
        *,
        first_run: bool = False,
    ) -> float:
        """Apply the environment's noise to an ideal duration."""
        rng = self.rng_for(experiment)
        reps = max(1, env.inner_repetitions)
        # Baseline jitter averages down with the inner-loop length: the
        # stated purpose of the inner loop (section 4, "augments the
        # evaluation time of the kernel, further stabilizing the results").
        jitter_sigma = self.baseline_jitter / np.sqrt(reps)
        factor = 1.0 + rng.normal(0.0, jitter_sigma)
        if not env.pinned and rng.random() < self.migration_probability:
            factor += rng.random() * self.migration_magnitude
        if not env.interrupts_disabled:
            expected_ticks = (duration_ns / 1e6) * self.interrupt_rate_per_ms
            ticks = rng.poisson(max(expected_ticks, 0.0))
            duration_ns += ticks * self.interrupt_cost_us * 1e3
        if first_run and not env.warmed_up:
            factor *= self.cold_start_factor
        return duration_ns * max(factor, 0.5)
