"""Machine-description serialization.

"The tools are entirely independent of the underlying architecture"
(section 7) — which for the reproduction means users must be able to
describe *their* machine, not just pick a Table-1 preset.  This module
round-trips :class:`~repro.machine.config.MachineConfig` through plain
dictionaries / JSON files::

    microlauncher kernel.s --machine-file mybox.json

A machine file only needs the fields that differ from the defaults; cache
levels and DRAM are required (there is no meaningful default hierarchy).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.machine.config import (
    CacheLevelConfig,
    DramConfig,
    MachineConfig,
    MemLevel,
)


class MachineFileError(ValueError):
    """A machine description file is malformed."""


def machine_to_dict(config: MachineConfig) -> dict:
    """Serialize a machine description to plain data (JSON-safe)."""
    data = dataclasses.asdict(config)
    data["caches"] = [
        {**dataclasses.asdict(c), "level": c.level.label} for c in config.caches
    ]
    data["fill_cost"] = {
        level.label: cost for level, cost in config.fill_cost.items()
    }
    data["freq_steps"] = list(config.freq_steps)
    return data


def machine_from_dict(data: dict) -> MachineConfig:
    """Deserialize a machine description.

    Raises
    ------
    MachineFileError
        On missing required sections or unknown fields, with the field
        named — a machine file typo should not silently become a default.
    """
    data = dict(data)
    for required in ("name", "freq_ghz", "caches", "dram"):
        if required not in data:
            raise MachineFileError(f"machine description is missing {required!r}")

    try:
        caches = tuple(
            CacheLevelConfig(
                **{**c, "level": MemLevel[c["level"]]}
            )
            for c in data.pop("caches")
        )
    except KeyError as exc:
        raise MachineFileError(f"bad cache level name: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise MachineFileError(f"bad cache field: {exc}") from exc

    try:
        dram = DramConfig(**data.pop("dram"))
    except TypeError as exc:
        raise MachineFileError(f"bad dram field: {exc}") from exc

    if "fill_cost" in data:
        try:
            data["fill_cost"] = {
                MemLevel[name]: cost for name, cost in data.pop("fill_cost").items()
            }
        except KeyError as exc:
            raise MachineFileError(f"bad fill_cost level: {exc}") from exc
    if "freq_steps" in data:
        data["freq_steps"] = tuple(data["freq_steps"])
    data.setdefault("uncore_freq_ghz", data["freq_ghz"])
    data.setdefault("n_sockets", 1)
    data.setdefault("cores_per_socket", 1)

    known = {f.name for f in dataclasses.fields(MachineConfig)}
    unknown = set(data) - known
    if unknown:
        raise MachineFileError(f"unknown machine fields: {sorted(unknown)}")
    try:
        return MachineConfig(caches=caches, dram=dram, **data)
    except (TypeError, ValueError) as exc:
        raise MachineFileError(str(exc)) from exc


def machine_overlay(base: MachineConfig, derived: MachineConfig) -> dict:
    """The JSON-safe fields on which ``derived`` differs from ``base``.

    The inverse of :func:`apply_machine_overlay`:
    ``apply_machine_overlay(base, machine_overlay(base, derived)) ==
    derived`` for any two valid configs.  Compound fields (``ports``,
    ``caches``, ``fill_cost``) appear whole when any part differs — an
    overlay is a patch file, not a structural diff.
    """
    base_data = machine_to_dict(base)
    derived_data = machine_to_dict(derived)
    return {
        key: value
        for key, value in derived_data.items()
        if base_data.get(key) != value
    }


def apply_machine_overlay(base: MachineConfig, overlay: dict) -> MachineConfig:
    """Apply an overlay (as produced by :func:`machine_overlay`) to ``base``.

    Overlay values replace the corresponding base fields whole; every
    field of :class:`MachineConfig` may appear.  This is how a derived
    instruction table feeds back into the analytic model: the
    characterization round-trip re-predicts its probes on
    ``apply_machine_overlay(base, table_overlay)``.

    Raises
    ------
    MachineFileError
        On unknown fields or values the config rejects, exactly like a
        malformed machine file.
    """
    if not isinstance(overlay, dict):
        raise MachineFileError(
            f"machine overlay must be a dict, got {type(overlay).__name__}"
        )
    return machine_from_dict({**machine_to_dict(base), **overlay})


def save_overlay(overlay: dict, path: str | Path) -> Path:
    """Write a machine-config overlay as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(overlay, indent=2, sort_keys=True) + "\n")
    return path


def load_overlay(path: str | Path) -> dict:
    """Read a machine-config overlay from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise MachineFileError(f"no overlay file at {path}") from None
    except json.JSONDecodeError as exc:
        raise MachineFileError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise MachineFileError(f"{path} does not hold a JSON object")
    return data


def save_machine(config: MachineConfig, path: str | Path) -> Path:
    """Write a machine description as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(machine_to_dict(config), indent=2) + "\n")
    return path


def load_machine(path: str | Path) -> MachineConfig:
    """Read a machine description from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise MachineFileError(f"no machine file at {path}") from None
    except json.JSONDecodeError as exc:
        raise MachineFileError(f"{path} is not valid JSON: {exc}") from exc
    return machine_from_dict(data)
