"""Energy/power model (paper extension).

The paper's conclusion: "MicroCreator creates variations of a described
program in order to evaluate variations in performance **or power
utilization**" and "Microtools give an input on the performance and power
utilization of a given architecture".  The published evaluation never
shows a power figure, so this module is the documented extension that
makes the claim executable in the reproduction.

Model (standard CMOS + memory-transfer accounting):

- **Dynamic core energy**: each executed micro-op costs a class-dependent
  energy at nominal voltage; under DVFS the per-op energy scales as
  ``(f / f_nom)^2`` (voltage tracks frequency linearly in the classic
  DVFS regime, E ~ C V^2).
- **Memory transfer energy**: each cache line moved from a level costs a
  fixed per-line energy that grows with distance (L2 < L3 < DRAM);
  transfers are uncore and do not scale with core DVFS.
- **Static energy**: a constant leakage power per active core plus an
  uncore floor, integrated over the iteration's wall-clock time — the
  term that makes *slower* runs cost energy, creating the race-to-idle
  vs. DVFS trade-off the model exposes.

All constants are per-preset-agnostic defaults of the right order of
magnitude for the paper's era (Nehalem-class, 32 nm): they produce the
qualitative DVFS behaviour (core-bound kernels: energy per iteration
falls as frequency falls until static time dominates; memory-bound
kernels: lowering frequency is nearly free) without claiming watt-level
accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.config import MachineConfig, MemLevel
from repro.machine.kernel_model import ArrayBinding, KernelAnalysis
from repro.machine.pipeline import TimingBreakdown, estimate_iteration_time


@dataclass(frozen=True, slots=True)
class PowerModel:
    """Energy coefficients (nanojoules / watts)."""

    #: Dynamic energy per micro-op at nominal frequency, by port class (nJ).
    uop_energy_nj: dict[str, float] = field(
        default_factory=lambda: {
            "load": 0.30,
            "store": 0.35,
            "alu": 0.15,
            "fp_add": 0.40,
            "fp_mul": 0.60,
            "branch": 0.10,
        }
    )
    #: Energy per 64-byte line transferred from each level (nJ).
    line_energy_nj: dict[MemLevel, float] = field(
        default_factory=lambda: {
            MemLevel.L2: 1.0,
            MemLevel.L3: 4.0,
            MemLevel.RAM: 20.0,
        }
    )
    #: Leakage power per active core (W) and uncore floor (W).
    core_static_w: float = 1.5
    uncore_static_w: float = 4.0


@dataclass(frozen=True, slots=True)
class EnergyBreakdown:
    """Energy per loop iteration, decomposed (nanojoules)."""

    dynamic_nj: float
    memory_nj: float
    static_nj: float
    time_ns: float

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.memory_nj + self.static_nj

    @property
    def average_power_w(self) -> float:
        """nJ / ns == W."""
        return self.total_nj / self.time_ns if self.time_ns else 0.0


def estimate_iteration_energy(
    analysis: KernelAnalysis,
    bindings: dict[str, ArrayBinding],
    machine: MachineConfig,
    *,
    freq_ghz: float | None = None,
    model: PowerModel | None = None,
    active_cores_on_socket: int = 1,
    timing: TimingBreakdown | None = None,
) -> EnergyBreakdown:
    """Estimate energy for one loop iteration at ``freq_ghz``.

    ``timing`` may be supplied to avoid recomputing it; otherwise the
    standard pipeline estimate is used.
    """
    model = model or PowerModel()
    freq = freq_ghz or machine.freq_ghz
    if timing is None:
        timing = estimate_iteration_time(
            analysis, bindings, machine, active_cores_on_socket=active_cores_on_socket
        )
    time_ns = timing.time_ns(freq)

    # Dynamic: per-op energy scaled by the DVFS square law.
    scale = (freq / machine.freq_ghz) ** 2
    dynamic = 0.0
    for port, demand in analysis.port_demand.items():
        dynamic += demand * model.uop_energy_nj.get(port, 0.2)
    dynamic *= scale

    # Memory: lines per iteration from each beyond-L1 level.
    memory = 0.0
    for stream in analysis.streams.values():
        if not stream.accesses:
            continue
        binding = bindings.get(stream.base)
        level = binding.resolve_residence(machine) if binding else MemLevel.L1
        if level == MemLevel.L1:
            continue
        alignment = binding.alignment if binding else 0
        memory += stream.touched_lines(alignment) * model.line_energy_nj.get(level, 0.0)

    # Static: leakage over the iteration's wall-clock time.
    static = (model.core_static_w + model.uncore_static_w) * time_ns

    return EnergyBreakdown(
        dynamic_nj=dynamic, memory_nj=memory, static_nj=static, time_ns=time_ns
    )


def energy_frequency_sweep(
    analysis: KernelAnalysis,
    bindings: dict[str, ArrayBinding],
    machine: MachineConfig,
    *,
    model: PowerModel | None = None,
) -> dict[float, EnergyBreakdown]:
    """Energy per iteration at every preset DVFS step — the experiment the
    paper's power-utilization claim suggests but never shows."""
    return {
        f: estimate_iteration_energy(
            analysis, bindings, machine, freq_ghz=f, model=model
        )
        for f in machine.freq_steps
    }
