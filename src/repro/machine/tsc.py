"""The simulated timestamp counter.

The paper's MicroLauncher times kernels with ``rdtsc`` [ref 5], whose
modern ("invariant TSC") behaviour counts at the *nominal* frequency
regardless of the core's current DVFS state.  That invariance is the
mechanism behind Fig. 13: when the core slows down, core-bound work takes
more TSC cycles, while uncore-bound work (L3/RAM) takes the same number.

:class:`TimestampCounter` is a virtual clock: the launcher advances it by
simulated durations and reads it exactly like ``rdtsc``.
"""

from __future__ import annotations


class TimestampCounter:
    """A monotonically advancing reference-frequency cycle counter."""

    def __init__(self, nominal_ghz: float) -> None:
        if nominal_ghz <= 0:
            raise ValueError("nominal frequency must be positive")
        self.nominal_ghz = nominal_ghz
        self._now_ns = 0.0

    def read(self) -> int:
        """Current counter value in TSC cycles (what ``rdtsc`` returns)."""
        return int(self._now_ns * self.nominal_ghz)

    @property
    def now_ns(self) -> float:
        return self._now_ns

    def advance_ns(self, duration_ns: float) -> None:
        """Advance simulated wall-clock time."""
        if duration_ns < 0:
            raise ValueError("time cannot run backwards")
        self._now_ns += duration_ns

    def advance_core_cycles(self, cycles: float, core_freq_ghz: float) -> None:
        """Advance by work measured in *core* cycles at the current DVFS
        frequency — the conversion that makes TSC counts DVFS-dependent
        for core-bound work."""
        if core_freq_ghz <= 0:
            raise ValueError("core frequency must be positive")
        self._now_ns += cycles / core_freq_ghz

    def cycles_between(self, start: int, end: int) -> int:
        """Elapsed TSC cycles between two reads."""
        return end - start
