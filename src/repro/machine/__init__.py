"""Simulated x86 machine substrate.

The paper measures real Nehalem and Sandy Bridge machines; this package is
the documented substitution (see DESIGN.md): an analytic, steady-state
model of a superscalar core attached to a multi-level memory hierarchy,
with explicit core/uncore frequency domains, per-socket shared DRAM
bandwidth, a deterministic OS-noise process, and a reference-frequency
timestamp counter.

Layers:

- :mod:`repro.machine.config` -- machine descriptions and the three paper
  presets (dual-socket Nehalem X5650, quad-socket Nehalem X7550, Sandy
  Bridge E3-1240),
- :mod:`repro.machine.kernel_model` -- static analysis of a kernel loop
  body (streams, port pressure, dependence recurrences),
- :mod:`repro.machine.pipeline` -- the cycle model producing per-iteration
  timings split into core-domain cycles and uncore-domain nanoseconds,
- :mod:`repro.machine.cache` -- a trace-driven set-associative cache
  simulator used for validation and conflict studies,
- :mod:`repro.machine.topology` -- sockets, cores, pinning, bandwidth
  sharing,
- :mod:`repro.machine.tsc` -- the frequency-invariant timestamp counter,
- :mod:`repro.machine.noise` -- environmental noise that MicroLauncher's
  stabilization machinery suppresses.
"""

from repro.machine.config import (
    CacheLevelConfig,
    DramConfig,
    MachineConfig,
    MemLevel,
    nehalem_2s_x5650,
    nehalem_4s_x7550,
    sandy_bridge_e31240,
    preset,
    PRESETS,
)
from repro.machine.kernel_model import ArrayBinding, KernelAnalysis, MemStream, analyze_kernel
from repro.machine.pipeline import TimingBreakdown, estimate_iteration_time
from repro.machine.cache import Cache, CacheHierarchy, AccessResult
from repro.machine.topology import Machine, Core
from repro.machine.tsc import TimestampCounter
from repro.machine.noise import NoiseModel, NoiseEnvironment
from repro.machine.serialize import (
    MachineFileError,
    load_machine,
    machine_from_dict,
    machine_to_dict,
    save_machine,
)
from repro.machine.power import (
    EnergyBreakdown,
    PowerModel,
    energy_frequency_sweep,
    estimate_iteration_energy,
)

__all__ = [
    "CacheLevelConfig",
    "DramConfig",
    "MachineConfig",
    "MemLevel",
    "nehalem_2s_x5650",
    "nehalem_4s_x7550",
    "sandy_bridge_e31240",
    "preset",
    "PRESETS",
    "ArrayBinding",
    "KernelAnalysis",
    "MemStream",
    "analyze_kernel",
    "TimingBreakdown",
    "estimate_iteration_time",
    "Cache",
    "CacheHierarchy",
    "AccessResult",
    "Machine",
    "Core",
    "TimestampCounter",
    "NoiseModel",
    "NoiseEnvironment",
    "EnergyBreakdown",
    "PowerModel",
    "energy_frequency_sweep",
    "estimate_iteration_energy",
    "MachineFileError",
    "load_machine",
    "machine_from_dict",
    "machine_to_dict",
    "save_machine",
]
