"""Static analysis of a kernel loop body.

Turns a concrete loop body (list of :class:`~repro.isa.Instruction`) into
the quantities the cycle model consumes: execution-port demand, front-end
width demand, loop-carried dependence recurrences, and per-array *memory
streams* (which addresses the loop touches each iteration, at what stride,
and how wide).

The analysis is purely structural — it never executes the loop — which is
what makes sweeping thousands of MicroCreator variants cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, RegisterOperand
from repro.isa.registers import PhysReg
from repro.isa.semantics import OpcodeKind
from repro.machine.config import MemLevel


@dataclass(frozen=True, slots=True)
class ArrayBinding:
    """How MicroLauncher bound one base register to an allocated array.

    Attributes
    ----------
    register:
        Canonical 64-bit register name holding the array pointer.
    size_bytes:
        Allocated array size; determines cache residence unless
        ``residence`` overrides it.
    alignment:
        Byte offset of the array start from a page-aligned base — the
        quantity MicroLauncher's alignment sweeps vary (section 4.2).
    residence:
        Optional residence override, for callers that know the reuse
        pattern better than the raw footprint does (the matmul study).
    """

    register: str
    size_bytes: int
    alignment: int = 0
    residence: MemLevel | None = None

    def resolve_residence(self, machine) -> MemLevel:
        if self.residence is not None:
            return self.residence
        return machine.residence_for(self.size_bytes)


@dataclass(frozen=True, slots=True)
class MemAccess:
    """One static memory access in the loop body."""

    offset: int
    width: int
    is_store: bool
    requires_alignment: bool
    opcode: str


@dataclass(slots=True)
class MemStream:
    """All accesses through one base register, plus its per-iteration step."""

    base: str
    accesses: list[MemAccess] = field(default_factory=list)
    step_bytes: int = 0
    #: Software prefetch hints cover this stream (a ``prefetcht0`` through
    #: the same base register); restores full memory-level parallelism
    #: for strides the hardware prefetcher cannot follow.
    sw_prefetched: bool = False

    @property
    def has_loads(self) -> bool:
        return any(not a.is_store for a in self.accesses)

    @property
    def has_stores(self) -> bool:
        return any(a.is_store for a in self.accesses)

    @property
    def bytes_accessed(self) -> int:
        """Payload bytes the loop body moves through this stream."""
        return sum(a.width for a in self.accesses)

    def _window(self, line: int) -> int:
        """Iterations after which the access pattern repeats modulo lines.

        The pointer advances ``step`` bytes per iteration; offsets within a
        line recur with period ``line / gcd(step, line)``.  Amortizing over
        this window removes line-granularity quantization (a 5x-unrolled
        16-byte kernel touches 1.25 lines per iteration, not "2").
        """
        step = abs(self.step_bytes)
        if step == 0:
            return 1
        from math import gcd

        return line // gcd(step, line)

    def touched_lines(self, alignment: int, line: int = 64) -> float:
        """Steady-state distinct cache lines touched per loop iteration.

        Counts the union of lines covered by the body's accesses over one
        repeat window of the stride pattern, divided by the window length:
        unit-stride streaming yields ``|step| / line`` (fractional), and a
        stride wider than a line yields one full line per access — so
        strided kernels are charged full-line traffic automatically.
        """
        window = self._window(line)
        step = self.step_bytes
        lines: set[int] = set()
        for k in range(window):
            base = alignment + k * step
            for a in self.accesses:
                lo = (base + a.offset) // line
                hi = (base + a.offset + max(a.width, 1) - 1) // line
                lines.update(range(lo, hi + 1))
        return len(lines) / window

    def amortized_splits(self, alignment: int, line: int = 64) -> dict[str, float]:
        """Line-boundary crossings per iteration, keyed by opcode.

        Amortized over the stride window like :meth:`touched_lines`: a
        16-byte access stream at alignment 4 with a 16-byte step splits
        once per four iterations, i.e. 0.25 per iteration.
        """
        window = self._window(line)
        step = self.step_bytes
        splits: dict[str, float] = {}
        for k in range(window):
            base = alignment + k * step
            for a in self.accesses:
                start = (base + a.offset) % line
                if a.width > 1 and start + a.width > line:
                    splits[a.opcode] = splits.get(a.opcode, 0.0) + 1.0
        return {op: count / window for op, count in splits.items()}

    def split_accesses(self, alignment: int, line: int = 64) -> list[MemAccess]:
        """Accesses (static body copies) crossing a line at this alignment."""
        out = []
        for a in self.accesses:
            start = (alignment + a.offset) % line
            if a.width > 1 and start + a.width > line:
                out.append(a)
        return out

    def first_phase(self, alignment: int) -> int:
        """Address phase of the stream's first access (for conflict tests)."""
        first = min((a.offset for a in self.accesses), default=0)
        return alignment + first


@dataclass(slots=True)
class KernelAnalysis:
    """The cycle model's view of one kernel loop body."""

    n_instructions: int
    n_uops: int
    port_demand: dict[str, float]
    recurrence_cycles: float
    streams: dict[str, MemStream]
    counter_step: int
    iteration_counter_step: int

    @property
    def n_loads(self) -> int:
        return sum(
            sum(1 for a in s.accesses if not a.is_store) for s in self.streams.values()
        )

    @property
    def n_stores(self) -> int:
        return sum(sum(1 for a in s.accesses if a.is_store) for s in self.streams.values())

    @property
    def elements_per_iteration(self) -> int:
        """Elements consumed per loop iteration (|counter step|).

        The paper's cycles-per-iteration metric divides by the element
        count the linked counter tracks (section 4.4); kernels without a
        counter fall back to 1.
        """
        return abs(self.counter_step) if self.counter_step else 1


def _canonical(reg) -> str:
    if isinstance(reg, PhysReg):
        return reg.canonical64.name
    return str(reg)


def analyze_kernel(body: list[Instruction]) -> KernelAnalysis:
    """Analyze a concrete loop body (the output of ``kernel_loop()``).

    Raises
    ------
    ValueError
        If the body contains logical registers (unlowered kernels cannot
        be timed).
    """
    port_demand: dict[str, float] = {}
    streams: dict[str, MemStream] = {}
    steps: dict[str, int] = {}
    chains: dict[str, float] = {}
    first_access: dict[str, str] = {}  # register -> "read" | "write"
    n_uops = 0

    def bump(port: str, amount: float = 1.0) -> None:
        port_demand[port] = port_demand.get(port, 0.0) + amount

    for instr in body:
        info = instr.info
        if info.kind is OpcodeKind.NOP:
            continue
        n_uops += 1

        # -- execution ports ------------------------------------------------
        if instr.is_branch:
            bump("branch")
        else:
            if instr.is_load:
                bump("load")
            if instr.is_store:
                bump("store")
            if info.kind is OpcodeKind.MOVE:
                if not (instr.is_load or instr.is_store):
                    bump("alu")  # register-to-register move
            elif info.ports:
                for port in info.ports:
                    bump(port)

        # -- memory streams ---------------------------------------------------
        for mem in instr.memory_operands:
            base = _canonical(mem.base)
            if base.startswith("%") is False:
                raise ValueError(
                    f"cannot analyze unlowered kernel: logical base {base!r} in "
                    f"'{instr.opcode}'"
                )
            stream = streams.setdefault(base, MemStream(base=base))
            if info.kind is OpcodeKind.PREFETCH:
                # A hint, not a demand access: it restores the stream's
                # memory-level parallelism but moves no payload.
                stream.sw_prefetched = True
                continue
            width = info.bytes_moved if info.is_move else 8
            stream.accesses.append(
                MemAccess(
                    offset=mem.offset,
                    width=width,
                    is_store=instr.is_store and mem is instr.operands[-1],
                    requires_alignment=info.requires_alignment,
                    opcode=instr.opcode,
                )
            )

        # -- register steps (induction updates) ------------------------------
        if (
            info.kind is OpcodeKind.INT_ALU
            and instr.opcode.rstrip("lq") in ("add", "sub")
            and len(instr.operands) == 2
            and isinstance(instr.operands[0], ImmediateOperand)
            and isinstance(instr.operands[1], RegisterOperand)
        ):
            reg = _canonical(instr.operands[1].reg)
            sign = 1 if instr.opcode.startswith("add") else -1
            steps[reg] = steps.get(reg, 0) + sign * instr.operands[0].value

        # -- loop-carried recurrences ----------------------------------------
        # A register participates in a carried chain only when it is
        # live-in to the body (first touched by a read): ``mulsd (%r8),
        # %xmm0`` after ``movsd ..., %xmm0`` accumulates *within* the
        # iteration, not across it, because the load re-defines the
        # register each time around.
        written = {_canonical(r) for r in instr.registers_written()}
        read = {_canonical(r) for r in instr.registers_read()}
        for reg in read:
            first_access.setdefault(reg, "read")
        for reg in written & read:
            chains[reg] = chains.get(reg, 0.0) + info.latency
        for reg in written:
            first_access.setdefault(reg, "write")

    for reg, stream in streams.items():
        stream.step_bytes = steps.get(reg, 0)

    # The loop counter is the register whose update the branch tests: the
    # last flag-setting add/sub in the body (construction guarantees this
    # for MicroCreator kernels; compiler kernels follow the same shape).
    counter_step = 0
    iteration_counter_step = 0
    flag_reg: str | None = None
    for instr in body:
        if (
            instr.info.kind is OpcodeKind.INT_ALU
            and len(instr.operands) == 2
            and isinstance(instr.operands[0], ImmediateOperand)
            and isinstance(instr.operands[1], RegisterOperand)
        ):
            flag_reg = _canonical(instr.operands[1].reg)
    if flag_reg is not None:
        counter_step = steps.get(flag_reg, 0)
    for reg, step in steps.items():
        if reg in ("%rax",):  # the Fig. 9 %eax iteration counter
            iteration_counter_step = step

    carried_chains = [
        length for reg, length in chains.items() if first_access.get(reg) == "read"
    ]
    return KernelAnalysis(
        n_instructions=sum(1 for i in body if i.info.kind is not OpcodeKind.NOP),
        n_uops=n_uops,
        port_demand=port_demand,
        recurrence_cycles=max(carried_chains, default=0.0),
        streams=streams,
        counter_step=counter_step,
        iteration_counter_step=iteration_counter_step,
    )
