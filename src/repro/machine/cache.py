"""Trace-driven set-associative cache simulator.

The analytic pipeline model decides residence from footprints; this
simulator is the ground-truth companion: it replays address traces through
a real set-associative LRU hierarchy.  It backs

- validation tests (the analytic residence rule agrees with simulated
  steady-state hit levels),
- conflict studies (alignment configurations that blow associativity), and
- the ablation bench comparing footprint-based vs. trace-based residence.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.machine.config import CacheLevelConfig, MachineConfig, MemLevel


@dataclass(slots=True)
class AccessResult:
    """Where one access hit, and the lines filled on the way."""

    level: MemLevel
    filled: int = 0  # number of levels that allocated the line


class Cache:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheLevelConfig) -> None:
        self.config = config
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.n_sets)
        ]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> tuple[int, int]:
        line = address // self.config.line_bytes
        return line % self.config.n_sets, line

    def probe(self, address: int) -> bool:
        """Access one address; True on hit.  Fills the line on miss (LRU
        eviction), so a steady-state replay converges to the real
        residence."""
        set_idx, tag = self._locate(address)
        ways = self._sets[set_idx]
        if tag in ways:
            ways.move_to_end(tag)
            self.hits += 1
            return True
        self.misses += 1
        ways[tag] = None
        if len(ways) > self.config.assoc:
            ways.popitem(last=False)
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive lookup."""
        set_idx, tag = self._locate(address)
        return tag in self._sets[set_idx]

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CacheHierarchy:
    """An inclusive L1/L2/L3 hierarchy for one core.

    ``access`` walks the levels nearest-first and returns the level that
    served the request (RAM when every cache missed), allocating the line
    in every level on the way back — the inclusive fill policy Nehalem
    uses.
    """

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine
        self.levels: list[Cache] = [Cache(c) for c in machine.caches]

    def access(self, address: int, width: int = 1) -> AccessResult:
        """Access ``width`` bytes at ``address``; wide accesses that cross
        a line boundary probe both lines and report the slowest level."""
        line = self.levels[0].config.line_bytes
        first = address // line
        last = (address + max(width, 1) - 1) // line
        worst = MemLevel.L1
        filled = 0
        for line_idx in range(first, last + 1):
            result = self._access_line(line_idx * line)
            if result.level > worst:
                worst = result.level
            filled += result.filled
        return AccessResult(level=worst, filled=filled)

    def _access_line(self, address: int) -> AccessResult:
        missed: list[Cache] = []
        for cache in self.levels:
            if cache.probe(address):
                return AccessResult(level=cache.config.level, filled=len(missed))
            missed.append(cache)
        return AccessResult(level=MemLevel.RAM, filled=len(missed))

    def replay(self, addresses: list[int], width: int = 1, *, rounds: int = 2) -> dict[MemLevel, int]:
        """Replay a trace ``rounds`` times and histogram the final round.

        The warm-up rounds mirror MicroLauncher's cache-heating step: the
        first traversal's compulsory misses are not what the measurement
        loop sees.
        """
        for _ in range(max(0, rounds - 1)):
            for a in addresses:
                self.access(a, width)
        histogram: dict[MemLevel, int] = {}
        for a in addresses:
            level = self.access(a, width).level
            histogram[level] = histogram.get(level, 0) + 1
        return histogram

    def steady_state_level(self, addresses: list[int], width: int = 1) -> MemLevel:
        """Dominant serving level for a trace in steady state."""
        histogram = self.replay(addresses, width)
        return max(histogram, key=lambda lvl: histogram[lvl])

    def reset_counters(self) -> None:
        for cache in self.levels:
            cache.reset_counters()
