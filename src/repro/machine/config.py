"""Machine descriptions and the three paper presets (Table 1).

Calibration notes
-----------------
Cache latencies and port widths follow the published microarchitecture
numbers (Nehalem: one load port, one store port, three ALU ports, 4-wide
issue; Sandy Bridge: two load ports).  Sustained per-core bandwidths are
calibrated to the usual streaming measurements for these parts:

===========  =========  ==========  =============
level        domain     Nehalem     Sandy Bridge
===========  =========  ==========  =============
L1           core       16 B/cycle  32 B/cycle
L2           core       10 B/cycle  16 B/cycle
L3           uncore     ~18 B/ns    ~22 B/ns
DRAM (core)  uncore     ~10 B/ns    ~12 B/ns
DRAM (skt)   uncore     ~30 B/ns    ~21 B/ns
===========  =========  ==========  =============

The per-core DRAM number is the memory-level-parallelism limit
(``fill_buffers * line / latency``); the per-socket number is the channel
limit that forked multi-core runs saturate (Fig. 14's six-core knee on the
dual-socket Nehalem: 2 sockets x (30 / 10) = 6 streaming cores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class MemLevel(enum.IntEnum):
    """Memory-hierarchy levels, ordered nearest first."""

    L1 = 1
    L2 = 2
    L3 = 3
    RAM = 4

    @property
    def label(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class CacheLevelConfig:
    """One cache level.

    ``bandwidth`` is the per-core sustained streaming bandwidth from this
    level; its unit depends on the level's clock domain: bytes per *core
    cycle* for core-domain levels (L1/L2), bytes per *nanosecond* for
    uncore levels (L3).  ``latency`` is load-use latency in the same
    domain's unit (cycles or ns).
    """

    level: MemLevel
    size_bytes: int
    assoc: int
    latency: float
    bandwidth: float
    line_bytes: int = 64
    core_domain: bool = True
    shared: bool = False  # shared per socket (L3) -> bandwidth divides

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.assoc <= 0:
            raise ValueError(f"invalid cache geometry for {self.level}")
        if self.size_bytes % (self.assoc * self.line_bytes) != 0:
            raise ValueError(
                f"{self.level}: size {self.size_bytes} not divisible into "
                f"{self.assoc}-way sets of {self.line_bytes}B lines"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


@dataclass(frozen=True, slots=True)
class DramConfig:
    """DRAM behind one socket: uncore domain (ns units).

    ``core_bandwidth`` is the single-core concurrency-limited bandwidth in
    bytes/ns; ``socket_bandwidth`` the channel limit all cores of the
    socket share.
    """

    latency_ns: float
    core_bandwidth: float
    socket_bandwidth: float
    channels: int = 3


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """A complete machine description.

    Attributes mirror the mechanisms the paper's experiments exercise.

    ``ports``: slots per cycle per execution-resource class.
    ``branch_cost``: non-amortizable cycles per taken loop branch (the
    carried update->test->branch serialization); the term that makes
    unrolling pay (Figs. 5, 11, 12, 17, 18).
    ``split_penalty``: core cycles per cache-line-crossing access.
    ``conflict_penalty``: core cycles per loop iteration per pair of
    streams whose addresses collide modulo ``conflict_window`` (set/bank
    pressure — the alignment sensitivity of Figs. 15/16).
    ``aliasing_penalty``: core cycles per iteration per load/store pair
    colliding modulo 4096 (4K false dependence).
    ``mlp``: maximum outstanding line fills (fill buffers).
    ``prefetch_max_stride``: largest stride (bytes/iteration) the hardware
    prefetcher covers; beyond it, line fills expose raw latency.
    """

    name: str
    freq_ghz: float
    uncore_freq_ghz: float
    n_sockets: int
    cores_per_socket: int
    caches: tuple[CacheLevelConfig, ...]
    dram: DramConfig
    ports: dict[str, float] = field(
        default_factory=lambda: {
            "load": 1.0,
            "store": 1.0,
            "alu": 3.0,
            "fp_add": 1.0,
            "fp_mul": 1.0,
            "branch": 1.0,
        }
    )
    issue_width: int = 4
    branch_cost: float = 1.5
    split_penalty: float = 4.0
    movaps_misaligned_penalty: float = 20.0
    conflict_penalty: float = 2.0
    conflict_window: int = 4096
    conflict_traffic_factor: float = 0.05
    aliasing_penalty: float = 5.0
    mlp: int = 10
    #: Outstanding misses a *demand* stream sustains without prefetch
    #: (the OOO window's few in-flight loads vs. the prefetcher's full
    #: fill-buffer complement) — what software prefetching recovers.
    demand_mlp: int = 4
    prefetch_max_stride: int = 512
    #: Load-port occupancy (cycles) charged per line filled from each
    #: level: fills compete with demand loads for the L1 fill path, so
    #: even a fully-prefetched stream leaves a per-line residue that grows
    #: with distance — the small but visible RAM separation of Fig. 12.
    fill_cost: dict[MemLevel, float] = field(
        default_factory=lambda: {MemLevel.L2: 1.0, MemLevel.L3: 1.5, MemLevel.RAM: 2.5}
    )
    #: Frequency steps available to the DVFS experiment (Fig. 13), GHz.
    freq_steps: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        levels = [c.level for c in self.caches]
        if levels != sorted(levels) or len(set(levels)) != len(levels):
            raise ValueError("cache levels must be unique and ordered L1..L3")
        if self.freq_ghz <= 0 or self.uncore_freq_ghz <= 0:
            raise ValueError("frequencies must be positive")

    @property
    def total_cores(self) -> int:
        return self.n_sockets * self.cores_per_socket

    def cache(self, level: MemLevel) -> CacheLevelConfig:
        for c in self.caches:
            if c.level == level:
                return c
        raise KeyError(f"{self.name} has no {level.label}")

    @property
    def mem_levels(self) -> tuple[MemLevel, ...]:
        """All levels, nearest first, ending with RAM."""
        return tuple(c.level for c in self.caches) + (MemLevel.RAM,)

    def residence_for(self, footprint_bytes: int) -> MemLevel:
        """Smallest level whose capacity holds ``footprint_bytes``.

        The paper's figures name their series by this rule: an array
        "twice the size of the hardware's first cache level" is the L2
        series, and so on (section 5.1).
        """
        for c in self.caches:
            if footprint_bytes <= c.size_bytes:
                return c.level
        return MemLevel.RAM

    def footprint_for(self, level: MemLevel) -> int:
        """A footprint guaranteed resident at exactly ``level``.

        Half the level's capacity, or twice the last cache for RAM —
        the construction section 5.1 describes.
        """
        if level == MemLevel.RAM:
            return 2 * self.caches[-1].size_bytes
        return self.cache(level).size_bytes // 2

    def with_frequency(self, freq_ghz: float) -> "MachineConfig":
        """Copy at a different core frequency (uncore unchanged) — the
        DVFS control of Fig. 13."""
        return replace(self, freq_ghz=freq_ghz)

    def scaled(self, **changes: object) -> "MachineConfig":
        """Copy with arbitrary field overrides (for ablations)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def nehalem_2s_x5650() -> MachineConfig:
    """Dual-socket Intel Xeon X5650 (Westmere-EP), 2 x 6 cores, 2.67 GHz.

    The machine behind Figs. 2-5 and 11-14 (Table 1).
    """
    return MachineConfig(
        name="dual-socket-nehalem-x5650",
        freq_ghz=2.67,
        uncore_freq_ghz=2.0,
        n_sockets=2,
        cores_per_socket=6,
        caches=(
            CacheLevelConfig(MemLevel.L1, 32 * 1024, 8, latency=4, bandwidth=16.0),
            CacheLevelConfig(MemLevel.L2, 256 * 1024, 8, latency=10, bandwidth=10.0),
            CacheLevelConfig(
                MemLevel.L3, 12 * 1024 * 1024, 16, latency=17.0, bandwidth=18.0,
                core_domain=False, shared=True,
            ),
        ),
        dram=DramConfig(latency_ns=65.0, core_bandwidth=10.0, socket_bandwidth=30.0, channels=3),
        freq_steps=(1.60, 1.86, 2.13, 2.40, 2.67),
    )


def nehalem_4s_x7550() -> MachineConfig:
    """Quad-socket Intel Xeon X7550 (Nehalem-EX), 4 x 8 cores, 2.0 GHz.

    The 32-core machine of Figs. 15 and 16 (Table 1).
    """
    return MachineConfig(
        name="quad-socket-nehalem-x7550",
        freq_ghz=2.0,
        uncore_freq_ghz=1.87,
        n_sockets=4,
        cores_per_socket=8,
        caches=(
            CacheLevelConfig(MemLevel.L1, 32 * 1024, 8, latency=4, bandwidth=16.0),
            CacheLevelConfig(MemLevel.L2, 256 * 1024, 8, latency=10, bandwidth=10.0),
            CacheLevelConfig(
                MemLevel.L3, 18 * 1024 * 1024, 16, latency=21.0, bandwidth=15.0,
                core_domain=False, shared=True,
            ),
        ),
        dram=DramConfig(latency_ns=95.0, core_bandwidth=8.0, socket_bandwidth=25.0, channels=4),
        freq_steps=(1.20, 1.47, 1.73, 2.00),
    )


def sandy_bridge_e31240() -> MachineConfig:
    """Intel Xeon E3-1240 (Sandy Bridge), 1 x 4 cores, 3.30 GHz.

    The OpenMP machine of Figs. 17/18 and Table 2 (Table 1); two load
    ports and wider L1 bandwidth, per the microarchitecture.
    """
    return MachineConfig(
        name="sandy-bridge-e31240",
        freq_ghz=3.30,
        uncore_freq_ghz=3.30,
        n_sockets=1,
        cores_per_socket=4,
        caches=(
            CacheLevelConfig(MemLevel.L1, 32 * 1024, 8, latency=4, bandwidth=32.0),
            CacheLevelConfig(MemLevel.L2, 256 * 1024, 8, latency=12, bandwidth=16.0),
            CacheLevelConfig(
                MemLevel.L3, 8 * 1024 * 1024, 16, latency=8.0, bandwidth=22.0,
                core_domain=False, shared=True,
            ),
        ),
        dram=DramConfig(latency_ns=60.0, core_bandwidth=12.0, socket_bandwidth=21.0, channels=2),
        ports={
            "load": 2.0,
            "store": 1.0,
            "alu": 3.0,
            "fp_add": 1.0,
            "fp_mul": 1.0,
            "branch": 1.0,
        },
        freq_steps=(1.60, 2.20, 2.80, 3.30),
    )


#: Preset registry, keyed the way Table 1 names the machines.
PRESETS = {
    "nehalem-2s": nehalem_2s_x5650,
    "nehalem-4s": nehalem_4s_x7550,
    "sandy-bridge": sandy_bridge_e31240,
}


def preset(name: str) -> MachineConfig:
    """Look up a machine preset by registry name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise KeyError(f"unknown machine preset {name!r}; have {sorted(PRESETS)}") from None
