"""MicroTools reproduction: automated program generation and performance
measurement on a simulated x86 machine model.

Reproduces *MicroTools: Automating Program Generation and Performance
Measurement* (Beyler et al., ICPP 2012):

- :mod:`repro.creator` -- **MicroCreator**, the pass-based microbenchmark
  generator driven by XML kernel descriptions (:mod:`repro.spec`),
- :mod:`repro.launcher` -- **MicroLauncher**, the stable measurement
  harness (alignment control, pinning, warm-up, inner/outer repetition
  loops, CSV output, fork and OpenMP parallel modes),
- :mod:`repro.machine` -- the simulated hardware substrate standing in
  for the paper's Nehalem / Sandy Bridge testbeds (see DESIGN.md for the
  substitution argument),
- :mod:`repro.isa` -- the shared x86-64 instruction model,
- :mod:`repro.compiler` -- a mini C loop-nest front-end (the Fig. 1 ->
  Fig. 2 path),
- :mod:`repro.kernels` -- the paper's workloads,
- :mod:`repro.analysis` -- series/statistics plus one experiment per
  paper exhibit.

Quickstart::

    from repro.creator import MicroCreator
    from repro.launcher import MicroLauncher, LauncherOptions
    from repro.spec import load_kernel
    from repro.machine import nehalem_2s_x5650

    kernels = MicroCreator().generate(load_kernel("movaps"))
    launcher = MicroLauncher(nehalem_2s_x5650())
    for kernel in kernels:
        m = launcher.run(kernel, LauncherOptions(array_bytes=64 * 1024))
        print(kernel.name, m.cycles_per_iteration)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
