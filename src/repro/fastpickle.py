"""Fast pickling for frozen ``slots=True`` dataclasses.

The state functions :mod:`dataclasses` installs on a frozen slots class
(``_dataclass_getstate`` / ``_dataclass_setstate``) call ``fields(self)``
on *every* pickle and unpickle, re-walking the class's field descriptors
each time.  For the dispatch path — which pickles a :class:`~repro.engine.campaign.Job`
plus its :class:`~repro.launcher.launcher.LauncherOptions` for every job
in every chunk, then unpickles them worker-side — that introspection
dominates the serialization cost of a campaign.

:func:`fast_slots_pickling` replaces both hooks with closures over a
field-name tuple computed once at class-creation time.  The state format
(a list of field values in field order) is identical to the stdlib's, so
frames pickled before and after this change interoperate freely.
"""

from __future__ import annotations

import dataclasses

__all__ = ["fast_slots_pickling"]


def fast_slots_pickling(cls):
    """Install precomputed-field state hooks on a frozen slots dataclass.

    Use *above* the ``@dataclass`` decorator (so it sees the rebuilt
    class that ``slots=True`` produces)::

        @fast_slots_pickling
        @dataclass(frozen=True, slots=True)
        class Job: ...
    """
    names = tuple(f.name for f in dataclasses.fields(cls))

    def __getstate__(self):
        return [getattr(self, name) for name in names]

    def __setstate__(self, state):
        setter = object.__setattr__
        for name, value in zip(names, state):
            setter(self, name, value)

    cls.__getstate__ = __getstate__
    cls.__setstate__ = __setstate__
    return cls
