"""The MicroCreator kernel-description language.

A kernel description is the XML input of section 3.1 of the paper: a list
of instruction templates (with logical registers, register ranges, memory
operands, operand-swap directives and move semantics), an unrolling range,
induction variables, and branch information.  This subpackage provides the
in-memory schema (:mod:`repro.spec.schema`), the XML reader/writer
(:mod:`repro.spec.xmlio`), and a fluent builder API
(:mod:`repro.spec.builders`).
"""

from repro.spec.schema import (
    BranchInfoSpec,
    ImmediateSpec,
    InductionSpec,
    InstructionSpec,
    KernelSpec,
    MemoryRef,
    MoveSemanticsSpec,
    RegisterRange,
    RegisterRef,
    SpecValidationError,
    StrideSpec,
    UnrollSpec,
)
from repro.spec.xmlio import SpecParseError, parse_kernel_spec, parse_spec_file, write_kernel_spec
from repro.spec.builders import KernelBuilder, load_kernel, store_kernel

__all__ = [
    "BranchInfoSpec",
    "ImmediateSpec",
    "InductionSpec",
    "InstructionSpec",
    "KernelSpec",
    "MemoryRef",
    "MoveSemanticsSpec",
    "RegisterRange",
    "RegisterRef",
    "SpecValidationError",
    "StrideSpec",
    "UnrollSpec",
    "SpecParseError",
    "parse_kernel_spec",
    "parse_spec_file",
    "write_kernel_spec",
    "KernelBuilder",
    "load_kernel",
    "store_kernel",
]
