"""XML reader/writer for kernel descriptions (the paper's input format).

The accepted grammar follows Fig. 6 / Fig. 9 of the paper::

    <kernel name="loadstore">
      <instruction>
        <operation>movaps</operation>
        <memory>
          <register><name>r1</name></register>
          <offset>0</offset>
        </memory>
        <register><phyName>%xmm</phyName><min>0</min><max>8</max></register>
        <swap_after_unroll/>
      </instruction>
      <unrolling><min>1</min><max>8</max></unrolling>
      <induction>
        <register><name>r1</name></register>
        <increment>16</increment>
        <offset>16</offset>
      </induction>
      <induction>
        <register><name>r0</name></register>
        <increment>-1</increment>
        <linked><register><name>r1</name></register></linked>
        <last_induction/>
      </induction>
      <branch_information><label>L6</label><test>jge</test></branch_information>
    </kernel>

Extensions beyond the figure, all described in the paper's prose: multiple
``<operation>`` children (instruction selection), ``<move_semantics>``
(section 3.1 "move semantics, such as the number of bytes to be moved"),
``<immediate>`` with several ``<value>`` children (immediate selection),
``<stride>`` (stride selection), ``<repeat>``, ``<max_benchmarks>``, and
``<not_affected_unroll/>`` (Fig. 9).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.spec.schema import (
    BranchInfoSpec,
    ImmediateSpec,
    InductionSpec,
    InstructionSpec,
    KernelSpec,
    MemoryRef,
    MoveSemanticsSpec,
    OperandSpec,
    RegisterRange,
    RegisterRef,
    SpecValidationError,
    StrideSpec,
    UnrollSpec,
)


class SpecParseError(ValueError):
    """Raised on malformed kernel-description XML."""


def _text(elem: ET.Element, child: str, *, required: bool = True, default: str = "") -> str:
    node = elem.find(child)
    if node is None or node.text is None:
        if required:
            raise SpecParseError(f"<{elem.tag}> is missing <{child}>")
        return default
    return node.text.strip()


def _int(elem: ET.Element, child: str, *, required: bool = True, default: int = 0) -> int:
    text = _text(elem, child, required=required, default=str(default))
    try:
        return int(text)
    except ValueError:
        raise SpecParseError(f"<{child}> in <{elem.tag}> is not an integer: {text!r}") from None


def _parse_register_node(elem: ET.Element) -> RegisterRef | RegisterRange:
    name = elem.find("name")
    phy = elem.find("phyName")
    if name is not None and name.text:
        return RegisterRef(name.text.strip())
    if phy is not None and phy.text:
        phy_name = phy.text.strip()
        if elem.find("min") is not None or elem.find("max") is not None:
            return RegisterRange(
                prefix=phy_name,
                min=_int(elem, "min", required=False, default=0),
                max=_int(elem, "max", required=False, default=8),
            )
        return RegisterRef(phy_name)
    raise SpecParseError("<register> needs <name> or <phyName>")


def _parse_memory_node(elem: ET.Element) -> MemoryRef:
    reg_node = elem.find("register")
    if reg_node is None:
        raise SpecParseError("<memory> needs a <register> base")
    base = _parse_register_node(reg_node)
    if isinstance(base, RegisterRange):
        raise SpecParseError("memory base cannot be a register range")
    index: RegisterRef | None = None
    index_node = elem.find("index")
    if index_node is not None:
        idx_reg = index_node.find("register")
        parsed = _parse_register_node(idx_reg if idx_reg is not None else index_node)
        if isinstance(parsed, RegisterRange):
            raise SpecParseError("memory index cannot be a register range")
        index = parsed
    return MemoryRef(
        base=base,
        offset=_int(elem, "offset", required=False, default=0),
        index=index,
        scale=_int(elem, "scale", required=False, default=1),
    )


def _parse_instruction_node(elem: ET.Element) -> InstructionSpec:
    operations = tuple(
        op.text.strip() for op in elem.findall("operation") if op.text and op.text.strip()
    )
    move_semantics = None
    ms_node = elem.find("move_semantics")
    if ms_node is not None:
        move_semantics = MoveSemanticsSpec(
            bytes_per_element=_int(ms_node, "bytes"),
            allow_unaligned=ms_node.find("allow_unaligned") is not None,
            allow_scalar=ms_node.find("allow_scalar") is not None,
        )
    operands: list[OperandSpec] = []
    for child in elem:
        if child.tag == "register":
            operands.append(_parse_register_node(child))
        elif child.tag == "memory":
            operands.append(_parse_memory_node(child))
        elif child.tag == "immediate":
            values = tuple(int(v.text.strip()) for v in child.findall("value") if v.text)
            if not values and child.text and child.text.strip():
                values = (int(child.text.strip()),)
            operands.append(ImmediateSpec(values))
    try:
        return InstructionSpec(
            operations=operations,
            operands=tuple(operands),
            move_semantics=move_semantics,
            swap_before_unroll=elem.find("swap_before_unroll") is not None,
            swap_after_unroll=elem.find("swap_after_unroll") is not None,
            repeat=_int(elem, "repeat", required=False, default=1),
        )
    except SpecValidationError as exc:
        raise SpecParseError(f"invalid <instruction>: {exc}") from exc


def _parse_induction_node(elem: ET.Element) -> InductionSpec:
    reg_node = elem.find("register")
    if reg_node is None:
        raise SpecParseError("<induction> needs a <register>")
    register = _parse_register_node(reg_node)
    if isinstance(register, RegisterRange):
        raise SpecParseError("induction register cannot be a range")
    linked: RegisterRef | None = None
    linked_node = elem.find("linked")
    if linked_node is not None:
        linked_reg = linked_node.find("register")
        if linked_reg is None:
            raise SpecParseError("<linked> needs a <register>")
        parsed = _parse_register_node(linked_reg)
        if isinstance(parsed, RegisterRange):
            raise SpecParseError("linked register cannot be a range")
        linked = parsed
    offset_node = elem.find("offset")
    try:
        return InductionSpec(
            register=register,
            increment=_int(elem, "increment"),
            offset=_int(elem, "offset") if offset_node is not None else None,
            linked=linked,
            last_induction=elem.find("last_induction") is not None,
            not_affected_unroll=elem.find("not_affected_unroll") is not None,
            element_size=_int(elem, "element_size", required=False, default=4),
        )
    except SpecValidationError as exc:
        raise SpecParseError(f"invalid <induction>: {exc}") from exc


def parse_kernel_spec(text: str) -> KernelSpec:
    """Parse kernel-description XML text into a :class:`KernelSpec`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SpecParseError(f"malformed XML: {exc}") from exc
    if root.tag != "kernel":
        raise SpecParseError(f"root element must be <kernel>, got <{root.tag}>")

    instructions = tuple(_parse_instruction_node(e) for e in root.findall("instruction"))
    inductions = tuple(_parse_induction_node(e) for e in root.findall("induction"))

    unrolling = UnrollSpec()
    unroll_node = root.find("unrolling")
    if unroll_node is not None:
        unrolling = UnrollSpec(
            min=_int(unroll_node, "min", required=False, default=1),
            max=_int(unroll_node, "max", required=False, default=1),
        )

    branch = None
    branch_node = root.find("branch_information")
    if branch_node is not None:
        branch = BranchInfoSpec(
            label=_text(branch_node, "label"),
            test=_text(branch_node, "test", required=False, default="jge"),
        )

    strides = []
    for s_node in root.findall("stride"):
        reg_node = s_node.find("register")
        if reg_node is None:
            raise SpecParseError("<stride> needs a <register>")
        register = _parse_register_node(reg_node)
        if isinstance(register, RegisterRange):
            raise SpecParseError("stride register cannot be a range")
        values = tuple(int(v.text.strip()) for v in s_node.findall("value") if v.text)
        strides.append(StrideSpec(register=register, values=values))

    max_benchmarks = None
    if root.find("max_benchmarks") is not None:
        max_benchmarks = _int(root, "max_benchmarks")

    try:
        return KernelSpec(
            name=root.get("name", "kernel"),
            instructions=instructions,
            unrolling=unrolling,
            inductions=inductions,
            branch=branch,
            strides=tuple(strides),
            max_benchmarks=max_benchmarks,
        )
    except SpecValidationError as exc:
        raise SpecParseError(f"invalid <kernel>: {exc}") from exc


def parse_spec_file(path: str | Path) -> KernelSpec:
    """Parse a kernel description from a file."""
    return parse_kernel_spec(Path(path).read_text())


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _register_xml(parent: ET.Element, reg: RegisterRef | RegisterRange, tag: str = "register") -> None:
    node = ET.SubElement(parent, tag)
    if isinstance(reg, RegisterRange):
        ET.SubElement(node, "phyName").text = reg.prefix
        ET.SubElement(node, "min").text = str(reg.min)
        ET.SubElement(node, "max").text = str(reg.max)
    elif reg.is_physical:
        ET.SubElement(node, "phyName").text = reg.name
    else:
        ET.SubElement(node, "name").text = reg.name


def write_kernel_spec(spec: KernelSpec) -> str:
    """Serialize a :class:`KernelSpec` back to XML (round-trips the parser)."""
    root = ET.Element("kernel", name=spec.name)
    if spec.max_benchmarks is not None:
        ET.SubElement(root, "max_benchmarks").text = str(spec.max_benchmarks)
    for instr in spec.instructions:
        node = ET.SubElement(root, "instruction")
        for op in instr.operations:
            ET.SubElement(node, "operation").text = op
        if instr.move_semantics is not None:
            ms = ET.SubElement(node, "move_semantics")
            ET.SubElement(ms, "bytes").text = str(instr.move_semantics.bytes_per_element)
            if instr.move_semantics.allow_unaligned:
                ET.SubElement(ms, "allow_unaligned")
            if instr.move_semantics.allow_scalar:
                ET.SubElement(ms, "allow_scalar")
        for operand in instr.operands:
            if isinstance(operand, (RegisterRef, RegisterRange)):
                _register_xml(node, operand)
            elif isinstance(operand, MemoryRef):
                mem = ET.SubElement(node, "memory")
                _register_xml(mem, operand.base)
                ET.SubElement(mem, "offset").text = str(operand.offset)
                if operand.index is not None:
                    idx = ET.SubElement(mem, "index")
                    _register_xml(idx, operand.index)
                    ET.SubElement(mem, "scale").text = str(operand.scale)
            elif isinstance(operand, ImmediateSpec):
                imm = ET.SubElement(node, "immediate")
                for v in operand.values:
                    ET.SubElement(imm, "value").text = str(v)
        if instr.swap_before_unroll:
            ET.SubElement(node, "swap_before_unroll")
        if instr.swap_after_unroll:
            ET.SubElement(node, "swap_after_unroll")
        if instr.repeat != 1:
            ET.SubElement(node, "repeat").text = str(instr.repeat)
    if spec.unrolling != UnrollSpec():
        un = ET.SubElement(root, "unrolling")
        ET.SubElement(un, "min").text = str(spec.unrolling.min)
        ET.SubElement(un, "max").text = str(spec.unrolling.max)
    for ind in spec.inductions:
        node = ET.SubElement(root, "induction")
        _register_xml(node, ind.register)
        ET.SubElement(node, "increment").text = str(ind.increment)
        if ind.offset is not None:
            ET.SubElement(node, "offset").text = str(ind.offset)
        if ind.linked is not None:
            linked = ET.SubElement(node, "linked")
            _register_xml(linked, ind.linked)
        if ind.last_induction:
            ET.SubElement(node, "last_induction")
        if ind.not_affected_unroll:
            ET.SubElement(node, "not_affected_unroll")
        if ind.element_size != 4:
            ET.SubElement(node, "element_size").text = str(ind.element_size)
    for stride in spec.strides:
        node = ET.SubElement(root, "stride")
        _register_xml(node, stride.register)
        for v in stride.values:
            ET.SubElement(node, "value").text = str(v)
    if spec.branch is not None:
        node = ET.SubElement(root, "branch_information")
        ET.SubElement(node, "label").text = spec.branch.label
        ET.SubElement(node, "test").text = spec.branch.test
    ET.indent(root)
    return ET.tostring(root, encoding="unicode") + "\n"
