"""In-memory schema for kernel descriptions.

Every class mirrors one XML node family from the paper's Fig. 6 / Fig. 9.
Instances are immutable; MicroCreator passes never mutate a spec — they
produce concrete kernel IR from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.isa.semantics import known_opcodes


class SpecValidationError(ValueError):
    """Raised when a kernel description is structurally invalid."""


@dataclass(frozen=True, slots=True)
class RegisterRef:
    """``<register><name>r1</name></register>`` — a logical register, or
    ``<register><phyName>%eax</phyName></register>`` — a fixed physical one."""

    name: str

    @property
    def is_physical(self) -> bool:
        return self.name.startswith("%")


@dataclass(frozen=True, slots=True)
class RegisterRange:
    """``<register><phyName>%xmm</phyName><min>0</min><max>8</max></register>``.

    After unrolling, iteration *k* uses ``{prefix}{min + k mod (max - min)}``
    so consecutive unrolled copies touch distinct registers, breaking the
    output dependence between them (section 3.1: "generate a different XMM
    register per unrolling iteration. Doing so reduces register
    dependency").  ``max`` is exclusive, matching the paper's 0..8 for the
    eight registers ``%xmm0``-``%xmm7``.
    """

    prefix: str
    min: int = 0
    max: int = 8

    def __post_init__(self) -> None:
        if not self.prefix.startswith("%"):
            raise SpecValidationError(f"register range prefix must be physical: {self.prefix!r}")
        if self.max <= self.min:
            raise SpecValidationError(f"register range requires max > min, got [{self.min},{self.max})")

    def name_for(self, k: int) -> str:
        """Physical register name used by unroll iteration ``k``."""
        span = self.max - self.min
        return f"{self.prefix}{self.min + (k % span)}"


@dataclass(frozen=True, slots=True)
class MemoryRef:
    """``<memory><register>...</register><offset>0</offset></memory>``."""

    base: RegisterRef
    offset: int = 0
    index: RegisterRef | None = None
    scale: int = 1


@dataclass(frozen=True, slots=True)
class ImmediateSpec:
    """An immediate operand with one or several candidate values.

    Multiple values make the immediate-selection pass emit one variant per
    value.
    """

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SpecValidationError("immediate spec needs at least one value")


@dataclass(frozen=True, slots=True)
class MoveSemanticsSpec:
    """Move *semantics* instead of a concrete opcode (section 3.1).

    The user states how many bytes to move and which encodings are fair
    game; the move-semantics pass expands to every admissible concrete
    opcode (aligned vs. unaligned, vector vs. an equivalent-payload group
    of scalar moves).
    """

    bytes_per_element: int
    allow_unaligned: bool = True
    allow_scalar: bool = True

    def __post_init__(self) -> None:
        if self.bytes_per_element not in (4, 8, 16):
            raise SpecValidationError(
                f"move semantics supports 4/8/16-byte payloads, got {self.bytes_per_element}"
            )


OperandSpec = Union[RegisterRef, RegisterRange, MemoryRef, ImmediateSpec]


@dataclass(frozen=True, slots=True)
class InstructionSpec:
    """One ``<instruction>`` node.

    ``operations`` holds one mnemonic, or several to make the
    instruction-selection pass emit one variant per choice.  Exactly one of
    ``operations`` / ``move_semantics`` must be provided.  Operands are in
    AT&T order.  ``swap_before_unroll`` / ``swap_after_unroll`` request the
    two operand-swap passes of section 3.2.  ``repeat`` duplicates the
    instruction before any other processing.
    """

    operations: tuple[str, ...] = ()
    operands: tuple[OperandSpec, ...] = ()
    move_semantics: MoveSemanticsSpec | None = None
    swap_before_unroll: bool = False
    swap_after_unroll: bool = False
    repeat: int = 1

    def __post_init__(self) -> None:
        if bool(self.operations) == (self.move_semantics is not None):
            raise SpecValidationError(
                "instruction needs exactly one of <operation> or <move_semantics>"
            )
        unknown = [op for op in self.operations if op not in known_opcodes()]
        if unknown:
            raise SpecValidationError(f"unmodelled operations in spec: {unknown}")
        if self.repeat < 1:
            raise SpecValidationError(f"repeat must be >= 1, got {self.repeat}")
        if self.swap_before_unroll and self.swap_after_unroll:
            raise SpecValidationError("choose one operand-swap phase, not both")


@dataclass(frozen=True, slots=True)
class UnrollSpec:
    """``<unrolling><min>1</min><max>8</max></unrolling>`` (inclusive)."""

    min: int = 1
    max: int = 1

    def __post_init__(self) -> None:
        if self.min < 1 or self.max < self.min:
            raise SpecValidationError(f"bad unroll range [{self.min},{self.max}]")

    def factors(self) -> range:
        return range(self.min, self.max + 1)


@dataclass(frozen=True, slots=True)
class InductionSpec:
    """One ``<induction>`` node.

    Semantics (matching Fig. 6 -> Fig. 8):

    - ``increment`` is the per-kernel-iteration step.  The induction
      insertion pass scales it by the unroll factor, so ``increment=16``
      with unroll 3 emits ``add $48, %rsi``.
    - ``offset`` is the byte step applied to this register's memory
      operands between unrolled copies (16 in Fig. 6, giving the
      ``0(%rsi)/16(%rsi)/32(%rsi)`` sequence of Fig. 8).
    - ``linked`` ties a loop counter to a pointer induction: the counter
      counts *elements*, so its per-loop step is
      ``increment * unroll * (linked.increment / element_size)``.
      Fig. 8's ``sub $12, %rdi`` = -1 * 3 * (16/4) with 4-byte elements.
    - ``last_induction`` marks the counter tested by the loop branch.
    - ``not_affected_unroll`` (Fig. 9) keeps the step at ``increment``
      regardless of unrolling — the iteration-count protocol that lets
      MicroLauncher compute cycles per iteration (section 4.4).
    """

    register: RegisterRef
    increment: int
    offset: int | None = None
    linked: RegisterRef | None = None
    last_induction: bool = False
    not_affected_unroll: bool = False
    element_size: int = 4

    def __post_init__(self) -> None:
        if self.increment == 0:
            raise SpecValidationError(f"induction {self.register.name} has zero increment")
        if self.element_size <= 0:
            raise SpecValidationError("element_size must be positive")
        if self.not_affected_unroll and self.linked is not None:
            raise SpecValidationError("not_affected_unroll inductions cannot be linked")


@dataclass(frozen=True, slots=True)
class BranchInfoSpec:
    """``<branch_information><label>L6</label><test>jge</test></branch_information>``."""

    label: str
    test: str = "jge"

    def __post_init__(self) -> None:
        if self.test not in known_opcodes():
            raise SpecValidationError(f"unknown branch test {self.test!r}")
        from repro.isa.semantics import opcode_info

        if not opcode_info(self.test).is_branch:
            raise SpecValidationError(f"{self.test!r} is not a branch")

    @property
    def asm_label(self) -> str:
        """Label as emitted in assembly (local labels get the ``.`` prefix)."""
        return self.label if self.label.startswith(".") else f".{self.label}"


@dataclass(frozen=True, slots=True)
class StrideSpec:
    """Candidate stride multipliers for one induction register.

    The stride-selection pass multiplies the induction's ``increment`` and
    ``offset`` by each chosen value, producing one variant per candidate —
    the "selects the strides for each induction variable" step of
    section 3.2.
    """

    register: RegisterRef
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise SpecValidationError("stride spec needs at least one value")
        if any(v == 0 for v in self.values):
            raise SpecValidationError("stride 0 is not meaningful")


@dataclass(frozen=True, slots=True)
class KernelSpec:
    """A complete kernel description (one XML file)."""

    name: str
    instructions: tuple[InstructionSpec, ...]
    unrolling: UnrollSpec = UnrollSpec()
    inductions: tuple[InductionSpec, ...] = ()
    branch: BranchInfoSpec | None = None
    strides: tuple[StrideSpec, ...] = ()
    max_benchmarks: int | None = None

    def __post_init__(self) -> None:
        if not self.instructions:
            raise SpecValidationError("kernel has no instructions")
        if self.max_benchmarks is not None and self.max_benchmarks < 1:
            raise SpecValidationError("max_benchmarks must be >= 1")
        last = [i for i in self.inductions if i.last_induction]
        if len(last) > 1:
            raise SpecValidationError("multiple <last_induction/> markers")
        if self.branch is not None and self.inductions and not last and not any(
            i.not_affected_unroll for i in self.inductions
        ):
            raise SpecValidationError(
                "a branch needs an induction marked <last_induction/> to test"
            )
        induction_regs = {i.register.name for i in self.inductions}
        for s in self.strides:
            if s.register.name not in induction_regs:
                raise SpecValidationError(
                    f"stride targets unknown induction register {s.register.name!r}"
                )
        for ind in self.inductions:
            if ind.linked is not None and ind.linked.name not in induction_regs:
                raise SpecValidationError(
                    f"induction {ind.register.name!r} linked to unknown register "
                    f"{ind.linked.name!r}"
                )

    def last_induction(self) -> InductionSpec | None:
        for i in self.inductions:
            if i.last_induction:
                return i
        return None
