"""Fluent builder API for kernel descriptions.

Writing XML by hand is faithful to the paper, but library users (and our
own kernel library) want a programmatic path::

    spec = (
        KernelBuilder("loadstore")
        .load("movaps", base="r1", xmm_range=(0, 8), swap_after_unroll=True)
        .unroll(1, 8)
        .pointer_induction("r1", step=16)
        .counter_induction("r0", linked_to="r1")
        .branch("L6", "jge")
        .build()
    )
"""

from __future__ import annotations

from repro.isa.semantics import opcode_info
from repro.spec.schema import (
    BranchInfoSpec,
    InductionSpec,
    InstructionSpec,
    KernelSpec,
    MemoryRef,
    MoveSemanticsSpec,
    OperandSpec,
    RegisterRange,
    RegisterRef,
    SpecValidationError,
    StrideSpec,
    UnrollSpec,
)


class KernelBuilder:
    """Accumulates kernel-description nodes and validates on :meth:`build`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._instructions: list[InstructionSpec] = []
        self._inductions: list[InductionSpec] = []
        self._strides: list[StrideSpec] = []
        self._unrolling = UnrollSpec()
        self._branch: BranchInfoSpec | None = None
        self._max_benchmarks: int | None = None

    # -- instructions -------------------------------------------------------

    def instruction(self, spec: InstructionSpec) -> "KernelBuilder":
        """Append a fully-formed instruction spec."""
        self._instructions.append(spec)
        return self

    def load(
        self,
        *operations: str,
        base: str,
        offset: int = 0,
        xmm_range: tuple[int, int] | None = (0, 8),
        dest: str | None = None,
        swap_before_unroll: bool = False,
        swap_after_unroll: bool = False,
        repeat: int = 1,
    ) -> "KernelBuilder":
        """A memory->register move: ``op offset(base), %xmmN``.

        ``xmm_range`` rotates destination registers across unroll copies;
        pass ``dest`` for a fixed register instead.
        """
        target: OperandSpec
        if dest is not None:
            target = RegisterRef(dest)
        elif xmm_range is not None:
            target = RegisterRange("%xmm", *xmm_range)
        else:
            raise SpecValidationError("load needs dest or xmm_range")
        self._instructions.append(
            InstructionSpec(
                operations=tuple(operations),
                operands=(MemoryRef(RegisterRef(base), offset=offset), target),
                swap_before_unroll=swap_before_unroll,
                swap_after_unroll=swap_after_unroll,
                repeat=repeat,
            )
        )
        return self

    def store(
        self,
        *operations: str,
        base: str,
        offset: int = 0,
        xmm_range: tuple[int, int] | None = (0, 8),
        src: str | None = None,
        swap_before_unroll: bool = False,
        swap_after_unroll: bool = False,
        repeat: int = 1,
    ) -> "KernelBuilder":
        """A register->memory move: ``op %xmmN, offset(base)``."""
        source: OperandSpec
        if src is not None:
            source = RegisterRef(src)
        elif xmm_range is not None:
            source = RegisterRange("%xmm", *xmm_range)
        else:
            raise SpecValidationError("store needs src or xmm_range")
        self._instructions.append(
            InstructionSpec(
                operations=tuple(operations),
                operands=(source, MemoryRef(RegisterRef(base), offset=offset)),
                swap_before_unroll=swap_before_unroll,
                swap_after_unroll=swap_after_unroll,
                repeat=repeat,
            )
        )
        return self

    def move_bytes(
        self,
        nbytes: int,
        *,
        base: str,
        offset: int = 0,
        xmm_range: tuple[int, int] = (0, 8),
        allow_unaligned: bool = True,
        allow_scalar: bool = True,
        swap_after_unroll: bool = False,
    ) -> "KernelBuilder":
        """A load described by move *semantics* (payload size, not opcode)."""
        self._instructions.append(
            InstructionSpec(
                operands=(MemoryRef(RegisterRef(base), offset=offset), RegisterRange("%xmm", *xmm_range)),
                move_semantics=MoveSemanticsSpec(
                    bytes_per_element=nbytes,
                    allow_unaligned=allow_unaligned,
                    allow_scalar=allow_scalar,
                ),
                swap_after_unroll=swap_after_unroll,
            )
        )
        return self

    def arithmetic(
        self, *operations: str, src: str, dest: str, repeat: int = 1
    ) -> "KernelBuilder":
        """A register-register arithmetic instruction, e.g. ``addsd``."""
        self._instructions.append(
            InstructionSpec(
                operations=tuple(operations),
                operands=(RegisterRef(src), RegisterRef(dest)),
                repeat=repeat,
            )
        )
        return self

    # -- loop structure ------------------------------------------------------

    def unroll(self, lo: int, hi: int | None = None) -> "KernelBuilder":
        self._unrolling = UnrollSpec(min=lo, max=hi if hi is not None else lo)
        return self

    def pointer_induction(
        self, register: str, *, step: int, offset: int | None = None,
        stride_choices: tuple[int, ...] = (),
    ) -> "KernelBuilder":
        """A pointer walked by ``step`` bytes per kernel iteration.

        ``offset`` defaults to ``step``: each unrolled copy advances its
        memory operand by one step, matching Fig. 6's increment=offset=16.
        """
        self._inductions.append(
            InductionSpec(
                register=RegisterRef(register),
                increment=step,
                offset=offset if offset is not None else step,
            )
        )
        if stride_choices:
            self._strides.append(StrideSpec(RegisterRef(register), tuple(stride_choices)))
        return self

    def counter_induction(
        self, register: str, *, linked_to: str | None = None, step: int = -1,
        element_size: int = 4,
    ) -> "KernelBuilder":
        """The loop trip counter, decremented and tested by the branch."""
        self._inductions.append(
            InductionSpec(
                register=RegisterRef(register),
                increment=step,
                linked=RegisterRef(linked_to) if linked_to else None,
                last_induction=True,
                element_size=element_size,
            )
        )
        return self

    def iteration_counter(self, register: str = "%eax", *, step: int = 1) -> "KernelBuilder":
        """The Fig. 9 unroll-independent counter returned to MicroLauncher."""
        self._inductions.append(
            InductionSpec(
                register=RegisterRef(register),
                increment=step,
                not_affected_unroll=True,
            )
        )
        return self

    def branch(self, label: str = "L6", test: str = "jge") -> "KernelBuilder":
        self._branch = BranchInfoSpec(label=label, test=test)
        return self

    def limit(self, max_benchmarks: int) -> "KernelBuilder":
        self._max_benchmarks = max_benchmarks
        return self

    def build(self) -> KernelSpec:
        return KernelSpec(
            name=self._name,
            instructions=tuple(self._instructions),
            unrolling=self._unrolling,
            inductions=tuple(self._inductions),
            branch=self._branch,
            strides=tuple(self._strides),
            max_benchmarks=self._max_benchmarks,
        )


def _payload(operation: str) -> int:
    nbytes = opcode_info(operation).bytes_moved
    if nbytes == 0:
        raise SpecValidationError(f"{operation!r} is not a move")
    return nbytes


def load_kernel(
    operation: str = "movaps",
    *,
    unroll: tuple[int, int] = (1, 8),
    swap_after_unroll: bool = False,
    name: str | None = None,
) -> KernelSpec:
    """The canonical single-array load kernel of sections 3.1/5.1.

    One ``operation`` load per kernel iteration, pointer stepping by the
    payload size, a linked element counter, unrolled over ``unroll``.  With
    ``swap_after_unroll=True`` this is exactly the (Load|Store)+ family:
    unroll 1..8 with every load/store combination = 510 variants.
    """
    nbytes = _payload(operation)
    return (
        KernelBuilder(name or f"{operation}_load")
        .load(operation, base="r1", swap_after_unroll=swap_after_unroll)
        .unroll(*unroll)
        .pointer_induction("r1", step=nbytes)
        .counter_induction("r0", linked_to="r1")
        .iteration_counter("%eax")
        .branch("L6", "jge")
        .build()
    )


def store_kernel(
    operation: str = "movaps",
    *,
    unroll: tuple[int, int] = (1, 8),
    name: str | None = None,
) -> KernelSpec:
    """Single-array store kernel (the mirror of :func:`load_kernel`)."""
    nbytes = _payload(operation)
    return (
        KernelBuilder(name or f"{operation}_store")
        .store(operation, base="r1")
        .unroll(*unroll)
        .pointer_induction("r1", step=nbytes)
        .counter_induction("r0", linked_to="r1")
        .iteration_counter("%eax")
        .branch("L6", "jge")
        .build()
    )
