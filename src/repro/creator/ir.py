"""MicroCreator's kernel intermediate representation.

A :class:`KernelIR` starts as a near-verbatim copy of the kernel spec and
is progressively *concretized* by the passes: operation choices collapse
to one opcode, register ranges rotate into physical registers, logical
registers get allocated, inductions and the branch are materialized as
instructions.  Passes never mutate an IR in place — they return new
instances — so the cartesian expansion (one input, many variants) is just
a list of IRs flowing through the pipeline.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field, replace
from typing import Union

from repro.isa.instructions import Instruction
from repro.spec.schema import (
    BranchInfoSpec,
    ImmediateSpec,
    InductionSpec,
    InstructionSpec,
    KernelSpec,
    MemoryRef,
    MoveSemanticsSpec,
    RegisterRange,
    RegisterRef,
    UnrollSpec,
)

#: Template operand: spec-level operand descriptions, plus ``int`` for an
#: immediate whose value has been selected.
TemplateOperand = Union[RegisterRef, RegisterRange, MemoryRef, ImmediateSpec, int]


@dataclass(frozen=True, slots=True)
class TemplateInstr:
    """One instruction while still in template form.

    ``choices`` holds candidate opcodes until instruction selection picks
    one and stores it in ``opcode``.  ``unroll_index`` is stamped by the
    unrolling pass so register-range rotation knows which copy this is;
    ``lane`` separates the scalar copies that move-semantics expansion
    creates within one unroll copy, so each lane rotates to a distinct
    register.
    """

    choices: tuple[str, ...] = ()
    move_semantics: MoveSemanticsSpec | None = None
    operands: tuple[TemplateOperand, ...] = ()
    swap_before_unroll: bool = False
    swap_after_unroll: bool = False
    opcode: str | None = None
    unroll_index: int = 0
    lane: int = 0
    repeat: int = 1

    @classmethod
    def from_spec(cls, spec: InstructionSpec) -> "TemplateInstr":
        return cls(
            choices=spec.operations,
            move_semantics=spec.move_semantics,
            operands=spec.operands,
            swap_before_unroll=spec.swap_before_unroll,
            swap_after_unroll=spec.swap_after_unroll,
            opcode=spec.operations[0] if len(spec.operations) == 1 else None,
            repeat=spec.repeat,
        )

    @property
    def is_concrete(self) -> bool:
        return self.opcode is not None

    def swapped(self) -> "TemplateInstr":
        """Operands reversed — turns a load template into a store and back."""
        if len(self.operands) != 2:
            raise ValueError("operand swap requires exactly two operands")
        return replace(self, operands=(self.operands[1], self.operands[0]))

    def with_opcode(self, opcode: str) -> "TemplateInstr":
        # Interned: the same few opcode strings recur across every
        # expanded copy of every variant in a sweep.
        opcode = sys.intern(opcode)
        return replace(self, opcode=opcode, choices=(opcode,), move_semantics=None)

    def with_operands(self, operands: tuple[TemplateOperand, ...]) -> "TemplateInstr":
        return replace(self, operands=operands)

    def with_unroll_index(self, k: int) -> "TemplateInstr":
        return replace(self, unroll_index=k)

    def describes_store(self) -> bool:
        """Template-level store classification: memory in destination slot."""
        return bool(self.operands) and isinstance(self.operands[-1], MemoryRef)

    def describes_load(self) -> bool:
        """Template-level load classification: memory in a source slot."""
        return any(isinstance(op, MemoryRef) for op in self.operands[:-1])


@dataclass(frozen=True, slots=True)
class KernelIR:
    """One kernel variant flowing through the pass pipeline.

    Attributes
    ----------
    instrs:
        Template instructions (the loop body) until lowering.
    body:
        Concrete :class:`~repro.isa.Instruction` loop body, populated by
        the register-allocation pass and extended by induction/branch
        insertion.
    inductions:
        Induction specs, with stride multipliers already folded in.
    unroll:
        The selected unroll factor (``None`` until selection).
    regmap:
        Logical-name -> physical-name assignment, for diagnostics and for
        passes that run after allocation.
    metadata:
        Choice record: every pass that narrows the variant space appends
        what it chose, so results can be grouped the way the paper's
        figures group them.
    """

    name: str
    instrs: tuple[TemplateInstr, ...]
    unroll_range: UnrollSpec
    inductions: tuple[InductionSpec, ...]
    branch: BranchInfoSpec | None
    unroll: int | None = None
    body: tuple[Instruction, ...] = ()
    regmap: dict[str, str] = field(default_factory=dict)
    metadata: dict[str, object] = field(default_factory=dict)
    program: "object | None" = None  # AsmProgram, set by code generation

    @classmethod
    def from_spec(cls, spec: KernelSpec) -> "KernelIR":
        return cls(
            name=spec.name,
            instrs=tuple(TemplateInstr.from_spec(i) for i in spec.instructions),
            unroll_range=spec.unrolling,
            inductions=spec.inductions,
            branch=spec.branch,
        )

    def evolve(self, **changes: object) -> "KernelIR":
        """Copy with ``changes`` applied; fresh dict copies keep variants
        independent."""
        if "metadata" not in changes:
            changes["metadata"] = dict(self.metadata)
        if "regmap" not in changes:
            changes["regmap"] = dict(self.regmap)
        return replace(self, **changes)  # type: ignore[arg-type]

    def noting(self, **notes: object) -> "KernelIR":
        """Copy with metadata entries added."""
        md = dict(self.metadata)
        md.update(notes)
        return self.evolve(metadata=md)

    def pointer_inductions(self) -> tuple[InductionSpec, ...]:
        """Inductions that walk memory (have a per-copy offset)."""
        return tuple(
            i for i in self.inductions if i.offset is not None and not i.not_affected_unroll
        )

    def counter_induction(self) -> InductionSpec | None:
        for i in self.inductions:
            if i.last_induction:
                return i
        return None
