"""MicroCreator's nineteen default passes, in the order of section 3.2.

The pipeline (paper order: instruction selection, strides, immediates,
operand swap, unrolling, operand swap after unrolling, register
allocation, induction insertion, code generation — plus the supporting
stages those imply):

 1.  ``instruction_repetition``   expand ``<repeat>``
 2.  ``move_semantics``           byte-count semantics -> opcode choices
 3.  ``instruction_selection``    cartesian over opcode choices
 4.  ``random_selection``         keep a random sample (gated off by default)
 5.  ``stride_selection``         cartesian over induction stride choices
 6.  ``immediate_selection``      cartesian over immediate value choices
 7.  ``unroll_factor_selection``  one variant per unroll factor
 8.  ``operand_swap_before``      load<->store swap before unrolling
 9.  ``unrolling``                replicate the body, bump memory offsets
 10. ``operand_swap_after``       per-copy load<->store swap (2^u variants)
 11. ``register_rotation``        register ranges -> concrete %xmmN
 12. ``register_allocation``      logical -> physical registers; lower body
 13. ``iteration_counter``        Fig. 9 unroll-independent counters
 14. ``induction_insertion``      scaled induction updates (Fig. 8 add/sub)
 15. ``branch_insertion``         the closing conditional jump
 16. ``scheduling``               interleave updates (gated off by default)
 17. ``peephole``                 drop no-op updates
 18. ``validation``               structural checks before emission
 19. ``code_generation``          assemble the AsmProgram, dedup variants
"""

from repro.creator.passes.selection import (
    ImmediateSelectionPass,
    InstructionRepetitionPass,
    InstructionSelectionPass,
    MoveSemanticsPass,
    RandomSelectionPass,
    StrideSelectionPass,
)
from repro.creator.passes.unrolling import (
    OperandSwapAfterUnrollPass,
    OperandSwapBeforeUnrollPass,
    RegisterRotationPass,
    UnrollFactorSelectionPass,
    UnrollingPass,
)
from repro.creator.passes.lowering import (
    BranchInsertionPass,
    InductionInsertionPass,
    IterationCounterPass,
    RegisterAllocationPass,
)
from repro.creator.passes.finalize import (
    CodeGenerationPass,
    PeepholePass,
    SchedulingPass,
    ValidationPass,
)
from repro.creator.passes.errors import CreatorError


def all_default_passes() -> list:
    """Fresh instances of the default pipeline, in execution order."""
    return [
        InstructionRepetitionPass(),
        MoveSemanticsPass(),
        InstructionSelectionPass(),
        RandomSelectionPass(),
        StrideSelectionPass(),
        ImmediateSelectionPass(),
        UnrollFactorSelectionPass(),
        OperandSwapBeforeUnrollPass(),
        UnrollingPass(),
        OperandSwapAfterUnrollPass(),
        RegisterRotationPass(),
        RegisterAllocationPass(),
        IterationCounterPass(),
        InductionInsertionPass(),
        BranchInsertionPass(),
        SchedulingPass(),
        PeepholePass(),
        ValidationPass(),
        CodeGenerationPass(),
    ]


__all__ = [
    "CreatorError",
    "InstructionRepetitionPass",
    "MoveSemanticsPass",
    "InstructionSelectionPass",
    "RandomSelectionPass",
    "StrideSelectionPass",
    "ImmediateSelectionPass",
    "UnrollFactorSelectionPass",
    "OperandSwapBeforeUnrollPass",
    "UnrollingPass",
    "OperandSwapAfterUnrollPass",
    "RegisterRotationPass",
    "RegisterAllocationPass",
    "IterationCounterPass",
    "InductionInsertionPass",
    "BranchInsertionPass",
    "SchedulingPass",
    "PeepholePass",
    "ValidationPass",
    "CodeGenerationPass",
    "all_default_passes",
]
