"""Unrolling-related passes: factor selection, the two operand-swap
phases, body replication, register-range rotation (pipeline stages 7-11).

The two swap phases together give the variability discussed in section
3.2: swapping *before* unrolling yields all-load or all-store kernels,
while swapping *after* unrolling yields every per-copy mix — for unroll
factor *u* that is 2^u programs, and summing over u = 1..8 gives exactly
the 510 variants of section 5.1.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Iterator

from repro.creator.ir import KernelIR, TemplateInstr
from repro.creator.pass_manager import CreatorContext, PerVariantPass
from repro.creator.passes.errors import CreatorError
from repro.spec.schema import MemoryRef, RegisterRange, RegisterRef


class UnrollFactorSelectionPass(PerVariantPass):
    """One variant per factor in the ``<unrolling>`` range (stage 7)."""

    name = "unroll_factor_selection"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        for u in ir.unroll_range.factors():
            yield ir.evolve(unroll=u).noting(unroll=u)


class OperandSwapBeforeUnrollPass(PerVariantPass):
    """Swap variants for ``<swap_before_unroll/>`` instructions (stage 8).

    Each flagged instruction doubles the variant count: original operand
    order and swapped order (a load template becomes a store and vice
    versa).  Because this runs before unrolling, each variant's unrolled
    copies all share the same direction.
    """

    name = "operand_swap_before"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        slots = [i for i, t in enumerate(ir.instrs) if t.swap_before_unroll]
        if not slots:
            yield ir
            return
        for combo in itertools.product((False, True), repeat=len(slots)):
            instrs = list(ir.instrs)
            for i, do_swap in zip(slots, combo):
                if do_swap:
                    instrs[i] = instrs[i].swapped()
            pattern = "".join(
                "S" if instrs[i].describes_store() else "L" for i in slots
            )
            yield ir.evolve(instrs=tuple(instrs)).noting(swap_before=pattern)


class UnrollingPass(PerVariantPass):
    """Replicate the body ``unroll`` times, bumping memory offsets (stage 9).

    Copy *k* of an instruction whose memory operand is based on a pointer
    induction with ``<offset>o</offset>`` reads/writes at ``base + k*o``
    — Fig. 6's offset 16 produces the 0/16/32 sequence of Fig. 8.
    """

    name = "unrolling"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        if ir.unroll is None:
            raise CreatorError(self.name, "unroll factor not selected", ir.metadata)
        offsets = {
            ind.register.name: ind.offset
            for ind in ir.pointer_inductions()
            if ind.offset is not None
        }
        body: list[TemplateInstr] = []
        for k in range(ir.unroll):
            for t in ir.instrs:
                body.append(self._copy_for_iteration(t, k, offsets))
        yield ir.evolve(instrs=tuple(body))

    @staticmethod
    def _copy_for_iteration(
        t: TemplateInstr, k: int, offsets: dict[str, int]
    ) -> TemplateInstr:
        # Copy 0 with no offset bump is the template itself, and most
        # copies shift only one memory operand: reuse the original
        # operand tuple (and its operand objects) whenever nothing in it
        # changed, instead of rebuilding per copy.
        changed = False
        operands = t.operands
        if k:
            rebuilt = []
            for op in t.operands:
                if isinstance(op, MemoryRef) and op.base.name in offsets:
                    rebuilt.append(
                        replace(op, offset=op.offset + k * offsets[op.base.name])
                    )
                    changed = True
                else:
                    rebuilt.append(op)
            if changed:
                operands = tuple(rebuilt)
        if not changed and t.unroll_index == k:
            return t
        return replace(t, operands=operands, unroll_index=k)


class OperandSwapAfterUnrollPass(PerVariantPass):
    """Per-unrolled-copy swap variants (stage 10).

    Every ``<swap_after_unroll/>`` copy independently keeps or swaps its
    operands, producing all load/store interleavings — the pass that makes
    one input file yield "two loads, two stores, a load followed by a
    store, and a store followed by a load" for a twice-unrolled kernel
    (section 3.2).
    """

    name = "operand_swap_after"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        slots = [i for i, t in enumerate(ir.instrs) if t.swap_after_unroll]
        if not slots:
            yield ir
            return
        for combo in itertools.product((False, True), repeat=len(slots)):
            instrs = list(ir.instrs)
            for i, do_swap in zip(slots, combo):
                if do_swap:
                    instrs[i] = instrs[i].swapped()
            mix = "".join(
                "S" if instrs[i].describes_store() else "L" for i in slots
            )
            yield ir.evolve(instrs=tuple(instrs)).noting(mix=mix)


class RegisterRotationPass(PerVariantPass):
    """Resolve register ranges to concrete registers (stage 11).

    Copy *k* (offset by its lane) takes ``{prefix}{min + (k mod span)}``,
    so consecutive unrolled copies use distinct XMM registers and carry no
    false dependences — the stated purpose of the min/max range in
    section 3.1.
    """

    name = "register_rotation"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        instrs = []
        for t in ir.instrs:
            # Instructions without a register range rotate to themselves;
            # keep the original template (and operand tuple) in that case.
            if not any(isinstance(op, RegisterRange) for op in t.operands):
                instrs.append(t)
                continue
            k = t.unroll_index + t.lane
            operands = tuple(
                RegisterRef(op.name_for(k)) if isinstance(op, RegisterRange) else op
                for op in t.operands
            )
            instrs.append(t.with_operands(operands))
        yield ir.evolve(instrs=tuple(instrs))
