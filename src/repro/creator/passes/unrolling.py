"""Unrolling-related passes: factor selection, the two operand-swap
phases, body replication, register-range rotation (pipeline stages 7-11).

The two swap phases together give the variability discussed in section
3.2: swapping *before* unrolling yields all-load or all-store kernels,
while swapping *after* unrolling yields every per-copy mix — for unroll
factor *u* that is 2^u programs, and summing over u = 1..8 gives exactly
the 510 variants of section 5.1.
"""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Sequence

from repro.creator.ir import KernelIR, TemplateInstr
from repro.creator.pass_manager import CreatorContext, Pass
from repro.creator.passes.errors import CreatorError
from repro.spec.schema import MemoryRef, RegisterRange, RegisterRef


class UnrollFactorSelectionPass(Pass):
    """One variant per factor in the ``<unrolling>`` range (stage 7)."""

    name = "unroll_factor_selection"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            for u in ir.unroll_range.factors():
                out.append(ir.evolve(unroll=u).noting(unroll=u))
        return out


class OperandSwapBeforeUnrollPass(Pass):
    """Swap variants for ``<swap_before_unroll/>`` instructions (stage 8).

    Each flagged instruction doubles the variant count: original operand
    order and swapped order (a load template becomes a store and vice
    versa).  Because this runs before unrolling, each variant's unrolled
    copies all share the same direction.
    """

    name = "operand_swap_before"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            slots = [i for i, t in enumerate(ir.instrs) if t.swap_before_unroll]
            if not slots:
                out.append(ir)
                continue
            for combo in itertools.product((False, True), repeat=len(slots)):
                instrs = list(ir.instrs)
                for i, do_swap in zip(slots, combo):
                    if do_swap:
                        instrs[i] = instrs[i].swapped()
                pattern = "".join(
                    "S" if instrs[i].describes_store() else "L" for i in slots
                )
                out.append(
                    ir.evolve(instrs=tuple(instrs)).noting(swap_before=pattern)
                )
        return out


class UnrollingPass(Pass):
    """Replicate the body ``unroll`` times, bumping memory offsets (stage 9).

    Copy *k* of an instruction whose memory operand is based on a pointer
    induction with ``<offset>o</offset>`` reads/writes at ``base + k*o``
    — Fig. 6's offset 16 produces the 0/16/32 sequence of Fig. 8.
    """

    name = "unrolling"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            if ir.unroll is None:
                raise CreatorError(self.name, "unroll factor not selected", ir.metadata)
            offsets = {
                ind.register.name: ind.offset
                for ind in ir.pointer_inductions()
                if ind.offset is not None
            }
            body: list[TemplateInstr] = []
            for k in range(ir.unroll):
                for t in ir.instrs:
                    body.append(self._copy_for_iteration(t, k, offsets))
            out.append(ir.evolve(instrs=tuple(body)))
        return out

    @staticmethod
    def _copy_for_iteration(
        t: TemplateInstr, k: int, offsets: dict[str, int]
    ) -> TemplateInstr:
        operands = []
        for op in t.operands:
            if isinstance(op, MemoryRef) and op.base.name in offsets:
                operands.append(replace(op, offset=op.offset + k * offsets[op.base.name]))
            else:
                operands.append(op)
        return replace(t, operands=tuple(operands), unroll_index=k)


class OperandSwapAfterUnrollPass(Pass):
    """Per-unrolled-copy swap variants (stage 10).

    Every ``<swap_after_unroll/>`` copy independently keeps or swaps its
    operands, producing all load/store interleavings — the pass that makes
    one input file yield "two loads, two stores, a load followed by a
    store, and a store followed by a load" for a twice-unrolled kernel
    (section 3.2).
    """

    name = "operand_swap_after"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            slots = [i for i, t in enumerate(ir.instrs) if t.swap_after_unroll]
            if not slots:
                out.append(ir)
                continue
            for combo in itertools.product((False, True), repeat=len(slots)):
                instrs = list(ir.instrs)
                for i, do_swap in zip(slots, combo):
                    if do_swap:
                        instrs[i] = instrs[i].swapped()
                mix = "".join(
                    "S" if instrs[i].describes_store() else "L" for i in slots
                )
                out.append(ir.evolve(instrs=tuple(instrs)).noting(mix=mix))
        return out


class RegisterRotationPass(Pass):
    """Resolve register ranges to concrete registers (stage 11).

    Copy *k* (offset by its lane) takes ``{prefix}{min + (k mod span)}``,
    so consecutive unrolled copies use distinct XMM registers and carry no
    false dependences — the stated purpose of the min/max range in
    section 3.1.
    """

    name = "register_rotation"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            instrs = []
            for t in ir.instrs:
                k = t.unroll_index + t.lane
                operands = tuple(
                    RegisterRef(op.name_for(k)) if isinstance(op, RegisterRange) else op
                    for op in t.operands
                )
                instrs.append(t.with_operands(operands))
            out.append(ir.evolve(instrs=tuple(instrs)))
        return out
