"""Selection passes: repetition, move semantics, instruction / random /
stride / immediate selection (pipeline stages 1-6)."""

from __future__ import annotations

import itertools
import sys
from dataclasses import replace
from typing import Iterator, Sequence

import numpy as np

from repro.creator.ir import KernelIR, TemplateInstr
from repro.creator.pass_manager import CreatorContext, Pass, PerVariantPass
from repro.creator.passes.errors import CreatorError
from repro.spec.schema import ImmediateSpec, MemoryRef


class InstructionRepetitionPass(PerVariantPass):
    """Expand ``<repeat>`` counts into that many template copies (stage 1).

    Copies are stamped with distinct lanes so register-range rotation gives
    each its own register, mirroring the dependence-breaking intent of the
    XMM min/max ranges.
    """

    name = "instruction_repetition"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        if all(t.repeat == 1 for t in ir.instrs):
            yield ir
            return
        instrs: list[TemplateInstr] = []
        for t in ir.instrs:
            if t.repeat == 1:
                instrs.append(t)
                continue
            for lane in range(t.repeat):
                instrs.append(replace(t, repeat=1, lane=t.lane + lane))
        yield ir.evolve(instrs=tuple(instrs))


class MoveSemanticsPass(PerVariantPass):
    """Expand move *semantics* into concrete encodings (stage 2).

    A 16-byte move becomes up to three variants: the aligned vector
    instruction, the unaligned vector instruction, and a group of four
    scalar moves covering the same payload (offsets +0/+4/+8/+12, distinct
    lanes).  4- and 8-byte moves have a single scalar encoding.
    """

    name = "move_semantics"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        slots = [i for i, t in enumerate(ir.instrs) if t.move_semantics is not None]
        if not slots:
            yield ir
            return
        per_slot: list[list[tuple[str, list[TemplateInstr]]]] = []
        for i in slots:
            per_slot.append(self._encodings(ir.instrs[i], i))
        for combo in itertools.product(*per_slot):
            instrs: list[TemplateInstr] = []
            notes: dict[str, object] = {}
            replacement = dict(zip(slots, combo))
            for i, t in enumerate(ir.instrs):
                if i in replacement:
                    kind, expansion = replacement[i]
                    notes[f"semantics:{i}"] = kind
                    instrs.extend(expansion)
                else:
                    instrs.append(t)
            yield ir.evolve(instrs=tuple(instrs)).noting(**notes)

    @staticmethod
    def _encodings(t: TemplateInstr, slot: int) -> list[tuple[str, list[TemplateInstr]]]:
        ms = t.move_semantics
        assert ms is not None
        encodings: list[tuple[str, list[TemplateInstr]]] = []
        if ms.bytes_per_element == 16:
            encodings.append(("vector_aligned", [t.with_opcode("movaps")]))
            if ms.allow_unaligned:
                encodings.append(("vector_unaligned", [t.with_opcode("movups")]))
            if ms.allow_scalar:
                scalar: list[TemplateInstr] = []
                for j in range(4):
                    copy = t.with_opcode("movss")
                    operands = tuple(
                        replace(op, offset=op.offset + 4 * j)
                        if isinstance(op, MemoryRef)
                        else op
                        for op in copy.operands
                    )
                    scalar.append(replace(copy, operands=operands, lane=t.lane + j))
                encodings.append(("scalar", scalar))
        else:
            opcode = "movss" if ms.bytes_per_element == 4 else "movsd"
            encodings.append(("scalar", [t.with_opcode(opcode)]))
        return encodings


class InstructionSelectionPass(PerVariantPass):
    """Cartesian expansion over per-instruction opcode choices (stage 3).

    "Instruction selection is a generic instruction scheduling pass which
    generates as many microbenchmark programs the user requires."
    """

    name = "instruction_selection"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        pending = [i for i, t in enumerate(ir.instrs) if t.opcode is None]
        for i in pending:
            if not ir.instrs[i].choices:
                raise CreatorError(
                    self.name, f"instruction {i} has no opcode and no choices", ir.metadata
                )
        if not pending:
            yield self._note_opcodes(ir)
            return
        for combo in itertools.product(*(ir.instrs[i].choices for i in pending)):
            instrs = list(ir.instrs)
            for i, opcode in zip(pending, combo):
                instrs[i] = instrs[i].with_opcode(opcode)
            yield self._note_opcodes(ir.evolve(instrs=tuple(instrs)))

    @staticmethod
    def _note_opcodes(ir: KernelIR) -> KernelIR:
        # sys.intern: opcode strings recur across thousands of variants
        # (metadata keys, dedup sets, digests) — one shared object each.
        return ir.noting(
            opcodes=tuple(sys.intern(t.opcode) for t in ir.instrs if t.opcode)
        )


class RandomSelectionPass(Pass):
    """Keep a deterministic random sample of variants (stage 4).

    Gated on ``options.random_selection``; the paper's instruction-selection
    stage "handles instruction repetition and random instruction
    selection" — this is the random half, split out so its gate can be
    toggled independently.
    """

    name = "random_selection"

    def gate(self, ctx: CreatorContext) -> bool:
        return ctx.options.random_selection is not None

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        k = ctx.options.random_selection
        assert k is not None
        if k >= len(variants):
            return list(variants)
        rng = np.random.default_rng(ctx.options.seed)
        keep = sorted(rng.choice(len(variants), size=k, replace=False).tolist())
        return [variants[i].noting(random_pick=True) for i in keep]


class StrideSelectionPass(PerVariantPass):
    """Cartesian expansion over induction stride choices (stage 5).

    Each chosen multiplier scales the target induction's per-iteration
    increment and per-copy offset, so a stride-2 variant of a 16-byte
    pointer walks 32 bytes per copy — a strided memory access pattern.
    """

    name = "stride_selection"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        strides = ctx.spec.strides
        if not strides:
            yield ir
            return
        for combo in itertools.product(*(s.values for s in strides)):
            inductions = list(ir.inductions)
            notes: dict[str, object] = {}
            for s, mult in zip(strides, combo):
                notes[f"stride:{s.register.name}"] = mult
                for j, ind in enumerate(inductions):
                    if ind.register.name == s.register.name:
                        inductions[j] = replace(
                            ind,
                            increment=ind.increment * mult,
                            offset=ind.offset * mult if ind.offset is not None else None,
                        )
            yield ir.evolve(inductions=tuple(inductions)).noting(**notes)


class ImmediateSelectionPass(PerVariantPass):
    """Choose values for immediate operands (stage 6).

    Multi-valued immediates expand cartesianly; single-valued ones are
    concretized in place.
    """

    name = "immediate_selection"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        pending: list[tuple[int, int]] = []  # (instr index, operand index)
        for i, t in enumerate(ir.instrs):
            for j, op in enumerate(t.operands):
                if isinstance(op, ImmediateSpec):
                    pending.append((i, j))
        if not pending:
            yield ir
            return
        choice_sets = [ir.instrs[i].operands[j].values for i, j in pending]  # type: ignore[union-attr]
        for combo in itertools.product(*choice_sets):
            instrs = list(ir.instrs)
            notes: dict[str, object] = {}
            for (i, j), value in zip(pending, combo):
                operands = list(instrs[i].operands)
                operands[j] = value
                instrs[i] = instrs[i].with_operands(tuple(operands))
                notes[f"imm:{i}.{j}"] = value
            yield ir.evolve(instrs=tuple(instrs)).noting(**notes)
