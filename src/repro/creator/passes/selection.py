"""Selection passes: repetition, move semantics, instruction / random /
stride / immediate selection (pipeline stages 1-6)."""

from __future__ import annotations

import itertools
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.creator.ir import KernelIR, TemplateInstr
from repro.creator.pass_manager import CreatorContext, Pass
from repro.creator.passes.errors import CreatorError
from repro.spec.schema import ImmediateSpec, MemoryRef


class InstructionRepetitionPass(Pass):
    """Expand ``<repeat>`` counts into that many template copies (stage 1).

    Copies are stamped with distinct lanes so register-range rotation gives
    each its own register, mirroring the dependence-breaking intent of the
    XMM min/max ranges.
    """

    name = "instruction_repetition"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            instrs: list[TemplateInstr] = []
            for t in ir.instrs:
                for lane in range(t.repeat):
                    instrs.append(replace(t, repeat=1, lane=t.lane + lane))
            out.append(ir.evolve(instrs=tuple(instrs)))
        return out


class MoveSemanticsPass(Pass):
    """Expand move *semantics* into concrete encodings (stage 2).

    A 16-byte move becomes up to three variants: the aligned vector
    instruction, the unaligned vector instruction, and a group of four
    scalar moves covering the same payload (offsets +0/+4/+8/+12, distinct
    lanes).  4- and 8-byte moves have a single scalar encoding.
    """

    name = "move_semantics"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            out.extend(self._expand(ir))
        return out

    def _expand(self, ir: KernelIR) -> list[KernelIR]:
        slots = [i for i, t in enumerate(ir.instrs) if t.move_semantics is not None]
        if not slots:
            return [ir]
        per_slot: list[list[tuple[str, list[TemplateInstr]]]] = []
        for i in slots:
            per_slot.append(self._encodings(ir.instrs[i], i))
        results: list[KernelIR] = []
        for combo in itertools.product(*per_slot):
            instrs: list[TemplateInstr] = []
            notes: dict[str, object] = {}
            replacement = dict(zip(slots, combo))
            for i, t in enumerate(ir.instrs):
                if i in replacement:
                    kind, expansion = replacement[i]
                    notes[f"semantics:{i}"] = kind
                    instrs.extend(expansion)
                else:
                    instrs.append(t)
            results.append(ir.evolve(instrs=tuple(instrs)).noting(**notes))
        return results

    @staticmethod
    def _encodings(t: TemplateInstr, slot: int) -> list[tuple[str, list[TemplateInstr]]]:
        ms = t.move_semantics
        assert ms is not None
        encodings: list[tuple[str, list[TemplateInstr]]] = []
        if ms.bytes_per_element == 16:
            encodings.append(("vector_aligned", [t.with_opcode("movaps")]))
            if ms.allow_unaligned:
                encodings.append(("vector_unaligned", [t.with_opcode("movups")]))
            if ms.allow_scalar:
                scalar: list[TemplateInstr] = []
                for j in range(4):
                    copy = t.with_opcode("movss")
                    operands = tuple(
                        replace(op, offset=op.offset + 4 * j)
                        if isinstance(op, MemoryRef)
                        else op
                        for op in copy.operands
                    )
                    scalar.append(replace(copy, operands=operands, lane=t.lane + j))
                encodings.append(("scalar", scalar))
        else:
            opcode = "movss" if ms.bytes_per_element == 4 else "movsd"
            encodings.append(("scalar", [t.with_opcode(opcode)]))
        return encodings


class InstructionSelectionPass(Pass):
    """Cartesian expansion over per-instruction opcode choices (stage 3).

    "Instruction selection is a generic instruction scheduling pass which
    generates as many microbenchmark programs the user requires."
    """

    name = "instruction_selection"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            pending = [i for i, t in enumerate(ir.instrs) if t.opcode is None]
            for i in pending:
                if not ir.instrs[i].choices:
                    raise CreatorError(
                        self.name, f"instruction {i} has no opcode and no choices", ir.metadata
                    )
            if not pending:
                out.append(self._note_opcodes(ir))
                continue
            for combo in itertools.product(*(ir.instrs[i].choices for i in pending)):
                instrs = list(ir.instrs)
                for i, opcode in zip(pending, combo):
                    instrs[i] = instrs[i].with_opcode(opcode)
                out.append(self._note_opcodes(ir.evolve(instrs=tuple(instrs))))
        return out

    @staticmethod
    def _note_opcodes(ir: KernelIR) -> KernelIR:
        return ir.noting(opcodes=tuple(t.opcode for t in ir.instrs))


class RandomSelectionPass(Pass):
    """Keep a deterministic random sample of variants (stage 4).

    Gated on ``options.random_selection``; the paper's instruction-selection
    stage "handles instruction repetition and random instruction
    selection" — this is the random half, split out so its gate can be
    toggled independently.
    """

    name = "random_selection"

    def gate(self, ctx: CreatorContext) -> bool:
        return ctx.options.random_selection is not None

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        k = ctx.options.random_selection
        assert k is not None
        if k >= len(variants):
            return list(variants)
        rng = np.random.default_rng(ctx.options.seed)
        keep = sorted(rng.choice(len(variants), size=k, replace=False).tolist())
        return [variants[i].noting(random_pick=True) for i in keep]


class StrideSelectionPass(Pass):
    """Cartesian expansion over induction stride choices (stage 5).

    Each chosen multiplier scales the target induction's per-iteration
    increment and per-copy offset, so a stride-2 variant of a 16-byte
    pointer walks 32 bytes per copy — a strided memory access pattern.
    """

    name = "stride_selection"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        strides = ctx.spec.strides
        if not strides:
            return list(variants)
        out: list[KernelIR] = []
        for ir in variants:
            for combo in itertools.product(*(s.values for s in strides)):
                inductions = list(ir.inductions)
                notes: dict[str, object] = {}
                for s, mult in zip(strides, combo):
                    notes[f"stride:{s.register.name}"] = mult
                    for j, ind in enumerate(inductions):
                        if ind.register.name == s.register.name:
                            inductions[j] = replace(
                                ind,
                                increment=ind.increment * mult,
                                offset=ind.offset * mult if ind.offset is not None else None,
                            )
                out.append(ir.evolve(inductions=tuple(inductions)).noting(**notes))
        return out


class ImmediateSelectionPass(Pass):
    """Choose values for immediate operands (stage 6).

    Multi-valued immediates expand cartesianly; single-valued ones are
    concretized in place.
    """

    name = "immediate_selection"
    streamable = True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        out: list[KernelIR] = []
        for ir in variants:
            out.extend(self._expand(ir))
        return out

    def _expand(self, ir: KernelIR) -> list[KernelIR]:
        pending: list[tuple[int, int]] = []  # (instr index, operand index)
        for i, t in enumerate(ir.instrs):
            for j, op in enumerate(t.operands):
                if isinstance(op, ImmediateSpec):
                    pending.append((i, j))
        if not pending:
            return [ir]
        choice_sets = [ir.instrs[i].operands[j].values for i, j in pending]  # type: ignore[union-attr]
        results: list[KernelIR] = []
        for combo in itertools.product(*choice_sets):
            instrs = list(ir.instrs)
            notes: dict[str, object] = {}
            for (i, j), value in zip(pending, combo):
                operands = list(instrs[i].operands)
                operands[j] = value
                instrs[i] = instrs[i].with_operands(tuple(operands))
                notes[f"imm:{i}.{j}"] = value
            results.append(ir.evolve(instrs=tuple(instrs)).noting(**notes))
        return results
