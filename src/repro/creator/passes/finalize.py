"""Finalization passes: scheduling, peephole, validation, code generation
(pipeline stages 16-19)."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.creator.ir import KernelIR
from repro.creator.pass_manager import CreatorContext, Pass, PerVariantPass
from repro.creator.passes.errors import CreatorError
from repro.isa.instructions import AsmProgram, Comment, Instruction, LabelDef
from repro.isa.operands import ImmediateOperand
from repro.isa.registers import LogicalReg
from repro.isa.writer import write_program


class SchedulingPass(PerVariantPass):
    """Interleave induction updates into the unrolled body (stage 16).

    Gated off by default (``options.schedule``): the paper keeps its
    generated shape (body, then updates, then branch), but notes that
    passes can be re-gated — this is the natural candidate, and the plugin
    example re-gates it.

    The scheduler spreads the non-flag-critical updates evenly through the
    body; the ``<last_induction/>`` update and the branch stay at the end
    so the tested flags are preserved.
    """

    name = "scheduling"

    def gate(self, ctx: CreatorContext) -> bool:
        return ctx.options.schedule

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        start = ir.metadata.get("_induction_start")
        if not isinstance(start, int) or len(ir.body) - start < 3:
            yield ir  # nothing movable: need update(s) + last + branch
            return
        body = list(ir.body[:start])
        tail = list(ir.body[start:])
        branch = tail.pop() if tail and tail[-1].is_branch else None
        last_update = tail.pop() if tail else None
        movable = tail  # everything else may move
        merged: list[Instruction] = []
        gap = max(1, len(body) // (len(movable) + 1)) if movable else len(body)
        queue = list(movable)
        for i, instr in enumerate(body, start=1):
            merged.append(instr)
            if queue and i % gap == 0:
                merged.append(queue.pop(0))
        merged.extend(queue)
        if last_update is not None:
            merged.append(last_update)
        if branch is not None:
            merged.append(branch)
        yield (
            ir.evolve(body=tuple(merged))
            .noting(scheduled=True, _induction_start=None)
        )


class PeepholePass(PerVariantPass):
    """Remove no-op instructions (stage 17): ``add $0, r`` and ``nop``."""

    name = "peephole"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        body = tuple(i for i in ir.body if not self._is_noop(i))
        yield ir if len(body) == len(ir.body) else ir.evolve(body=body)

    @staticmethod
    def _is_noop(instr: Instruction) -> bool:
        if instr.opcode == "nop":
            return True
        if instr.opcode in ("add", "sub", "addq", "subq") and instr.operands:
            first = instr.operands[0]
            return isinstance(first, ImmediateOperand) and first.value == 0
        return False


class ValidationPass(PerVariantPass):
    """Structural checks before emission (stage 18).

    Verifies that every variant is fully concrete: a non-empty body, no
    surviving template instructions, no logical registers, and — when a
    branch was requested — a flag-setting update preceding it.
    """

    name = "validation"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        self._check(ir)
        yield ir

    def _check(self, ir: KernelIR) -> None:
        if ir.instrs:
            raise CreatorError(
                self.name, f"{len(ir.instrs)} instructions were never lowered", ir.metadata
            )
        if not ir.body:
            raise CreatorError(self.name, "empty kernel body", ir.metadata)
        for instr in ir.body:
            for op in instr.operands:
                for reg in op.registers():
                    if isinstance(reg, LogicalReg):
                        raise CreatorError(
                            self.name,
                            f"unallocated logical register {reg.name!r} in "
                            f"'{instr.opcode}'",
                            ir.metadata,
                        )
        if ir.branch is not None:
            if not ir.body[-1].is_branch:
                raise CreatorError(self.name, "branch requested but not last", ir.metadata)
            if len(ir.body) < 2:
                raise CreatorError(self.name, "branch with no flag source", ir.metadata)


class CodeGenerationPass(Pass):
    """Assemble each variant into an :class:`AsmProgram` (stage 19).

    Emits the Fig. 8 layout (loop label, ``#Unrolling iterations`` body,
    ``#Induction variables`` updates, branch), records load/store counts
    in the metadata, and deduplicates variants whose emitted text is
    identical.
    """

    name = "code_generation"
    # The dedup set spans the whole variant stream, so the default
    # per-singleton streaming would be wrong; stream() below keeps the
    # set alive across incoming variants instead.
    streamable = False

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        return list(self.stream(iter(variants), ctx))

    def stream(self, variants: Iterator[KernelIR], ctx: CreatorContext) -> Iterator[KernelIR]:
        """Emit each variant as it arrives, deduplicating incrementally."""
        seen: set[str] = set()
        for ir in variants:
            program = self._emit(ir, ctx)
            text = write_program(program)
            if text in seen:
                continue
            seen.add(text)
            n_loads = sum(1 for i in ir.body if i.is_load)
            n_stores = sum(1 for i in ir.body if i.is_store)
            program.metadata.update(ir.metadata)
            program.metadata.update(n_loads=n_loads, n_stores=n_stores)
            program.metadata.pop("_induction_start", None)
            yield ir.evolve(program=program).noting(n_loads=n_loads, n_stores=n_stores)

    @staticmethod
    def _emit(ir: KernelIR, ctx: CreatorContext) -> AsmProgram:
        items: list = []
        if ir.branch is not None:
            items.append(LabelDef(ir.branch.asm_label))
        start = ir.metadata.get("_induction_start")
        body = list(ir.body)
        if isinstance(start, int) and 0 < start <= len(body):
            items.append(Comment("Unrolling iterations"))
            items.extend(body[:start])
            items.append(Comment("Induction variables"))
            items.extend(body[start:])
        else:
            items.extend(body)
        name = ctx.options.function_name or ir.name
        return AsmProgram(name=name, items=items)
