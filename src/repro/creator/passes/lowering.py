"""Lowering passes: register allocation, iteration counters, induction
insertion, branch insertion (pipeline stages 12-15).

After stage 12 the variant's loop body is a list of concrete
:class:`~repro.isa.Instruction` objects; stages 13-15 append the loop
machinery that turns the body into the Fig. 8 shape::

    .L6:
    <body>
    add $1, %eax        # iteration counter (Fig. 9), when requested
    add $48, %rsi       # pointer induction, scaled by the unroll factor
    sub $12, %rdi       # linked element counter — last, so its flags
    jge .L6             # are the ones the branch tests
"""

from __future__ import annotations

from typing import Iterator

from repro.creator.ir import KernelIR, TemplateInstr
from repro.creator.pass_manager import CreatorContext, PerVariantPass
from repro.creator.passes.errors import CreatorError
from repro.isa.instructions import Instruction
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    MemoryOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.registers import GPR64_POOL, parse_register
from repro.spec.schema import ImmediateSpec, InductionSpec, MemoryRef, RegisterRange, RegisterRef

#: Physical registers holding pointer arguments under the SysV ABI for the
#: MicroLauncher kernel signature ``int f(int n, void *a0, void *a1, ...)``:
#: ``n`` arrives in ``%edi`` and the arrays in these, in order.  Mapping
#: pointer inductions onto them makes the function prologue empty.
_POINTER_ARG_REGS = ("%rsi", "%rdx", "%rcx", "%r8", "%r9")
_COUNTER_REG = "%rdi"


class RegisterAllocationPass(PerVariantPass):
    """Bind logical registers to physical ones and lower the body (stage 12).

    Allocation policy (deliberately ABI-shaped, see module constants): the
    loop counter gets ``%rdi``, pointer inductions get the SysV pointer
    argument registers in declaration order, all remaining logical names
    draw from the general pool.
    """

    name = "register_allocation"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        yield self._allocate(ir)

    def _allocate(self, ir: KernelIR) -> KernelIR:
        regmap: dict[str, str] = {}
        used: set[str] = set()

        counter = ir.counter_induction()
        if counter is not None and not counter.register.is_physical:
            regmap[counter.register.name] = _COUNTER_REG
            used.add(_COUNTER_REG)

        pointer_regs = iter(_POINTER_ARG_REGS)
        for ind in ir.pointer_inductions():
            if ind.register.is_physical or ind.register.name in regmap:
                continue
            try:
                phys = next(r for r in pointer_regs if r not in used)
            except StopIteration:
                raise CreatorError(
                    self.name,
                    f"more pointer inductions than argument registers "
                    f"({len(_POINTER_ARG_REGS)} available)",
                    ir.metadata,
                )
            regmap[ind.register.name] = phys
            used.add(phys)

        # Remaining logical names referenced anywhere in the body.
        pool = iter(r for r in GPR64_POOL if r not in used)
        for t in ir.instrs:
            for op in t.operands:
                for name in _logical_names(op):
                    if name not in regmap:
                        try:
                            regmap[name] = next(pool)
                        except StopIteration:
                            raise CreatorError(
                                self.name, "out of physical registers", ir.metadata
                            )
        body = tuple(self._lower(t, regmap, ir) for t in ir.instrs)
        return ir.evolve(body=body, regmap=regmap, instrs=())

    def _lower(self, t: TemplateInstr, regmap: dict[str, str], ir: KernelIR) -> Instruction:
        if t.opcode is None:
            raise CreatorError(self.name, f"unselected instruction {t.choices}", ir.metadata)
        operands: list[Operand] = []
        for op in t.operands:
            operands.append(self._lower_operand(op, regmap, ir))
        return Instruction(t.opcode, tuple(operands))

    def _lower_operand(
        self, op: object, regmap: dict[str, str], ir: KernelIR
    ) -> Operand:
        if isinstance(op, RegisterRef):
            return RegisterOperand(parse_register(self._resolve(op, regmap)))
        if isinstance(op, MemoryRef):
            index = None
            if op.index is not None:
                index = parse_register(self._resolve(op.index, regmap))
            return MemoryOperand(
                base=parse_register(self._resolve(op.base, regmap)),
                offset=op.offset,
                index=index,
                scale=op.scale,
            )
        if isinstance(op, int):
            return ImmediateOperand(op)
        if isinstance(op, ImmediateSpec):
            if len(op.values) != 1:
                raise CreatorError(
                    self.name, f"unselected immediate {op.values}", ir.metadata
                )
            return ImmediateOperand(op.values[0])
        if isinstance(op, RegisterRange):
            raise CreatorError(
                self.name, f"unrotated register range {op.prefix}", ir.metadata
            )
        raise CreatorError(self.name, f"cannot lower operand {op!r}", ir.metadata)

    @staticmethod
    def _resolve(ref: RegisterRef, regmap: dict[str, str]) -> str:
        if ref.is_physical:
            return ref.name
        try:
            return regmap[ref.name]
        except KeyError:
            raise CreatorError(
                RegisterAllocationPass.name, f"unallocated logical register {ref.name!r}"
            ) from None


def _logical_names(op: object) -> list[str]:
    names = []
    if isinstance(op, RegisterRef) and not op.is_physical:
        names.append(op.name)
    elif isinstance(op, MemoryRef):
        if not op.base.is_physical:
            names.append(op.base.name)
        if op.index is not None and not op.index.is_physical:
            names.append(op.index.name)
    return names


def _resolved_name(ind: InductionSpec, regmap: dict[str, str]) -> str:
    if ind.register.is_physical:
        return ind.register.name
    try:
        return regmap[ind.register.name]
    except KeyError:
        raise CreatorError(
            "induction_insertion",
            f"induction register {ind.register.name!r} was never allocated",
        ) from None


def _update_instruction(reg_name: str, step: int, comment: str | None = None) -> Instruction:
    opcode = "add" if step > 0 else "sub"
    return Instruction(
        opcode,
        (ImmediateOperand(abs(step)), RegisterOperand(parse_register(reg_name))),
        comment=comment,
    )


class IterationCounterPass(PerVariantPass):
    """Materialize ``<not_affected_unroll/>`` counters (stage 13, Fig. 9).

    These step by their raw increment regardless of unrolling, so at loop
    exit the register (conventionally ``%eax``, the ABI return register)
    holds the number of *loop iterations* executed — the value
    MicroLauncher divides time by (section 4.4).  Placed before the other
    updates so the flag-setting counter update stays adjacent to the
    branch.
    """

    name = "iteration_counter"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        updates = tuple(
            _update_instruction(_resolved_name(ind, ir.regmap), ind.increment)
            for ind in ir.inductions
            if ind.not_affected_unroll
        )
        if updates:
            ir = ir.evolve(body=ir.body + updates).noting(
                iteration_counter=True, _induction_start=len(ir.body)
            )
        yield ir


class InductionInsertionPass(PerVariantPass):
    """Append the unroll-scaled induction updates (stage 14).

    - A pointer induction steps ``increment * unroll`` bytes.
    - A linked counter steps ``increment * unroll * elements_per_copy``
      where ``elements_per_copy = |linked.increment| / element_size`` —
      Fig. 8's ``sub $12, %rdi`` for unroll 3, increment -1, a 16-byte
      linked step and 4-byte elements.
    - The ``<last_induction/>`` update is emitted last so the loop branch
      tests its flags.
    """

    name = "induction_insertion"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        if ir.unroll is None:
            raise CreatorError(self.name, "unroll factor not selected", ir.metadata)
        regular: list[Instruction] = []
        last: list[Instruction] = []
        for ind in ir.inductions:
            if ind.not_affected_unroll:
                continue  # handled by iteration_counter
            step = self._scaled_step(ind, ir)
            update = _update_instruction(_resolved_name(ind, ir.regmap), step)
            (last if ind.last_induction else regular).append(update)
        updates = tuple(regular + last)
        md: dict[str, object] = {}
        if "_induction_start" not in ir.metadata and updates:
            md["_induction_start"] = len(ir.body)
        yield ir.evolve(body=ir.body + updates).noting(**md)

    def _scaled_step(self, ind: InductionSpec, ir: KernelIR) -> int:
        assert ir.unroll is not None
        if ind.linked is None:
            return ind.increment * ir.unroll
        linked = next(
            (i for i in ir.inductions if i.register.name == ind.linked.name), None
        )
        if linked is None:
            raise CreatorError(
                self.name, f"linked induction {ind.linked.name!r} not found", ir.metadata
            )
        elements_per_copy = abs(linked.increment) // ind.element_size
        if elements_per_copy == 0:
            raise CreatorError(
                self.name,
                f"linked step {linked.increment} smaller than element size "
                f"{ind.element_size}",
                ir.metadata,
            )
        return ind.increment * ir.unroll * elements_per_copy


class BranchInsertionPass(PerVariantPass):
    """Append the closing conditional jump (stage 15)."""

    name = "branch_insertion"

    def expand(self, ir: KernelIR, ctx: CreatorContext) -> Iterator[KernelIR]:
        if ir.branch is None:
            yield ir
            return
        jump = Instruction(ir.branch.test, (LabelOperand(ir.branch.asm_label),))
        yield ir.evolve(body=ir.body + (jump,))
