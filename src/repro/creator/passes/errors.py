"""Error type shared by MicroCreator passes."""

from __future__ import annotations


class CreatorError(RuntimeError):
    """A pass could not process a kernel variant.

    Carries the pass name and the variant's metadata so failures in a
    multi-thousand-variant run point back to the offending choice
    combination.
    """

    def __init__(self, pass_name: str, message: str, metadata: dict | None = None) -> None:
        detail = f"[{pass_name}] {message}"
        if metadata:
            detail += f" (variant metadata: {metadata})"
        super().__init__(detail)
        self.pass_name = pass_name
        self.metadata = metadata or {}
