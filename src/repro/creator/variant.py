"""Generated kernel variants: the MicroCreator output unit."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.isa.instructions import AsmProgram, Instruction
from repro.isa.writer import write_program


@dataclass(slots=True)
class GeneratedKernel:
    """One generated microbenchmark program.

    MicroCreator's output is "an assembly file executed by the
    MicroLauncher tool" (section 3.4); this object carries the program,
    the choice metadata the passes recorded, and the emitters for the
    assembly and C forms.
    """

    spec_name: str
    variant_id: int
    program: AsmProgram
    metadata: dict[str, object] = field(default_factory=dict)
    #: Memo slot for :func:`repro.engine.hashing.kernel_digest` — lets
    #: job-ID hashing reuse one digest across a whole option sweep.
    _digest_memo: str | None = field(default=None, repr=False, compare=False)

    @property
    def name(self) -> str:
        """Unique function/symbol name for this variant."""
        return self.program.name

    @property
    def unroll(self) -> int:
        return int(self.metadata.get("unroll", 1))  # type: ignore[arg-type]

    @property
    def mix(self) -> str:
        """Load/store pattern, e.g. ``"LLS"`` — one letter per memory copy."""
        explicit = self.metadata.get("mix")
        if isinstance(explicit, str):
            return explicit
        letters = []
        for instr in self.program.instructions():
            if instr.bytes_moved:
                letters.append("S" if instr.is_store else "L")
        return "".join(letters)

    @property
    def n_loads(self) -> int:
        return int(self.metadata.get("n_loads", 0))  # type: ignore[arg-type]

    @property
    def n_stores(self) -> int:
        return int(self.metadata.get("n_stores", 0))  # type: ignore[arg-type]

    @property
    def opcodes(self) -> tuple[str, ...]:
        ops = self.metadata.get("opcodes")
        if isinstance(ops, tuple):
            return ops
        return tuple(sorted({i.opcode for i in self.program.instructions() if i.bytes_moved}))

    def instructions(self) -> list[Instruction]:
        return list(self.program.instructions())

    def asm_text(self, *, full_file: bool = False) -> str:
        """The kernel as AT&T assembly (optionally a complete ``.s`` file)."""
        return write_program(self.program, full_file=full_file)

    def c_text(self) -> str:
        """The kernel as compilable C following the launcher ABI."""
        from repro.creator.cgen import c_source_for

        return c_source_for(self)

    def write(self, directory: str | Path, *, language: str = "asm") -> Path:
        """Write the variant to ``directory`` as ``<name>.s`` or ``<name>.c``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if language == "asm":
            path = directory / f"{self.name}.s"
            path.write_text(self.asm_text(full_file=True))
        elif language == "c":
            path = directory / f"{self.name}.c"
            path.write_text(self.c_text())
        else:
            raise ValueError(f"language must be 'asm' or 'c', got {language!r}")
        return path
