"""The MicroCreator front-end: spec in, kernel variants out."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro import obs
from repro.creator.pass_manager import (
    CreatorContext,
    CreatorOptions,
    PassManager,
    default_pass_pipeline,
)
from repro.creator.variant import GeneratedKernel
from repro.spec.schema import KernelSpec
from repro.spec.xmlio import parse_kernel_spec, parse_spec_file


class MicroCreator:
    """Generates microbenchmark program variants from kernel descriptions.

    Parameters
    ----------
    options:
        Generation knobs (random selection, limits, scheduling, ...).
    pass_manager:
        A custom pipeline; defaults to the nineteen-pass pipeline of
        section 3.2.
    plugins:
        Plugin modules or file paths, each exposing ``pluginInit(pm)``;
        loaded in order against the pass manager before any generation
        (section 3.3).
    """

    def __init__(
        self,
        options: CreatorOptions | None = None,
        *,
        pass_manager: PassManager | None = None,
        plugins: Iterable[object] = (),
    ) -> None:
        self.options = options or CreatorOptions()
        self.pass_manager = pass_manager or default_pass_pipeline()
        from repro.creator.plugins import load_plugin, load_plugin_file

        for plugin in plugins:
            if isinstance(plugin, (str, Path)):
                load_plugin_file(plugin, self.pass_manager)
            else:
                load_plugin(plugin, self.pass_manager)

    def generate(self, spec: KernelSpec) -> list[GeneratedKernel]:
        """Run the pipeline and return every generated variant.

        Variant function names are ``<spec name>_v<id>`` unless
        ``options.function_name`` pins a single name (only sensible when
        the spec yields one variant).
        """
        return list(self.stream(spec))

    def stream(self, spec: KernelSpec) -> Iterator[GeneratedKernel]:
        """Yield generated variants lazily, in :meth:`generate` order.

        Backed by :meth:`PassManager.stream`: each variant is emitted as
        soon as the pass pipeline finishes it, so a consumer (a
        measurement campaign, an incremental file writer) can start on
        the first variant while later passes are still expanding.
        """
        ctx = CreatorContext(spec=spec, options=self.options)
        for i, ir in enumerate(self.pass_manager.stream(ctx)):
            program = ir.program
            if program is None:
                raise RuntimeError(
                    "pipeline finished without code generation; did a plugin "
                    "remove the 'code_generation' pass?"
                )
            if self.options.function_name is None:
                program.name = f"{spec.name}_v{i:04d}"
            public_metadata = {
                k: v for k, v in ir.metadata.items() if not k.startswith("_")
            }
            obs.count("creator.variants.generated")
            yield GeneratedKernel(
                spec_name=spec.name,
                variant_id=i,
                program=program,
                metadata=public_metadata,
            )

    def generate_from_xml(self, xml_text: str) -> list[GeneratedKernel]:
        """Generate from kernel-description XML text."""
        return self.generate(parse_kernel_spec(xml_text))

    def generate_from_file(self, path: str | Path) -> list[GeneratedKernel]:
        """Generate from a kernel-description XML file."""
        return self.generate(parse_spec_file(path))

    def write_all(
        self,
        kernels: Sequence[GeneratedKernel],
        directory: str | Path,
        *,
        language: str = "asm",
    ) -> list[Path]:
        """Write every variant to ``directory``; returns the paths."""
        return [k.write(directory, language=language) for k in kernels]
