"""Application-driven kernel abstraction (paper future work).

"On one side, applications drive MicroCreator's generated code to test
variations around the application's hotspots" (section 7).  This module
implements that direction: given a concrete hotspot loop (any
:class:`~repro.isa.AsmProgram`, e.g. compiler output parsed by
:mod:`repro.isa.parser`), derive the MicroCreator kernel *description*
that generates variations around it — logical registers instead of
physical ones, XMM register ranges instead of fixed registers, a
detected (and re-openable) unroll factor, and the loop's inductions and
branch.

The abstraction is heuristic and documented as such:

- instructions are grouped into unroll copies by detecting the repeated
  (opcode, base-register, direction) pattern; offsets must step uniformly,
- induction updates (``add/sub $imm, reg``) become :class:`InductionSpec`
  nodes, de-scaled by the detected unroll factor,
- the flag-setting update feeding the final branch becomes the
  ``last_induction`` (linked to the first pointer when the byte ratio is
  integral),
- XMM destinations collapse into a ``%xmm0..8`` range.

Round-trip property: abstracting a MicroCreator-generated kernel and
regenerating at the same unroll factor reproduces the original body
(tested in ``tests/creator/test_abstractor.py``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.isa.instructions import AsmProgram, Instruction
from repro.isa.operands import ImmediateOperand, RegisterOperand
from repro.isa.registers import PhysReg
from repro.isa.semantics import OpcodeKind
from repro.spec.schema import (
    BranchInfoSpec,
    InductionSpec,
    InstructionSpec,
    KernelSpec,
    MemoryRef,
    RegisterRange,
    RegisterRef,
    UnrollSpec,
)


class AbstractionError(ValueError):
    """The hotspot loop does not fit the abstractor's supported shape."""


@dataclass(frozen=True, slots=True)
class _Pattern:
    """One memory instruction's shape within a single unroll copy."""

    opcode: str
    base: str
    is_store: bool


def _canonical(reg) -> str:
    if isinstance(reg, PhysReg):
        return reg.canonical64.name
    return str(reg)


def abstract_program(
    program: AsmProgram,
    *,
    unroll: tuple[int, int] = (1, 8),
    swap_after_unroll: bool = False,
    name: str | None = None,
) -> KernelSpec:
    """Derive a kernel description from a concrete hotspot loop.

    Parameters
    ----------
    program:
        The hotspot (must contain a kernel loop).
    unroll:
        The unroll range the *generated* family should sweep — the point
        of abstraction is to re-open this dimension.
    swap_after_unroll:
        Request the load/store swap family around the hotspot.
    """
    label, body = program.kernel_loop()
    branch = body[-1]
    if not branch.is_branch:
        raise AbstractionError("loop does not end in a branch")

    mem_instrs: list[Instruction] = []
    updates: dict[str, int] = {}
    update_order: list[str] = []
    for instr in body[:-1]:
        if instr.memory_operands and instr.info.kind is OpcodeKind.MOVE:
            mem_instrs.append(instr)
        elif (
            instr.info.kind is OpcodeKind.INT_ALU
            and len(instr.operands) == 2
            and isinstance(instr.operands[0], ImmediateOperand)
            and isinstance(instr.operands[1], RegisterOperand)
            and instr.opcode.rstrip("lq") in ("add", "sub")
        ):
            reg = _canonical(instr.operands[1].reg)
            sign = 1 if instr.opcode.startswith("add") else -1
            updates[reg] = updates.get(reg, 0) + sign * instr.operands[0].value
            if reg not in update_order:
                update_order.append(reg)
        elif instr.info.kind is OpcodeKind.NOP:
            continue
        else:
            raise AbstractionError(
                f"unsupported instruction in hotspot: '{instr.opcode}' "
                "(only memory moves and immediate induction updates are "
                "abstractable)"
            )
    if not mem_instrs:
        raise AbstractionError("hotspot touches no memory; nothing to abstract")

    # --- detect the unroll factor -----------------------------------------
    patterns = [
        _Pattern(i.opcode, _canonical(i.memory_operands[0].base), i.is_store)
        for i in mem_instrs
    ]
    counts = Counter(patterns)
    detected = min(counts.values())
    # The body must be `detected` identical copies of the base pattern.
    if any(c % detected for c in counts.values()) or len(mem_instrs) % detected:
        detected = 1

    per_copy = len(mem_instrs) // detected

    # --- validate offset progression and collect per-copy offsets ----------
    copy_offsets: dict[str, int] = {}
    for base in {p.base for p in patterns}:
        offsets = sorted(
            m.offset for i in mem_instrs for m in i.memory_operands
            if _canonical(m.base) == base
        )
        if len(offsets) > 1:
            deltas = {b - a for a, b in zip(offsets, offsets[1:])}
            if len(deltas) != 1:
                raise AbstractionError(
                    f"non-uniform offsets on {base}: {offsets}"
                )
            copy_offsets[base] = deltas.pop()
        else:
            step = updates.get(base, 0)
            copy_offsets[base] = abs(step) // detected if step else 0

    # --- logical renaming ----------------------------------------------------
    base_to_logical: dict[str, str] = {}
    flag_reg = _flag_register(body)
    counter_logical = "r0"
    next_id = 1
    for base in sorted({p.base for p in patterns}):
        base_to_logical[base] = f"r{next_id}"
        next_id += 1

    instructions: list[InstructionSpec] = []
    seen: set[_Pattern] = set()
    for instr, pattern in zip(mem_instrs, patterns):
        if pattern in seen:
            continue
        seen.add(pattern)
        if len(seen) > per_copy:
            break
        mem = instr.memory_operands[0]
        first_offset = min(
            m.offset for i, p in zip(mem_instrs, patterns) if p == pattern
            for m in i.memory_operands
        )
        memref = MemoryRef(RegisterRef(base_to_logical[pattern.base]), offset=first_offset)
        data = RegisterRange("%xmm", 0, 8)
        operands = (data, memref) if pattern.is_store else (memref, data)
        instructions.append(
            InstructionSpec(
                operations=(pattern.opcode,),
                operands=operands,
                swap_after_unroll=swap_after_unroll,
            )
        )

    # --- inductions -----------------------------------------------------------
    inductions: list[InductionSpec] = []
    pointer_bases = [b for b in update_order if b in base_to_logical]
    first_pointer = pointer_bases[0] if pointer_bases else None
    for reg in update_order:
        step = updates[reg]
        if step == 0:
            continue
        per_copy_step = step // detected if step % detected == 0 else step
        if reg in base_to_logical:
            inductions.append(
                InductionSpec(
                    register=RegisterRef(base_to_logical[reg]),
                    increment=per_copy_step,
                    offset=copy_offsets.get(reg) or abs(per_copy_step),
                )
            )
        elif reg == flag_reg and first_pointer is not None:
            pointer_step = abs(updates[first_pointer]) // detected
            elements = abs(step) // detected
            if elements and pointer_step % elements == 0:
                inductions.append(
                    InductionSpec(
                        register=RegisterRef(counter_logical),
                        increment=-1 if step < 0 else 1,
                        linked=RegisterRef(base_to_logical[first_pointer]),
                        last_induction=True,
                        element_size=pointer_step // elements,
                    )
                )
            else:
                inductions.append(
                    InductionSpec(
                        register=RegisterRef(counter_logical),
                        increment=per_copy_step,
                        last_induction=True,
                    )
                )
        elif reg in ("%rax",):
            inductions.append(
                InductionSpec(
                    register=RegisterRef("%eax"),
                    increment=step,
                    not_affected_unroll=True,
                )
            )

    branch_spec = BranchInfoSpec(label=label.lstrip("."), test=branch.opcode)
    return KernelSpec(
        name=name or f"{program.name}_abstracted",
        instructions=tuple(instructions),
        unrolling=UnrollSpec(*unroll),
        inductions=tuple(inductions),
        branch=branch_spec,
    )


def _flag_register(body: list[Instruction]) -> str | None:
    """The register whose update sets the flags the closing branch tests."""
    flag = None
    for instr in body:
        if (
            instr.info.kind is OpcodeKind.INT_ALU
            and len(instr.operands) == 2
            and isinstance(instr.operands[1], RegisterOperand)
        ):
            flag = _canonical(instr.operands[1].reg)
    return flag
