"""The GCC-style plugin system (paper section 3.3).

A plugin is any module (or ``.py`` file) that defines::

    def pluginInit(pm):        # the paper's required entry point
        pm.replace_pass("peephole", MyPeephole())
        pm.set_gate("scheduling", lambda ctx: True)
        pm.insert_pass_after("unrolling", MyExtraPass())

The :class:`~repro.creator.pass_manager.PassManager` passed in is the
"fully exposed API": plugins may add, remove, or modify a pass and
redefine any pass gate without touching the tool itself.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path
from types import ModuleType

from repro.creator.pass_manager import PassManager

#: The entry-point name the paper mandates.
PLUGIN_INIT = "pluginInit"


class PluginError(RuntimeError):
    """A plugin failed to load or misbehaved during initialization."""


def load_plugin(module: object, pass_manager: PassManager) -> None:
    """Initialize a plugin module against ``pass_manager``.

    ``module`` may be anything with a callable ``pluginInit`` attribute.
    """
    init = getattr(module, PLUGIN_INIT, None)
    if not callable(init):
        name = getattr(module, "__name__", repr(module))
        raise PluginError(f"plugin {name} does not define a callable {PLUGIN_INIT}()")
    try:
        init(pass_manager)
    except Exception as exc:  # surface plugin bugs with context
        name = getattr(module, "__name__", repr(module))
        raise PluginError(f"{PLUGIN_INIT}() of plugin {name} failed: {exc}") from exc


def load_plugin_file(path: str | Path, pass_manager: PassManager) -> ModuleType:
    """Import a plugin from a ``.py`` file and initialize it.

    This is the dynamic-library analogue of the paper's plugin loading:
    users hand MicroCreator a path, no recompilation (here: no packaging)
    required.
    """
    path = Path(path)
    if not path.exists():
        raise PluginError(f"plugin file not found: {path}")
    module_name = f"microcreator_plugin_{path.stem}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    if spec is None or spec.loader is None:
        raise PluginError(f"cannot import plugin from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(module_name, None)
        raise PluginError(f"plugin {path} failed to import: {exc}") from exc
    load_plugin(module, pass_manager)
    return module
