"""MicroCreator: the pass-based microbenchmark generator (paper section 3).

From one :class:`~repro.spec.KernelSpec` the generator produces every
requested kernel variant — instruction choices, strides, immediates,
operand swaps before/after unrolling, unroll factors, rotated register
ranges — as ready-to-launch assembly (and optionally C).

The public entry point is :class:`MicroCreator`::

    from repro.creator import MicroCreator
    from repro.spec import load_kernel

    creator = MicroCreator()
    kernels = creator.generate(load_kernel("movaps", swap_after_unroll=True))
    print(len(kernels))        # 510 variants, as in section 5.1
    print(kernels[0].asm_text())

The pass pipeline is user-extensible through the GCC-style plugin system
(:mod:`repro.creator.plugins`): a plugin module exposes ``pluginInit(pm)``
and may add, remove or replace passes and redefine pass gates without
touching the tool (section 3.3).
"""

from repro.creator.ir import KernelIR, TemplateInstr
from repro.creator.pass_manager import (
    CreatorContext,
    CreatorOptions,
    Pass,
    PassManager,
    default_pass_pipeline,
)
from repro.creator.variant import GeneratedKernel
from repro.creator.generator import MicroCreator
from repro.creator.plugins import PluginError, load_plugin, load_plugin_file
from repro.creator.cgen import c_source_for
from repro.creator.abstractor import AbstractionError, abstract_program

__all__ = [
    "KernelIR",
    "TemplateInstr",
    "CreatorContext",
    "CreatorOptions",
    "Pass",
    "PassManager",
    "default_pass_pipeline",
    "GeneratedKernel",
    "MicroCreator",
    "PluginError",
    "load_plugin",
    "load_plugin_file",
    "c_source_for",
    "AbstractionError",
    "abstract_program",
]
