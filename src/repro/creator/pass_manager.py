"""The pass framework: gates, ordering, expansion limits, plugin hooks.

Passes are *entirely independent* (section 3.3): each receives the variant
list produced so far and returns a new list.  A pass runs only when its
gate returns true; most default gates always return true, exactly as the
paper notes, and plugins may redefine any gate or replace any pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro import obs
from repro.creator.ir import KernelIR
from repro.spec.schema import KernelSpec


@dataclass(slots=True)
class CreatorOptions:
    """Knobs controlling generation.

    Attributes
    ----------
    random_selection:
        When set, the random-selection pass keeps this many randomly
        chosen variants after instruction selection (the paper's "random
        instruction selection" mode).
    seed:
        RNG seed for random selection — generation is deterministic.
    max_benchmarks:
        Global cap on the variant count; overrides the spec's own
        ``max_benchmarks`` when lower.  Enforced after every expanding
        pass so a pathological spec cannot explode memory.
    schedule:
        Enables the (default-gated-off) scheduling pass that interleaves
        induction updates into the unrolled body.
    function_name:
        Symbol name for the generated kernel entry point; ``None`` derives
        one from the spec name and variant index.
    """

    random_selection: int | None = None
    seed: int = 0
    max_benchmarks: int | None = None
    schedule: bool = False
    function_name: str | None = None


@dataclass(slots=True)
class CreatorContext:
    """Everything a pass may consult: the spec, options, and scratch state."""

    spec: KernelSpec
    options: CreatorOptions = field(default_factory=CreatorOptions)

    @property
    def benchmark_limit(self) -> int | None:
        limits = [l for l in (self.spec.max_benchmarks, self.options.max_benchmarks) if l]
        return min(limits) if limits else None


class Pass:
    """Base class for MicroCreator passes.

    Subclasses set :attr:`name` and implement :meth:`run`.  The default
    :meth:`gate` always fires, matching the paper ("Most internal passes
    are performed because their gates always return true"); plugins
    override gates via :meth:`PassManager.set_gate`.
    """

    #: Unique pass name used for plugin addressing.
    name: str = "pass"

    #: True when :meth:`run` distributes over concatenation —
    #: ``run(a + b) == run(a) + run(b)`` — so the pass can process
    #: variants one at a time inside :meth:`PassManager.stream`.  Every
    #: default pass is a per-variant map/expansion and sets this, except
    #: random selection (samples the whole list) and code generation
    #: (dedups across it; it overrides :meth:`stream` instead).  Plugin
    #: passes default to False: they are materialized, never reordered.
    streamable: bool = False

    def gate(self, ctx: CreatorContext) -> bool:
        """Decide whether the pass executes for this generation run."""
        return True

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        """Transform the variant list (pure: no mutation of inputs)."""
        raise NotImplementedError

    def expand(self, variant: KernelIR, ctx: CreatorContext) -> Iterable[KernelIR]:
        """Transform one variant (the streamable unit of work).

        The default wraps :meth:`run` so a streamable plugin pass that
        only implements ``run`` keeps working; passes on the hot path
        override this with a generator instead, avoiding a throwaway
        single-element list per incoming variant.
        """
        return self.run([variant], ctx)

    def _expands_per_variant(self) -> bool:
        """Whether :meth:`expand` is this pass's real implementation.

        Walks the MRO for the most-derived class defining ``expand`` or
        ``run``: a subclass that overrides ``run`` below the class
        providing ``expand`` (a plugin wrapping a default pass) must
        still have its ``run`` drive execution.
        """
        for cls in type(self).__mro__:
            if "expand" in cls.__dict__:
                return True
            if "run" in cls.__dict__:
                return False
        return False

    def stream(
        self, variants: Iterator[KernelIR], ctx: CreatorContext
    ) -> Iterator[KernelIR]:
        """Lazily transform a variant stream.

        Streamable passes run once per incoming variant (via
        :meth:`expand`), yielding each expansion as soon as its input
        arrives; everything else falls back to materializing the
        upstream — identical results either way, by the
        :attr:`streamable` contract.
        """
        if self.streamable:
            if self._expands_per_variant():
                for variant in variants:
                    yield from self.expand(variant, ctx)
            else:
                for variant in variants:
                    yield from self.run([variant], ctx)
        else:
            yield from self.run(list(variants), ctx)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class PerVariantPass(Pass):
    """A pass defined by its per-variant expansion.

    Subclasses implement :meth:`expand` only; :meth:`run` is derived by
    concatenation, which is exactly the :attr:`Pass.streamable` contract.
    All default per-variant passes use this base, so the streaming
    pipeline never allocates per-variant wrapper lists.
    """

    streamable = True

    def expand(self, variant: KernelIR, ctx: CreatorContext) -> Iterable[KernelIR]:
        raise NotImplementedError

    def run(self, variants: Sequence[KernelIR], ctx: CreatorContext) -> list[KernelIR]:
        return [out for variant in variants for out in self.expand(variant, ctx)]


GateFn = Callable[[CreatorContext], bool]


class PassManager:
    """Ordered pass pipeline with the plugin-facing manipulation API.

    The API mirrors what the paper exposes to plugins: add, remove or
    replace a pass, and redefine any pass's gate, all without recompiling
    (here: without editing) the tool.
    """

    def __init__(self, passes: Iterable[Pass] = ()) -> None:
        self._passes: list[Pass] = list(passes)
        self._gate_overrides: dict[str, GateFn] = {}
        self._seen_names: set[str] = set()
        for p in self._passes:
            self._check_unique(p)

    def _check_unique(self, p: Pass) -> None:
        if p.name in self._seen_names:
            raise ValueError(f"duplicate pass name {p.name!r}")
        self._seen_names.add(p.name)

    # -- plugin API ----------------------------------------------------------

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self._passes]

    def get_pass(self, name: str) -> Pass:
        for p in self._passes:
            if p.name == name:
                return p
        raise KeyError(f"no pass named {name!r}; have {self.pass_names}")

    def _index(self, name: str) -> int:
        for i, p in enumerate(self._passes):
            if p.name == name:
                return i
        raise KeyError(f"no pass named {name!r}; have {self.pass_names}")

    def append_pass(self, new: Pass) -> None:
        self._check_unique(new)
        self._passes.append(new)

    def insert_pass_before(self, name: str, new: Pass) -> None:
        self._check_unique(new)
        self._passes.insert(self._index(name), new)

    def insert_pass_after(self, name: str, new: Pass) -> None:
        self._check_unique(new)
        self._passes.insert(self._index(name) + 1, new)

    def remove_pass(self, name: str) -> Pass:
        removed = self._passes.pop(self._index(name))
        self._seen_names.discard(name)
        self._gate_overrides.pop(name, None)
        return removed

    def replace_pass(self, name: str, new: Pass) -> Pass:
        """Swap the named pass for ``new`` (which may reuse the name).

        Renaming frees the old name for reuse and drops any gate
        override registered under it — a later pass adopting the old
        name must not inherit a stale gate.  A same-name replacement
        keeps its override: gates address names, not instances.
        """
        idx = self._index(name)
        old = self._passes[idx]
        if new.name != name:
            self._seen_names.discard(name)
            self._check_unique(new)
            self._gate_overrides.pop(name, None)
        self._passes[idx] = new
        return old

    def set_gate(self, name: str, gate: GateFn) -> None:
        """Redefine when the named pass executes (section 3.3)."""
        self._index(name)  # validate existence
        self._gate_overrides[name] = gate

    def gate_for(self, p: Pass, ctx: CreatorContext) -> bool:
        override = self._gate_overrides.get(p.name)
        return override(ctx) if override is not None else p.gate(ctx)

    # -- execution -----------------------------------------------------------

    def run(self, ctx: CreatorContext) -> list[KernelIR]:
        """Run the pipeline on the context's spec.

        After every pass the variant count is clamped to the benchmark
        limit (deterministic even subsampling), so intermediate explosion
        is bounded by the same knob the paper offers users.  This is
        simply ``list(self.stream(ctx))``: the streaming composition
        preserves these semantics exactly.
        """
        return list(self.stream(ctx))

    def stream(self, ctx: CreatorContext) -> Iterator[KernelIR]:
        """Yield the pipeline's variants lazily (generator per pass).

        Streamable passes compose as chained generators, so the first
        fully generated variant is available while later expansions are
        still pending — a campaign can start measuring immediately.
        Whole-list passes (random selection, plugin passes) and any run
        under a ``benchmark_limit`` materialize at that stage, keeping
        :meth:`run` and :meth:`stream` bit-identical: the limit's even
        subsampling must see each pass's complete output, exactly as the
        eager pipeline applied it.

        With observability enabled (:func:`repro.obs.enable`) the
        pipeline runs pass-at-a-time instead — one ``pass:<name>`` span
        per gated pass per variant batch, so per-pass wall time is
        attributable — yielding exactly the same variants: each stage
        sees its predecessor's complete output either way.
        """
        if obs.is_enabled():
            return self._traced_stream(ctx)
        limit = ctx.benchmark_limit
        stage: Iterator[KernelIR] = iter([KernelIR.from_spec(ctx.spec)])
        for p in self._passes:
            if not self.gate_for(p, ctx):
                continue
            if limit is None:
                stage = p.stream(stage, ctx)
            else:
                stage = self._clamped_stage(p, stage, ctx, limit)
        return stage

    def _traced_stream(self, ctx: CreatorContext) -> Iterator[KernelIR]:
        """The observed pipeline: materialized per pass, spanned per pass.

        Lazy generator chaining interleaves every pass's work, which
        makes per-pass attribution meaningless; tracing trades the
        laziness (not the results — passes are pure and compose
        identically) for spans that nest cleanly under
        ``creator.pipeline``.
        """
        limit = ctx.benchmark_limit
        with obs.span("creator.pipeline", spec=ctx.spec.name) as pipeline:
            variants: list[KernelIR] = [KernelIR.from_spec(ctx.spec)]
            for p in self._passes:
                if not self.gate_for(p, ctx):
                    continue
                with obs.span(
                    f"pass:{p.name}",
                    metric="creator.pass.duration_ms",
                    variants_in=len(variants),
                ) as sp:
                    out = p.run(variants, ctx)
                    if not isinstance(out, list):  # defensive: plugin passes
                        out = list(out)
                    if limit is not None and len(out) > limit:
                        out = _evenly_subsample(out, limit)
                    sp.set(variants_out=len(out))
                    variants = out
            pipeline.set(variants=len(variants))
        yield from variants

    def _clamped_stage(
        self, p: Pass, upstream: Iterator[KernelIR], ctx: CreatorContext, limit: int
    ) -> Iterator[KernelIR]:
        variants = p.run(list(upstream), ctx)
        if not isinstance(variants, list):  # defensive: plugin passes
            variants = list(variants)
        if len(variants) > limit:
            variants = _evenly_subsample(variants, limit)
        yield from variants


def _evenly_subsample(variants: list[KernelIR], limit: int) -> list[KernelIR]:
    """Keep ``limit`` variants spread evenly across the list (deterministic)."""
    if limit >= len(variants):
        return list(variants)  # always a fresh list: callers may mutate
    step = len(variants) / limit
    return [variants[int(i * step)] for i in range(limit)]


def default_pass_pipeline() -> PassManager:
    """The nineteen-pass pipeline of section 3.2, in paper order."""
    # Imported here to avoid an import cycle (passes import Pass from us).
    from repro.creator.passes import all_default_passes

    return PassManager(all_default_passes())
