"""Ready-made plugin passes (the plugin system's standard library).

The paper's plugin mechanism (section 3.3) lets users add passes without
touching the tool; this module ships the passes our own studies needed,
usable directly::

    from repro.creator import MicroCreator
    from repro.creator.contrib import software_prefetch_plugin

    creator = MicroCreator(plugins=[software_prefetch_plugin(distance=8)])

or from a plugin file via the documented ``pluginInit`` protocol.
"""

from __future__ import annotations

import types

from repro.creator.ir import KernelIR
from repro.creator.pass_manager import CreatorContext, Pass
from repro.isa.instructions import Instruction
from repro.isa.operands import ImmediateOperand, MemoryOperand, RegisterOperand
from repro.isa.semantics import OpcodeKind


class SoftwarePrefetchPass(Pass):
    """Insert ``prefetcht0`` hints ahead of every pointer stream.

    For each pointer induction, one prefetch per loop iteration targeting
    ``distance`` iterations ahead — the classic software-pipelined
    prefetch that rescues strides the hardware prefetcher cannot follow
    (see the ``ablation_sw_prefetch`` exhibit).

    Runs after induction insertion so the per-loop step is known; the
    hint lands before the induction updates to keep the Fig. 8 layout.
    """

    name = "software_prefetch"

    def __init__(self, distance: int = 8, opcode: str = "prefetcht0") -> None:
        if distance < 1:
            raise ValueError(f"prefetch distance must be >= 1, got {distance}")
        self.distance = distance
        self.opcode = opcode

    def run(self, variants, ctx: CreatorContext):
        out = []
        for ir in variants:
            out.append(self._insert(ir))
        return out

    def _insert(self, ir: KernelIR) -> KernelIR:
        if ir.unroll is None or not ir.body:
            return ir
        # Per-register loop step, read off the materialized updates.
        steps: dict[str, int] = {}
        for instr in ir.body:
            if (
                instr.info.kind is OpcodeKind.INT_ALU
                and instr.opcode.rstrip("lq") in ("add", "sub")
                and len(instr.operands) == 2
                and isinstance(instr.operands[0], ImmediateOperand)
                and isinstance(instr.operands[1], RegisterOperand)
            ):
                sign = 1 if instr.opcode.startswith("add") else -1
                reg = str(instr.operands[1].reg)
                steps[reg] = steps.get(reg, 0) + sign * instr.operands[0].value
        # Pointer registers actually used by memory accesses.
        hints: list[Instruction] = []
        seen: set[str] = set()
        for instr in ir.body:
            for mem in instr.memory_operands:
                base = str(mem.base)
                step = steps.get(base, 0)
                if base in seen or step == 0:
                    continue
                seen.add(base)
                hints.append(
                    Instruction(
                        self.opcode,
                        (
                            MemoryOperand(
                                base=mem.base, offset=self.distance * step
                            ),
                        ),
                        comment=f"prefetch {self.distance} iterations ahead",
                    )
                )
        if not hints:
            return ir
        start = ir.metadata.get("_induction_start")
        body = list(ir.body)
        insert_at = start if isinstance(start, int) else len(body) - 1
        body[insert_at:insert_at] = hints
        new_start = (start + len(hints)) if isinstance(start, int) else None
        md: dict[str, object] = {"sw_prefetch": self.distance}
        if new_start is not None:
            md["_induction_start"] = new_start
        return ir.evolve(body=tuple(body)).noting(**md)


def software_prefetch_plugin(distance: int = 8) -> types.ModuleType:
    """A plugin module inserting :class:`SoftwarePrefetchPass`.

    Follows the paper's plugin protocol, so it can be passed to
    ``MicroCreator(plugins=[...])`` like any user plugin.
    """
    module = types.ModuleType(f"software_prefetch_plugin_d{distance}")

    def pluginInit(pm):
        pm.insert_pass_after(
            "branch_insertion", SoftwarePrefetchPass(distance=distance)
        )

    module.pluginInit = pluginInit
    return module
