"""Entry point for ``python -m repro.characterize``."""

from repro.characterize.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
