"""Probe-kernel generation for instruction characterization.

uops.info-style probing (PAPERS.md) over the modelled ISA: for every
opcode with a register form we synthesize three kinds of loop kernels —

- **latency** probes: ``K`` copies of the opcode chained through one
  accumulator register, so the loop-carried recurrence is ``K x latency``
  and dominates every other bound.  Sweeping ``K`` and taking the slope
  of cycles-per-iteration cancels the loop overhead exactly.
- **throughput** probes: ``K`` copies cycling through ``N_STREAM_DESTS``
  destination registers, each *written first* by an in-loop move so no
  dependence is carried across iterations; cycles-per-iteration grows
  with slope ``1 / port slots``.
- **contention** probes: ``K`` (opcode, blocker) pairs against one
  blocking opcode per port class.  If the two compete for the same port
  class the slope is the *sum* of their reciprocal throughputs; if not,
  it is the *max* — a separating hypothesis test the solver uses to
  recover the port class.

All probes use register operands only, so the single immediate-form ALU
instruction in the loop (``sub $1, %rdi``) stays the loop counter the
kernel model detects, and no memory streams exist to drag cache effects
into the measurement.

Probe identity is encoded in the *kernel name* (``charact__add__lat__k8``):
the launcher's input normalization drops ``AsmProgram.metadata``, but
names travel through the campaign engine into every ``Measurement``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.isa.instructions import AsmProgram, Instruction, LabelDef
from repro.isa.operands import (
    ImmediateOperand,
    LabelOperand,
    Operand,
    RegisterOperand,
)
from repro.isa.registers import GPR32_NAMES, GPR64_NAMES, GPR64_POOL, XMM_NAMES, PhysReg
from repro.isa.semantics import (
    MEMORY_ONLY_OPCODES,
    OpcodeKind,
    iter_opcodes,
    opcode_info,
    operand_regclass,
    register_operand_count,
)

#: Chain lengths swept per probe kind.  Two points per probe: the solved
#: quantity is always a slope, so the pair (and the exact intercept it
#: yields) is all the solver needs.
LATENCY_KS = (8, 16)
THROUGHPUT_KS = (8, 16)
CONTENTION_KS = (8, 16)

#: Destination registers a throughput/contention stream cycles through.
#: Four is deep enough that no modelled latency (max 5) can make the
#: within-iteration chain through one destination bind the loop.
N_STREAM_DESTS = 4

#: One blocking opcode per probed port class.  Contention against each
#: blocker classifies an opcode's port usage.
BLOCKERS: dict[str, str] = {
    "alu": "add",
    "fp_add": "addps",
    "fp_mul": "mulps",
}

#: The loop counter register (``sub $1, %rdi`` / ``jge``): excluded from
#: every probe register pool.
COUNTER_REG = "%rdi"
LOOP_LABEL = ".L0"

#: Register-to-register initialization move per register class.
_INIT_MOVE = {"gpr64": "mov", "gpr32": "movl", "xmm": "movaps"}

_GPR64_TO_32 = dict(zip(GPR64_NAMES, GPR32_NAMES))

#: Probe register pools per class.  The GPR pool is the allocator's
#: (no %rsp/%rbp frame registers, no %rax iteration counter) minus the
#: loop counter; the 32-bit pool aliases it name-for-name so canonical
#: dataflow is identical for ``l``-suffixed opcodes.
_G64 = tuple(r for r in GPR64_POOL if r != COUNTER_REG)
_POOLS: dict[str, tuple[str, ...]] = {
    "gpr64": _G64,
    "gpr32": tuple(_GPR64_TO_32[r] for r in _G64),
    "xmm": XMM_NAMES,
}

_NAME_RE = re.compile(
    r"^charact__(?P<opcode>[a-z0-9]+)__"
    r"(?P<kind>lat|tp|ct)(?:_(?P<blocker>[a-z0-9]+))?__k(?P<k>\d+)$"
)

_KIND_TOKEN = {"latency": "lat", "throughput": "tp", "contention": "ct"}
_TOKEN_KIND = {v: k for k, v in _KIND_TOKEN.items()}


@dataclass(frozen=True, slots=True)
class ProbeSpec:
    """One probe kernel: an opcode, a probe kind, and a chain length."""

    opcode: str
    kind: str  # "latency" | "throughput" | "contention"
    k: int
    blocker: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _KIND_TOKEN:
            raise ValueError(f"unknown probe kind {self.kind!r}")
        if (self.kind == "contention") != (self.blocker is not None):
            raise ValueError("contention probes (exactly) take a blocker")

    @property
    def name(self) -> str:
        token = _KIND_TOKEN[self.kind]
        if self.blocker is not None:
            token = f"{token}_{self.blocker}"
        return f"charact__{self.opcode}__{token}__k{self.k}"


def parse_probe_name(name: str) -> ProbeSpec | None:
    """Recover the :class:`ProbeSpec` encoded in a probe kernel name.

    Returns ``None`` for kernel names that are not characterization
    probes, so solvers can filter mixed campaigns.
    """
    match = _NAME_RE.match(name)
    if match is None:
        return None
    return ProbeSpec(
        opcode=match.group("opcode"),
        kind=_TOKEN_KIND[match.group("kind")],
        k=int(match.group("k")),
        blocker=match.group("blocker"),
    )


def probe_exclusion(opcode: str) -> str | None:
    """Why ``opcode`` cannot be probed, or ``None`` if it can.

    The reasons land verbatim in the instruction table so a reader can
    tell "unmeasurable" from "not yet measured".
    """
    info = opcode_info(opcode)
    if info.kind is OpcodeKind.BRANCH:
        return "control flow: would redirect the probe loop"
    if info.kind is OpcodeKind.PREFETCH:
        return "prefetch hint: memory operand only, no result to time"
    if info.kind is OpcodeKind.NOP:
        return "eliminated in the front end: no execution resources"
    if opcode in MEMORY_ONLY_OPCODES:
        return "no register-to-register form in the modelled ISA"
    if operand_regclass(opcode) is None:
        return "no register form to probe"
    return None


def _reg(name: str) -> RegisterOperand:
    return RegisterOperand(PhysReg(name))


def _op_instr(opcode: str, src: str, dst: str) -> Instruction:
    """The register form of ``opcode`` writing (or flag-testing) ``dst``."""
    operands: tuple[Operand, ...]
    if register_operand_count(opcode) == 1:
        operands = (_reg(dst),)
    else:
        operands = (_reg(src), _reg(dst))
    return Instruction(opcode, operands)


def _pool_half(opcode: str, *, blocker: bool) -> tuple[str, ...]:
    """Half of ``opcode``'s register pool: primary or blocker side.

    Contention probes draw the opcode under test from the primary half
    and the blocking opcode from the other, so their dataflow never
    overlaps even when both use the same register class.
    """
    pool = _POOLS[operand_regclass(opcode)]
    mid = len(pool) // 2
    return pool[mid:] if blocker else pool[:mid]


def is_chainable(opcode: str) -> bool:
    """True when a serial chain through one register is constructible.

    Decided from the instruction's own dataflow: the accumulator must be
    both read and written by ``op src, acc``.  Moves overwrite without
    reading and the ``cmp``/``test`` family reads without writing, so
    neither can carry a chain — their latency is unobservable here.
    """
    if probe_exclusion(opcode) is not None:
        return False
    half = _pool_half(opcode, blocker=False)
    instr = _op_instr(opcode, half[0], half[1])
    acc = PhysReg(half[1]).canonical64
    written = {r.canonical64 for r in instr.registers_written()}
    read = {r.canonical64 for r in instr.registers_read()}
    return acc in written and acc in read


def _loop(name: str, body: list[Instruction]) -> AsmProgram:
    items = [
        LabelDef(LOOP_LABEL),
        *body,
        Instruction("sub", (ImmediateOperand(1), _reg(COUNTER_REG))),
        Instruction("jge", (LabelOperand(LOOP_LABEL),)),
    ]
    return AsmProgram(name, items)


def _latency_body(opcode: str, k: int) -> list[Instruction]:
    half = _pool_half(opcode, blocker=False)
    src, acc = half[0], half[1]
    return [_op_instr(opcode, src, acc) for _ in range(k)]


def _stream_body(opcode: str, k: int, *, blocker: bool) -> list[Instruction]:
    """Inits + ``k`` independent copies cycling the destination registers."""
    half = _pool_half(opcode, blocker=blocker)
    src = half[0]
    dests = half[1 : 1 + N_STREAM_DESTS]
    init = _INIT_MOVE[operand_regclass(opcode)]
    body = [Instruction(init, (_reg(src), _reg(d))) for d in dests]
    body += [_op_instr(opcode, src, dests[i % len(dests)]) for i in range(k)]
    return body


def build_probe(spec: ProbeSpec) -> AsmProgram:
    """Materialize a probe kernel.  Deterministic: spec in, program out."""
    reason = probe_exclusion(spec.opcode)
    if reason is not None:
        raise ValueError(f"cannot probe {spec.opcode!r}: {reason}")
    if spec.kind == "latency":
        if not is_chainable(spec.opcode):
            raise ValueError(f"{spec.opcode!r} cannot carry a latency chain")
        return _loop(spec.name, _latency_body(spec.opcode, spec.k))
    if spec.kind == "throughput":
        return _loop(spec.name, _stream_body(spec.opcode, spec.k, blocker=False))
    # Contention: interleave the opcode's stream with the blocker's, one
    # pair per k, after both init groups.
    op_stream = _stream_body(spec.opcode, spec.k, blocker=False)
    blk_stream = _stream_body(spec.blocker, spec.k, blocker=True)
    inits = op_stream[:N_STREAM_DESTS] + blk_stream[:N_STREAM_DESTS]
    pairs: list[Instruction] = []
    for a, b in zip(op_stream[N_STREAM_DESTS:], blk_stream[N_STREAM_DESTS:]):
        pairs += [a, b]
    return _loop(spec.name, inits + pairs)


def probe_specs_for(opcode: str) -> tuple[ProbeSpec, ...]:
    """Every probe spec the driver runs for one opcode (possibly none)."""
    if probe_exclusion(opcode) is not None:
        return ()
    specs: list[ProbeSpec] = []
    if is_chainable(opcode):
        specs += [ProbeSpec(opcode, "latency", k) for k in LATENCY_KS]
    specs += [ProbeSpec(opcode, "throughput", k) for k in THROUGHPUT_KS]
    for port_class in sorted(BLOCKERS):
        blocker = BLOCKERS[port_class]
        specs += [
            ProbeSpec(opcode, "contention", k, blocker=blocker)
            for k in CONTENTION_KS
        ]
    return tuple(specs)


def all_probe_specs(opcodes: tuple[str, ...] | None = None) -> tuple[ProbeSpec, ...]:
    """The full probe plan, in deterministic (sorted-opcode) order."""
    if opcodes is None:
        names = tuple(info.name for info in iter_opcodes())
    else:
        names = tuple(opcodes)
    specs: list[ProbeSpec] = []
    for name in names:
        specs += probe_specs_for(name)
    return tuple(specs)


def probeable_opcodes() -> tuple[str, ...]:
    """Opcodes the characterization driver can probe, sorted."""
    return tuple(
        info.name for info in iter_opcodes() if probe_exclusion(info.name) is None
    )
