"""The machine-readable instruction table (`repro-itable-v1`).

One :class:`InstructionTable` is the output of a characterization
campaign: per opcode, the solved latency, reciprocal throughput, port
class and the raw probe readings the numbers came from.  Tables are
JSON with sorted keys and no timestamps, so the same campaign always
produces byte-identical bytes — the determinism contract the engine
gives measurements extends to the table itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

SCHEMA = "repro-itable-v1"


class TableFormatError(ValueError):
    """An instruction-table file is malformed."""


@dataclass(frozen=True, slots=True)
class ProbeReading:
    """One solved probe measurement: the (k, cycles/iteration) point."""

    kind: str
    k: int
    cpi: float
    blocker: str | None = None
    rciw: float | None = None
    converged: bool | None = None
    experiments: int | None = None

    def to_dict(self) -> dict:
        data: dict[str, object] = {"kind": self.kind, "k": self.k, "cpi": self.cpi}
        if self.blocker is not None:
            data["blocker"] = self.blocker
        if self.rciw is not None:
            data["rciw"] = self.rciw
        if self.converged is not None:
            data["converged"] = self.converged
        if self.experiments is not None:
            data["experiments"] = self.experiments
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ProbeReading":
        return cls(
            kind=data["kind"],
            k=data["k"],
            cpi=data["cpi"],
            blocker=data.get("blocker"),
            rciw=data.get("rciw"),
            converged=data.get("converged"),
            experiments=data.get("experiments"),
        )


@dataclass(frozen=True, slots=True)
class OpcodeEntry:
    """Everything the characterization learned about one opcode."""

    opcode: str
    kind: str
    probed: bool
    reason: str | None = None
    regclass: str | None = None
    #: Integer latency from the chain-slope; None when no chain exists
    #: (moves, flag-setters) or the opcode was not probed.
    latency_cycles: int | None = None
    latency_estimate: float | None = None
    #: Cycles per instruction at full overlap (slope of the stream probe).
    reciprocal_throughput: float | None = None
    #: Port slots implied by the throughput (``round(1/rtp)``).
    slots: int | None = None
    #: Port class recovered from the contention hypothesis test; None
    #: when no blocker produced a same-port verdict.
    port_class: str | None = None
    #: Measured contention slope per blocking opcode.
    contention: dict[str, float] = field(default_factory=dict)
    readings: tuple[ProbeReading, ...] = ()

    def to_dict(self) -> dict:
        return {
            "opcode": self.opcode,
            "kind": self.kind,
            "probed": self.probed,
            "reason": self.reason,
            "regclass": self.regclass,
            "latency_cycles": self.latency_cycles,
            "latency_estimate": self.latency_estimate,
            "reciprocal_throughput": self.reciprocal_throughput,
            "slots": self.slots,
            "port_class": self.port_class,
            "contention": dict(sorted(self.contention.items())),
            "readings": [r.to_dict() for r in self.readings],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OpcodeEntry":
        return cls(
            opcode=data["opcode"],
            kind=data["kind"],
            probed=data["probed"],
            reason=data.get("reason"),
            regclass=data.get("regclass"),
            latency_cycles=data.get("latency_cycles"),
            latency_estimate=data.get("latency_estimate"),
            reciprocal_throughput=data.get("reciprocal_throughput"),
            slots=data.get("slots"),
            port_class=data.get("port_class"),
            contention=dict(data.get("contention", {})),
            readings=tuple(
                ProbeReading.from_dict(r) for r in data.get("readings", ())
            ),
        )


@dataclass(frozen=True, slots=True)
class InstructionTable:
    """A solved characterization run over one machine."""

    machine: str
    machine_digest: str
    issue_width: int
    branch_cost: float
    rciw_target: float
    noise_seed: int
    trip_count: int
    entries: dict[str, OpcodeEntry]
    schema: str = SCHEMA

    def probed_entries(self) -> tuple[OpcodeEntry, ...]:
        return tuple(
            self.entries[name] for name in sorted(self.entries)
            if self.entries[name].probed
        )

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "machine": self.machine,
            "machine_digest": self.machine_digest,
            "issue_width": self.issue_width,
            "branch_cost": self.branch_cost,
            "rciw_target": self.rciw_target,
            "noise_seed": self.noise_seed,
            "trip_count": self.trip_count,
            "entries": {
                name: entry.to_dict() for name, entry in sorted(self.entries.items())
            },
        }

    def to_json(self) -> str:
        """Canonical bytes: sorted keys, two-space indent, no timestamps."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def from_dict(cls, data: dict) -> "InstructionTable":
        if not isinstance(data, dict):
            raise TableFormatError(
                f"instruction table must be a JSON object, got {type(data).__name__}"
            )
        schema = data.get("schema")
        if schema != SCHEMA:
            raise TableFormatError(
                f"unsupported instruction-table schema {schema!r} "
                f"(expected {SCHEMA!r})"
            )
        try:
            return cls(
                machine=data["machine"],
                machine_digest=data["machine_digest"],
                issue_width=data["issue_width"],
                branch_cost=data["branch_cost"],
                rciw_target=data["rciw_target"],
                noise_seed=data["noise_seed"],
                trip_count=data["trip_count"],
                entries={
                    name: OpcodeEntry.from_dict(entry)
                    for name, entry in data["entries"].items()
                },
            )
        except KeyError as exc:
            raise TableFormatError(f"instruction table is missing {exc}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "InstructionTable":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise TableFormatError(f"no instruction table at {path}") from None
        except json.JSONDecodeError as exc:
            raise TableFormatError(f"{path} is not valid JSON: {exc}") from exc
        return cls.from_dict(data)
