"""Round-trip verification of a solved instruction table.

The self-consistency loop the ROADMAP asks for: rebuild every probe
kernel deterministically from its table reading, re-predict its
cycles-per-iteration *analytically* through
:func:`repro.machine.pipeline.estimate_iteration_time` on the config
derived from the table, and assert the prediction agrees with the
measurement within the campaign's RCIW target.  A solver bug, a probe
whose dependence structure is not what the generator claims, or a
derivation that loses information all break the agreement — which is
exactly what makes this a standing correctness harness for
``repro.machine``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import MachineConfig
from repro.machine.kernel_model import analyze_kernel
from repro.machine.pipeline import estimate_iteration_time

from repro.characterize.derive import derive_machine_config
from repro.characterize.probes import ProbeSpec, build_probe
from repro.characterize.table import InstructionTable
from repro.isa.semantics import OpcodeKind, opcode_info

#: Port classes the probes can elect (see ``derive_ports``).
PROBED_PORT_CLASSES = frozenset({"alu", "fp_add", "fp_mul"})


@dataclass(frozen=True, slots=True)
class ProbeCheck:
    """One probe's measured-vs-repredicted comparison."""

    name: str
    opcode: str
    kind: str
    k: int
    blocker: str | None
    measured: float
    predicted: float
    rel_err: float
    ok: bool


@dataclass(frozen=True, slots=True)
class VerifyReport:
    """The round-trip verdict for one table."""

    machine: str
    tolerance: float
    checks: tuple[ProbeCheck, ...]
    overlay: dict

    @property
    def n_checked(self) -> int:
        return len(self.checks)

    @property
    def failed(self) -> tuple[ProbeCheck, ...]:
        return tuple(c for c in self.checks if not c.ok)

    @property
    def max_rel_err(self) -> float:
        return max((c.rel_err for c in self.checks), default=0.0)

    @property
    def ok(self) -> bool:
        return bool(self.checks) and not self.failed

    def render(self) -> str:
        lines = [
            f"round-trip: {self.n_checked} probes on {self.machine}, "
            f"tolerance {self.tolerance:.4f}, "
            f"max relative error {self.max_rel_err:.5f}",
        ]
        for check in self.failed:
            lines.append(
                f"  FAIL {check.name}: measured {check.measured:.4f} vs "
                f"predicted {check.predicted:.4f} "
                f"(rel err {check.rel_err:.5f})"
            )
        lines.append("round-trip: " + ("OK" if self.ok else "FAILED"))
        return "\n".join(lines)


def predicted_probe_cpi(spec: ProbeSpec, machine: MachineConfig) -> float:
    """Analytic cycles-per-iteration for one probe on ``machine``.

    Probes have no memory streams, so the core-domain cycles *are* the
    measured tsc-cycles metric (core and tsc clocks coincide at the
    preset's nominal frequency).
    """
    program = build_probe(spec)
    _, body = program.kernel_loop()
    analysis = analyze_kernel(body)
    if analysis.streams:
        raise ValueError(f"probe {spec.name} unexpectedly touches memory")
    breakdown = estimate_iteration_time(analysis, {}, machine)
    return breakdown.core_cycles


def verify_table(
    table: InstructionTable,
    base: MachineConfig,
    *,
    tolerance: float | None = None,
) -> VerifyReport:
    """Re-predict every probe reading on the table-derived config.

    ``tolerance`` defaults to the table's RCIW target: the measurement
    is only trusted to that relative width, so that is what the model
    must hit.
    """
    derived, overlay = derive_machine_config(table, base)
    if tolerance is None:
        tolerance = table.rciw_target
    checks: list[ProbeCheck] = []
    for entry in table.probed_entries():
        for reading in entry.readings:
            spec = ProbeSpec(
                opcode=entry.opcode,
                kind=reading.kind,
                k=reading.k,
                blocker=reading.blocker,
            )
            predicted = predicted_probe_cpi(spec, derived)
            rel_err = abs(reading.cpi - predicted) / predicted
            checks.append(
                ProbeCheck(
                    name=spec.name,
                    opcode=entry.opcode,
                    kind=reading.kind,
                    k=reading.k,
                    blocker=reading.blocker,
                    measured=reading.cpi,
                    predicted=predicted,
                    rel_err=rel_err,
                    ok=rel_err <= tolerance,
                )
            )
    return VerifyReport(
        machine=derived.name,
        tolerance=tolerance,
        checks=tuple(checks),
        overlay=overlay,
    )


def expected_port_class(opcode: str) -> str | None:
    """The port class the semantics table says ``opcode`` should elect.

    Register-to-register moves execute on the ALU ports in the machine
    model; other opcodes use their declared port when it is one the
    probes can reach.
    """
    info = opcode_info(opcode)
    if info.kind is OpcodeKind.MOVE:
        return "alu"
    if info.ports and info.ports[0] in PROBED_PORT_CLASSES:
        return info.ports[0]
    return None


def table_drift(table: InstructionTable, base: MachineConfig) -> list[str]:
    """Human-readable differences between the table and the modelled ISA.

    Empty when characterization recovered exactly what the semantics
    table and the base config encode — the expected outcome on a
    simulated machine.  On a real target this is the interesting output:
    where the hardware disagrees with the model.
    """
    drift: list[str] = []
    for entry in table.probed_entries():
        info = opcode_info(entry.opcode)
        if entry.latency_cycles is not None and entry.latency_cycles != info.latency:
            drift.append(
                f"{entry.opcode}: latency {entry.latency_cycles} "
                f"(model says {info.latency})"
            )
        expected = expected_port_class(entry.opcode)
        if entry.port_class != expected:
            drift.append(
                f"{entry.opcode}: port class {entry.port_class} "
                f"(model says {expected})"
            )
        elif expected is not None:
            base_slots = round(base.ports.get(expected, 1.0))
            if entry.slots != base_slots:
                drift.append(
                    f"{entry.opcode}: {entry.slots} slots on {expected} "
                    f"(base config has {base_slots})"
                )
    # The branch cost is an intercept, not a slope: the measurement's
    # small systematic bias lands on it scaled by the probe's total
    # cycles, so drift means more than a few percent.
    if abs(table.branch_cost - base.branch_cost) > 0.05 * base.branch_cost:
        drift.append(
            f"branch_cost {table.branch_cost:.4f} "
            f"(base config has {base.branch_cost})"
        )
    return drift
