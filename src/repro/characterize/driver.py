"""Characterization campaigns: probe plan -> campaign engine -> table.

The driver is a thin composition layer: it turns the probe plan from
:mod:`repro.characterize.probes` into one :class:`~repro.engine.Campaign`
and reuses the engine end to end — sharded result store, resume,
parallel dispatch and per-job derived noise seeds all behave exactly as
for any other campaign, which is what makes characterization runs
resumable and byte-identical across ``--jobs`` values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Campaign, CampaignRun, SweepSpec, machine_digest, run_campaign
from repro.launcher import LauncherOptions
from repro.launcher.stopping import probe_stopping_defaults
from repro.machine.config import MachineConfig

from repro.characterize.probes import all_probe_specs, build_probe
from repro.characterize.solve import solve_table
from repro.characterize.table import InstructionTable

#: Probe kernels have no memory streams, so a short trip count loses no
#: signal; it keeps the full-ISA campaign cheap enough for CI.
PROBE_TRIP_COUNT = 1024


@dataclass(frozen=True, slots=True)
class CharacterizationResult:
    """A finished characterization: the solved table plus the raw run."""

    table: InstructionTable
    run: CampaignRun


def characterization_options(
    *,
    trip_count: int = PROBE_TRIP_COUNT,
    noise_seed: int | None = None,
    rciw_target: float | None = None,
    max_experiments: int | None = None,
) -> LauncherOptions:
    """Launcher options for probe jobs: always adaptive.

    Unset knobs take the probe defaults from
    :func:`repro.launcher.stopping.probe_stopping_defaults`, not the
    fixed-count launcher defaults — a probe campaign's cost scales with
    the number of opcodes, so every job stops as soon as its relative
    confidence interval is tight enough.
    """
    stopping = probe_stopping_defaults(
        rciw_target=rciw_target, max_experiments=max_experiments
    )
    extra: dict[str, object] = {}
    if noise_seed is not None:
        extra["noise_seed"] = noise_seed
    return LauncherOptions(trip_count=trip_count, **stopping, **extra)


def characterization_campaign(
    machine: MachineConfig,
    *,
    opcodes: tuple[str, ...] | None = None,
    options: LauncherOptions | None = None,
) -> Campaign:
    """The probe campaign for ``machine`` (optionally a subset of opcodes)."""
    if options is None:
        options = characterization_options()
    specs = all_probe_specs(opcodes)
    kernels = tuple(build_probe(spec) for spec in specs)
    return Campaign(
        name=f"characterize-{machine.name}",
        machine=machine,
        sweeps=(
            SweepSpec(kernels=kernels, base=options, tags={"charact": "probe"}),
        ),
    )


def run_characterization(
    machine: MachineConfig,
    *,
    opcodes: tuple[str, ...] | None = None,
    options: LauncherOptions | None = None,
    jobs: int = 1,
    chunk_size: int | None = None,
    chunk_policy: str = "auto",
    chunk_target_ms: float | None = None,
    cache_dir: str | None = None,
    resume: bool = True,
    store_format: str = "sharded",
    max_retries: int = 2,
    job_timeout: float | None = None,
    progress=None,
) -> CharacterizationResult:
    """Probe ``machine`` and solve the measurements into a table.

    Raises
    ------
    ValueError
        If quarantined jobs leave an opcode's probe pair incomplete —
        a degraded run cannot be solved into a trustworthy table (the
        CampaignRun's failures are listed in the message).
    """
    if options is None:
        options = characterization_options()
    campaign = characterization_campaign(machine, opcodes=opcodes, options=options)
    run = run_campaign(
        campaign,
        jobs=jobs,
        chunk_size=chunk_size,
        chunk_policy=chunk_policy,
        chunk_target_ms=chunk_target_ms,
        cache_dir=cache_dir,
        resume=resume,
        store_format=store_format,
        max_retries=max_retries,
        job_timeout=job_timeout,
        progress=progress,
    )
    if run.failures:
        failed = ", ".join(f.kernel for f in run.failures)
        raise ValueError(
            f"characterization degraded: {len(run.failures)} probe job(s) "
            f"quarantined ({failed}); cannot solve a partial table"
        )
    table = solve_table(
        run.measurements(),
        machine=machine,
        machine_digest=machine_digest(machine),
        rciw_target=options.rciw_target,
        noise_seed=options.noise_seed,
        trip_count=options.trip_count,
    )
    return CharacterizationResult(table=table, run=run)
