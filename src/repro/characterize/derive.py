"""Deriving a machine-config overlay from a solved instruction table.

The round-trip's feedback edge: the table's per-opcode slots votes
elect the port widths, the latency-probe intercepts elected the branch
cost, and both land in a :class:`MachineConfig` overlay that
:func:`repro.machine.serialize.apply_machine_overlay` can stack on any
base config (and ``microlauncher --machine-overlay`` can apply from the
command line).
"""

from __future__ import annotations

import statistics
from collections import defaultdict

from repro.machine.config import MachineConfig
from repro.machine.serialize import apply_machine_overlay, machine_overlay

from repro.characterize.table import InstructionTable


def derive_ports(table: InstructionTable, base: MachineConfig) -> dict[str, float]:
    """Port widths implied by the table, on top of the base config.

    Each probed opcode votes its ``slots`` for its classified port
    class; the median wins.  Classes the probes cannot reach (``load``,
    ``store``, ``branch`` — they need memory or control flow) keep the
    base width.
    """
    ports = dict(base.ports)
    votes: dict[str, list[int]] = defaultdict(list)
    for entry in table.probed_entries():
        if entry.port_class is not None and entry.slots is not None:
            votes[entry.port_class].append(entry.slots)
    for port_class, slot_votes in votes.items():
        ports[port_class] = float(statistics.median(slot_votes))
    return ports


def derive_machine_config(
    table: InstructionTable, base: MachineConfig
) -> tuple[MachineConfig, dict]:
    """(derived config, minimal overlay) from a table and its base.

    The overlay holds exactly the fields on which the derived config
    differs from ``base`` (via :func:`machine_overlay`), so applying it
    back to ``base`` reproduces the derived config field-for-field.
    """
    derived = apply_machine_overlay(
        base,
        {
            "name": f"{base.name}+itable",
            "ports": derive_ports(table, base),
            "branch_cost": table.branch_cost,
        },
    )
    return derived, machine_overlay(base, derived)
