"""The ``python -m repro.characterize`` command-line tool.

Three subcommands around one pipeline::

    python -m repro.characterize run --table itable.json --overlay ov.json
    python -m repro.characterize verify [--table itable.json]
    python -m repro.characterize diff [--table itable.json]

``run`` probes the machine and writes the solved instruction table (and
optionally the derived machine-config overlay, which ``microlauncher
--machine-overlay`` can apply).  ``verify`` re-predicts every probe
analytically on the derived config and exits non-zero if any lands
outside the tolerance; without ``--table`` it characterizes in memory
first, so a bare ``verify`` is a self-contained round-trip check.
``diff`` reports where the solved table disagrees with the modelled
semantics — empty on a simulated machine, the interesting output on a
real one.

Campaigns run through the engine, so ``--jobs``, ``--cache-dir``,
``--resume`` and ``--store-format`` behave exactly as in the other CLIs;
the solved table is byte-identical for every worker count and across a
kill/resume.
"""

from __future__ import annotations

import argparse
import sys

from repro.machine import PRESETS, preset
from repro.machine.serialize import MachineFileError, load_machine, save_overlay

from repro.characterize.driver import run_characterization
from repro.characterize.table import InstructionTable, TableFormatError
from repro.characterize.verify import table_drift, verify_table

PROG = "repro.characterize"


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        choices=sorted(PRESETS),
        default="nehalem-2s",
        help="machine preset to characterize (default: nehalem-2s)",
    )
    parser.add_argument(
        "--machine-file",
        metavar="JSON",
        default=None,
        help="custom machine description (overrides --machine)",
    )


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--opcodes",
        metavar="OP[,OP...]",
        default=None,
        help="probe only these opcodes (default: the full ISA)",
    )
    parser.add_argument(
        "--trip", type=int, default=None, metavar="N", help="probe trip count"
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S", help="campaign noise seed"
    )
    parser.add_argument(
        "--rciw-target",
        type=float,
        default=None,
        metavar="W",
        help="adaptive stopping target per probe (default: 0.01)",
    )
    parser.add_argument(
        "--max-experiments",
        type=int,
        default=None,
        metavar="N",
        help="adaptive cap per probe configuration (default: 32)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes"
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="K",
        help="jobs per worker batch (default: auto)",
    )
    parser.add_argument(
        "--chunk-policy",
        choices=("auto", "static", "dynamic"),
        default="auto",
        help="chunk sizing: 'dynamic' re-sizes from measured per-job "
        "durations; 'static' uses fixed --chunk-size batches",
    )
    parser.add_argument(
        "--chunk-target-ms", type=float, default=None, metavar="MS",
        help="wall-time each dynamic chunk aims for (default: 250)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="cache probe measurements by content hash (resumable)",
    )
    parser.add_argument(
        "--resume",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="reuse cached results (--no-resume re-measures)",
    )
    parser.add_argument(
        "--store-format",
        choices=("jsonl", "sharded"),
        default="sharded",
        help="cache layout (default: sharded)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="retries before a probe job is quarantined",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per probe job",
    )
    parser.add_argument(
        "--progress", action="store_true", help="print campaign progress"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Characterize the simulated ISA: probe per-opcode "
        "latency/throughput/ports, solve an instruction table, and verify "
        "it round-trips through the analytic model.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="probe the machine and write the table")
    _add_machine_args(run)
    _add_campaign_args(run)
    run.add_argument(
        "--table", metavar="JSON", default="itable.json",
        help="write the solved instruction table here (default: itable.json)",
    )
    run.add_argument(
        "--overlay", metavar="JSON", default=None,
        help="also write the derived machine-config overlay "
        "(apply with microlauncher --machine-overlay)",
    )

    verify = sub.add_parser(
        "verify", help="re-predict every probe on the derived config"
    )
    _add_machine_args(verify)
    _add_campaign_args(verify)
    verify.add_argument(
        "--table", metavar="JSON", default=None,
        help="verify this table (default: characterize in memory first)",
    )
    verify.add_argument(
        "--tolerance", type=float, default=None, metavar="T",
        help="relative error bound (default: the table's RCIW target)",
    )

    diff = sub.add_parser(
        "diff", help="report where the table disagrees with the modelled ISA"
    )
    _add_machine_args(diff)
    _add_campaign_args(diff)
    diff.add_argument(
        "--table", metavar="JSON", default=None,
        help="diff this table (default: characterize in memory first)",
    )

    return parser


def _machine_for(args):
    if args.machine_file is not None:
        return load_machine(args.machine_file)
    return preset(args.machine)


def _characterize(args, machine):
    from repro.characterize.driver import characterization_options

    opcodes = None
    if args.opcodes:
        opcodes = tuple(name.strip() for name in args.opcodes.split(",") if name.strip())
    kwargs = {}
    if args.trip is not None:
        kwargs["trip_count"] = args.trip
    if args.seed is not None:
        kwargs["noise_seed"] = args.seed
    options = characterization_options(
        rciw_target=args.rciw_target,
        max_experiments=args.max_experiments,
        **kwargs,
    )
    return run_characterization(
        machine,
        opcodes=opcodes,
        options=options,
        jobs=args.jobs,
        chunk_size=args.chunk_size,
        chunk_policy=args.chunk_policy,
        chunk_target_ms=args.chunk_target_ms,
        cache_dir=args.cache_dir,
        resume=args.resume,
        store_format=args.store_format,
        max_retries=args.max_retries,
        job_timeout=args.job_timeout,
        progress=print if args.progress else None,
    )


def _table_for(args, machine) -> InstructionTable:
    if args.table is not None:
        return InstructionTable.load(args.table)
    return _characterize(args, machine).table


def _cmd_run(args) -> int:
    machine = _machine_for(args)
    result = _characterize(args, machine)
    table = result.table
    path = table.save(args.table)
    probed = table.probed_entries()
    print(
        f"characterized {len(probed)} of {len(table.entries)} opcodes on "
        f"{machine.name} ({result.run.stats.executed} jobs executed, "
        f"{result.run.stats.cache_hits} cached)"
    )
    print(f"wrote {path}")
    if args.overlay is not None:
        from repro.characterize.derive import derive_machine_config

        _, overlay = derive_machine_config(table, machine)
        print(f"wrote {save_overlay(overlay, args.overlay)}")
    return 0


def _cmd_verify(args) -> int:
    machine = _machine_for(args)
    table = _table_for(args, machine)
    report = verify_table(table, machine, tolerance=args.tolerance)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_diff(args) -> int:
    machine = _machine_for(args)
    table = _table_for(args, machine)
    drift = table_drift(table, machine)
    if not drift:
        print(f"no drift: {table.machine} matches the modelled semantics")
        return 0
    for line in drift:
        print(line)
    print(f"{len(drift)} difference(s) from the modelled semantics")
    return 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {"run": _cmd_run, "verify": _cmd_verify, "diff": _cmd_diff}[args.command]
    try:
        return handler(args)
    except (MachineFileError, TableFormatError) as exc:
        print(f"{PROG}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Degraded campaigns (quarantined probe jobs) and solver failures.
        print(f"{PROG}: {exc}", file=sys.stderr)
        return 3
