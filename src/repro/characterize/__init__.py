"""Instruction characterization: uops.info-mode probing of the modelled ISA.

The subsystem closes a loop the figure-reproduction tests cannot: it
*generates* probe kernels for every opcode (serial chains for latency,
independent streams for throughput, blocking mixes for port contention),
*measures* them through the campaign engine, *solves* the measurements
into a machine-readable :class:`InstructionTable`
(schema ``repro-itable-v1``), *derives* a machine-config overlay from
the table, and *verifies* that re-predicting every probe analytically on
the derived config lands within the measurement's RCIW target.

Use it as a library::

    from repro.characterize import run_characterization, verify_table
    from repro.machine import preset

    machine = preset("nehalem-2s")
    result = run_characterization(machine, jobs=4)
    report = verify_table(result.table, machine)
    assert report.ok

or from the command line::

    python -m repro.characterize run --table itable.json --overlay ports.json
    python -m repro.characterize verify
    python -m repro.characterize diff --table itable.json
"""

from repro.characterize.derive import derive_machine_config, derive_ports
from repro.characterize.driver import (
    PROBE_TRIP_COUNT,
    CharacterizationResult,
    characterization_campaign,
    characterization_options,
    run_characterization,
)
from repro.characterize.probes import (
    BLOCKERS,
    CONTENTION_KS,
    LATENCY_KS,
    N_STREAM_DESTS,
    THROUGHPUT_KS,
    ProbeSpec,
    all_probe_specs,
    build_probe,
    is_chainable,
    parse_probe_name,
    probe_exclusion,
    probe_specs_for,
    probeable_opcodes,
)
from repro.characterize.solve import (
    SolveError,
    readings_from_measurements,
    solve_table,
)
from repro.characterize.table import (
    SCHEMA,
    InstructionTable,
    OpcodeEntry,
    ProbeReading,
    TableFormatError,
)
from repro.characterize.verify import (
    ProbeCheck,
    VerifyReport,
    expected_port_class,
    predicted_probe_cpi,
    table_drift,
    verify_table,
)

__all__ = [
    "BLOCKERS",
    "CONTENTION_KS",
    "CharacterizationResult",
    "InstructionTable",
    "LATENCY_KS",
    "N_STREAM_DESTS",
    "OpcodeEntry",
    "PROBE_TRIP_COUNT",
    "ProbeCheck",
    "ProbeReading",
    "ProbeSpec",
    "SCHEMA",
    "SolveError",
    "THROUGHPUT_KS",
    "TableFormatError",
    "VerifyReport",
    "all_probe_specs",
    "build_probe",
    "characterization_campaign",
    "characterization_options",
    "derive_machine_config",
    "derive_ports",
    "expected_port_class",
    "is_chainable",
    "parse_probe_name",
    "predicted_probe_cpi",
    "probe_exclusion",
    "probe_specs_for",
    "probeable_opcodes",
    "readings_from_measurements",
    "run_characterization",
    "solve_table",
    "table_drift",
    "verify_table",
]
