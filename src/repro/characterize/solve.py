"""Solving probe measurements into an instruction table.

Every solved quantity is a *slope* across the probe's two chain lengths,
so the loop overhead (counter update, taken branch) cancels exactly:

- latency probe: ``cpi(K) = K * L + overhead`` -> ``L`` is the slope,
  and the intercept at the rounded ``L`` recovers the branch cost;
- throughput probe: ``cpi(K) = (K + c) / slots + overhead`` -> the
  slope is the reciprocal throughput ``1 / slots``;
- contention probe against blocker ``b``: the slope is
  ``rtp_op + rtp_b`` when both compete for the same port class but only
  ``max(rtp_op, rtp_b, 2 / issue_width)`` when they do not — the solver
  classifies each opcode's port by which hypothesis sits closer to the
  measured slope.

The classification needs ``issue_width`` as an input (when ports never
bind, the front end does — its width is not identifiable from these
probes), which is why the table records the width it was solved under.
"""

from __future__ import annotations

import statistics
from collections import defaultdict

from repro.machine.config import MachineConfig

from repro.characterize.probes import (
    BLOCKERS,
    is_chainable,
    parse_probe_name,
    probe_exclusion,
    probeable_opcodes,
)
from repro.characterize.table import InstructionTable, OpcodeEntry, ProbeReading
from repro.isa.semantics import iter_opcodes, operand_regclass


class SolveError(ValueError):
    """The measurement set cannot be solved into a table."""


def readings_from_measurements(measurements) -> dict[str, list[ProbeReading]]:
    """Group probe measurements by opcode, ignoring non-probe kernels.

    Probe identity travels in the kernel name (``charact__add__lat__k8``)
    because the launcher drops program metadata during normalization.
    """
    readings: dict[str, list[ProbeReading]] = defaultdict(list)
    for m in measurements:
        spec = parse_probe_name(m.kernel_name)
        if spec is None:
            continue
        readings[spec.opcode].append(
            ProbeReading(
                kind=spec.kind,
                k=spec.k,
                cpi=m.cycles_per_iteration,
                blocker=spec.blocker,
                rciw=m.rciw,
                converged=m.converged,
                experiments=m.experiments_spent,
            )
        )
    return dict(readings)


def _slope(points: list[ProbeReading], what: str, opcode: str) -> tuple[float, ProbeReading]:
    """Slope of cpi over k, plus the first point (for intercepts)."""
    if len(points) < 2:
        raise SolveError(
            f"{opcode}: need at least two {what} probe points, got {len(points)}"
        )
    points = sorted(points, key=lambda r: r.k)
    first, last = points[0], points[-1]
    if first.k == last.k:
        raise SolveError(f"{opcode}: duplicate {what} probe k={first.k}")
    return (last.cpi - first.cpi) / (last.k - first.k), first


def solve_table(
    measurements,
    *,
    machine: MachineConfig,
    machine_digest: str,
    rciw_target: float,
    noise_seed: int,
    trip_count: int,
) -> InstructionTable:
    """Solve a probe campaign's measurements into an instruction table.

    Opcodes without any readings appear as unprobed entries carrying
    their exclusion reason (or ``"not measured"`` for probe-able opcodes
    the caller chose to skip), so a table always covers the full ISA.
    """
    readings = readings_from_measurements(measurements)
    blocker_class = {opcode: port for port, opcode in BLOCKERS.items()}

    # Pass 1: slopes per opcode.
    latency_est: dict[str, float] = {}
    latency_int: dict[str, int] = {}
    rtp: dict[str, float] = {}
    slots: dict[str, int] = {}
    contention: dict[str, dict[str, float]] = {}
    intercepts: list[float] = []
    for opcode, points in readings.items():
        tp_points = [r for r in points if r.kind == "throughput"]
        slope, _ = _slope(tp_points, "throughput", opcode)
        if slope <= 0:
            raise SolveError(f"{opcode}: non-positive throughput slope {slope}")
        rtp[opcode] = slope
        slots[opcode] = max(1, round(1.0 / slope))

        lat_points = [r for r in points if r.kind == "latency"]
        if lat_points:
            est, first = _slope(lat_points, "latency", opcode)
            latency_est[opcode] = est
            latency_int[opcode] = max(0, round(est))
            intercepts.append(first.cpi - first.k * latency_int[opcode])

        ct: dict[str, float] = {}
        by_blocker: dict[str, list[ProbeReading]] = defaultdict(list)
        for r in points:
            if r.kind == "contention":
                by_blocker[r.blocker].append(r)
        for blocker, pts in by_blocker.items():
            ct[blocker], _ = _slope(pts, f"contention-vs-{blocker}", opcode)
        contention[opcode] = ct

    # Pass 2: port classification (needs every blocker's own throughput).
    port_class: dict[str, str | None] = {}
    frontend_slope = 2.0 / machine.issue_width
    for opcode, ct in contention.items():
        best: tuple[float, str] | None = None
        for blocker, measured in ct.items():
            if blocker not in slots:
                raise SolveError(
                    f"{opcode}: blocker {blocker!r} has no throughput probe "
                    "in this measurement set"
                )
            rtp_op = 1.0 / slots[opcode]
            rtp_blk = 1.0 / slots[blocker]
            same = rtp_op + rtp_blk
            diff = max(rtp_op, rtp_blk, frontend_slope)
            if abs(measured - same) < abs(measured - diff):
                residual = abs(measured - same)
                if best is None or residual < best[0]:
                    best = (residual, blocker_class[blocker])
        port_class[opcode] = best[1] if best is not None else None

    branch_cost = statistics.median(intercepts) if intercepts else machine.branch_cost

    probeable = set(probeable_opcodes())
    entries: dict[str, OpcodeEntry] = {}
    for info in iter_opcodes():
        name = info.name
        if name in readings:
            entries[name] = OpcodeEntry(
                opcode=name,
                kind=info.kind.value,
                probed=True,
                regclass=operand_regclass(name),
                latency_cycles=latency_int.get(name),
                latency_estimate=latency_est.get(name),
                reciprocal_throughput=rtp[name],
                slots=slots[name],
                port_class=port_class[name],
                contention=contention[name],
                readings=tuple(
                    sorted(
                        readings[name],
                        key=lambda r: (r.kind, r.blocker or "", r.k),
                    )
                ),
            )
        else:
            reason = probe_exclusion(name)
            if reason is None:
                reason = "not measured" if name in probeable else None
            entries[name] = OpcodeEntry(
                opcode=name,
                kind=info.kind.value,
                probed=False,
                reason=reason,
                regclass=operand_regclass(name),
            )
    # Consistency: chainable opcodes that were measured must have produced
    # latency readings (the driver always pairs them).
    for name, entry in entries.items():
        if entry.probed and is_chainable(name) and entry.latency_cycles is None:
            raise SolveError(f"{name}: chainable opcode has no latency probes")

    return InstructionTable(
        machine=machine.name,
        machine_digest=machine_digest,
        issue_width=machine.issue_width,
        branch_cost=branch_cost,
        rciw_target=rciw_target,
        noise_seed=noise_seed,
        trip_count=trip_count,
        entries=entries,
    )
