"""Setup shim so `pip install -e . --no-use-pep517` works offline.

The environment has no `wheel` package, which PEP-517 editable installs
require; the legacy `setup.py develop` path does not.  All metadata lives
in pyproject.toml.
"""

from setuptools import setup

setup()
