"""CLI tests for ``python -m repro.characterize`` and the overlay flags."""

from __future__ import annotations

import json

import pytest

from repro.characterize.cli import main

#: A fast class-covering subset for CLI-level runs.
SUBSET = "add,addps,mulps,mov,imul"


class TestRun:
    def test_run_writes_table_and_overlay(self, tmp_path, capsys):
        table_path = tmp_path / "itable.json"
        overlay_path = tmp_path / "overlay.json"
        rc = main(
            [
                "run",
                "--opcodes", SUBSET,
                "--table", str(table_path),
                "--overlay", str(overlay_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "characterized 5 of" in out
        table = json.loads(table_path.read_text())
        assert table["schema"] == "repro-itable-v1"
        assert table["entries"]["add"]["probed"] is True
        overlay = json.loads(overlay_path.read_text())
        assert overlay["name"].endswith("+itable")
        assert "branch_cost" in overlay

    def test_run_uses_the_cache(self, tmp_path, capsys):
        args = [
            "run",
            "--opcodes", SUBSET,
            "--table", str(tmp_path / "t.json"),
            "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "0 jobs executed" in capsys.readouterr().out


class TestVerify:
    def test_verify_in_memory_exits_zero(self, capsys):
        assert main(["verify", "--opcodes", SUBSET]) == 0
        out = capsys.readouterr().out
        assert "round-trip: OK" in out

    def test_verify_saved_table(self, tmp_path, capsys):
        table_path = tmp_path / "t.json"
        assert main(["run", "--opcodes", SUBSET, "--table", str(table_path)]) == 0
        capsys.readouterr()
        assert main(["verify", "--table", str(table_path)]) == 0
        assert "round-trip: OK" in capsys.readouterr().out

    def test_verify_fails_on_impossible_tolerance(self, tmp_path, capsys):
        table_path = tmp_path / "t.json"
        assert main(["run", "--opcodes", SUBSET, "--table", str(table_path)]) == 0
        capsys.readouterr()
        rc = main(["verify", "--table", str(table_path), "--tolerance", "1e-12"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_missing_table_exits_two(self, tmp_path, capsys):
        rc = main(["verify", "--table", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "no instruction table" in capsys.readouterr().err


class TestDiff:
    def test_no_drift_on_the_simulated_machine(self, tmp_path, capsys):
        table_path = tmp_path / "t.json"
        assert main(["run", "--opcodes", SUBSET, "--table", str(table_path)]) == 0
        capsys.readouterr()
        assert main(["diff", "--table", str(table_path)]) == 0
        assert "no drift" in capsys.readouterr().out

    def test_drift_is_reported(self, tmp_path, capsys):
        """Edit the saved table's latency and diff must flag it."""
        table_path = tmp_path / "t.json"
        assert main(["run", "--opcodes", SUBSET, "--table", str(table_path)]) == 0
        data = json.loads(table_path.read_text())
        data["entries"]["imul"]["latency_cycles"] = 9
        table_path.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["diff", "--table", str(table_path)]) == 1
        out = capsys.readouterr().out
        assert "imul: latency 9" in out

    def test_bad_machine_file_exits_two(self, tmp_path, capsys):
        rc = main(["diff", "--machine-file", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "no machine file" in capsys.readouterr().err


class TestMachineOverlayFlags:
    """The overlay derived by characterize feeds both existing CLIs."""

    @pytest.fixture()
    def overlay_path(self, tmp_path):
        path = tmp_path / "overlay.json"
        assert (
            main(
                [
                    "run",
                    "--opcodes", SUBSET,
                    "--table", str(tmp_path / "t.json"),
                    "--overlay", str(path),
                ]
            )
            == 0
        )
        return path

    def test_microlauncher_applies_the_overlay(self, tmp_path, overlay_path, capsys):
        from repro.cli.launcher_cli import main as launcher_main

        kernel = tmp_path / "k.s"
        kernel.write_text(
            ".L0:\n\taddps %xmm1, %xmm0\n\tsub $1, %rdi\n\tjge .L0\n"
        )
        capsys.readouterr()
        assert launcher_main([str(kernel), "--machine-overlay", str(overlay_path)]) == 0
        assert "+itable" in capsys.readouterr().out

    def test_microlauncher_rejects_bad_overlay(self, tmp_path, capsys):
        from repro.cli.launcher_cli import main as launcher_main

        kernel = tmp_path / "k.s"
        kernel.write_text(
            ".L0:\n\taddps %xmm1, %xmm0\n\tsub $1, %rdi\n\tjge .L0\n"
        )
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        capsys.readouterr()
        assert launcher_main([str(kernel), "--machine-overlay", str(bad)]) == 2
        assert "JSON object" in capsys.readouterr().err

    def test_microcreator_applies_the_overlay(self, tmp_path, overlay_path, capsys):
        from repro.cli.creator_cli import main as creator_main
        from repro.kernels import spec_path

        rc = creator_main(
            [
                str(spec_path("load_movaps")),
                "--measure",
                "--limit", "2",
                "--array-bytes", "16384",
                "--trip", "256",
                "--machine-overlay", str(overlay_path),
                "--results", str(tmp_path / "r.csv"),
            ]
        )
        assert rc == 0
        assert (tmp_path / "r.csv").exists()
