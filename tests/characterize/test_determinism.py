"""Characterization determinism: the table is a pure function of the seed.

The acceptance bar from the ISSUE: same seed -> byte-identical
instruction table across ``--jobs`` values, across a kill/resume, and on
both store backends.  All of it falls out of the engine's per-job
derived noise seeds plus the table's canonical JSON — asserted here on a
class-covering opcode subset to keep the matrix fast.
"""

from __future__ import annotations

import pytest

from repro.characterize import run_characterization
from repro.characterize.driver import characterization_campaign
from repro.engine import FaultPlan, run_campaign
from repro.machine import nehalem_2s_x5650

#: Every register class, both probe shapes, all three port classes.
OPCODES = ("add", "addps", "mulps", "mov", "imul", "cmp", "inc", "xorps", "movl")


def _characterize(**kwargs):
    return run_characterization(nehalem_2s_x5650(), opcodes=OPCODES, **kwargs)


@pytest.fixture(scope="module")
def reference():
    """The serial in-memory run's canonical table bytes."""
    return _characterize().table.to_json().encode()


class TestDeterminism:
    @pytest.mark.parametrize("jobs", (1, 2))
    @pytest.mark.parametrize("chunk_size", (1, 7, None))
    def test_byte_identical_across_dispatch(self, reference, jobs, chunk_size):
        result = _characterize(jobs=jobs, chunk_size=chunk_size)
        assert result.table.to_json().encode() == reference

    @pytest.mark.parametrize("fmt", ("jsonl", "sharded"))
    def test_byte_identical_across_backends(self, reference, tmp_path, fmt):
        cold = _characterize(cache_dir=tmp_path / "cache", store_format=fmt)
        assert cold.table.to_json().encode() == reference
        warm = _characterize(cache_dir=tmp_path / "cache", store_format=fmt)
        assert warm.run.stats.executed == 0
        assert warm.table.to_json().encode() == reference

    @pytest.mark.parametrize("fmt", ("jsonl", "sharded"))
    def test_resume_after_kill_byte_identical(self, reference, tmp_path, fmt):
        """A probe campaign killed mid-run resumes from its cache into the
        same table bytes a never-interrupted run produces."""
        campaign = characterization_campaign(
            nehalem_2s_x5650(), opcodes=OPCODES
        )
        victim = campaign.job_list()[7]
        killed = run_campaign(
            campaign,
            faults=FaultPlan.for_job(victim.job_id, "raise"),
            max_retries=0,
            retry_backoff=0.0,
            cache_dir=tmp_path / "cache",
            store_format=fmt,
        )
        assert [f.job_id for f in killed.failures] == [victim.job_id]
        resumed = _characterize(cache_dir=tmp_path / "cache", store_format=fmt)
        assert resumed.run.stats.executed == 1  # only the killed job re-ran
        assert resumed.table.to_json().encode() == reference

    def test_different_seed_changes_readings_not_structure(self, reference):
        from repro.characterize import characterization_options

        other = _characterize(options=characterization_options(noise_seed=777))
        assert other.table.to_json().encode() != reference
        # The *solved* integers are seed-independent.
        for name, entry in other.table.entries.items():
            import json

            ref_entry = json.loads(reference)["entries"][name]
            assert entry.latency_cycles == ref_entry["latency_cycles"]
            assert entry.slots == ref_entry["slots"]
            assert entry.port_class == ref_entry["port_class"]


class TestDegradedRuns:
    def test_driver_raises_on_failures(self, monkeypatch):
        """Force the engine to quarantine one probe job and assert the
        driver refuses to solve."""
        import repro.characterize.driver as driver_mod

        real_run_campaign = driver_mod.run_campaign

        def failing_run_campaign(campaign, **kwargs):
            victim = campaign.job_list()[0]
            kwargs.update(
                faults=FaultPlan.for_job(victim.job_id, "raise"),
                max_retries=0,
            )
            return real_run_campaign(campaign, retry_backoff=0.0, **kwargs)

        monkeypatch.setattr(driver_mod, "run_campaign", failing_run_campaign)
        with pytest.raises(ValueError, match="degraded"):
            run_characterization(nehalem_2s_x5650(), opcodes=("add",))
