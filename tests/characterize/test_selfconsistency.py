"""The round-trip self-consistency suite (the ISSUE's standing harness).

Characterize the full simulated ISA, then close the loop: the solved
table must re-predict every probe analytically within the RCIW target,
and — because the machine under test *is* the model — the recovered
latencies, port classes and port widths must match the semantics table
and the base config exactly.  Any divergence means a probe, the solver,
the derivation or the cycle model itself changed meaning.
"""

from __future__ import annotations

import pytest

from repro.characterize import (
    InstructionTable,
    TableFormatError,
    derive_machine_config,
    expected_port_class,
    is_chainable,
    probeable_opcodes,
    run_characterization,
    table_drift,
    verify_table,
)
from repro.isa.semantics import opcode_info
from repro.machine import nehalem_2s_x5650, sandy_bridge_e31240


@pytest.fixture(scope="module")
def nehalem_result():
    """One full-ISA characterization of the default machine."""
    return run_characterization(nehalem_2s_x5650())


@pytest.fixture(scope="module")
def table(nehalem_result):
    return nehalem_result.table


class TestRoundTrip:
    def test_every_probe_repredicts_within_rciw_target(self, table):
        report = verify_table(table, nehalem_2s_x5650())
        assert report.ok, report.render()
        assert report.n_checked == sum(
            len(e.readings) for e in table.probed_entries()
        )

    def test_report_renders_failures(self, table):
        """An impossible tolerance fails every check, visibly."""
        report = verify_table(table, nehalem_2s_x5650(), tolerance=1e-9)
        assert not report.ok
        assert report.failed
        assert "FAIL" in report.render()

    def test_derived_config_matches_base_ports(self, table):
        base = nehalem_2s_x5650()
        derived, overlay = derive_machine_config(table, base)
        assert derived.ports == base.ports
        assert derived.name == f"{base.name}+itable"
        assert abs(derived.branch_cost - base.branch_cost) < 0.05
        # The overlay is minimal: ports dropped out because they matched.
        assert "ports" not in overlay
        assert set(overlay) == {"name", "branch_cost"}

    def test_no_drift_from_the_modelled_semantics(self, table):
        assert table_drift(table, nehalem_2s_x5650()) == []


class TestSolvedQuantities:
    def test_full_isa_is_covered(self, table):
        from repro.isa.semantics import known_opcodes

        assert set(table.entries) == known_opcodes()
        probed = {e.opcode for e in table.probed_entries()}
        assert probed == set(probeable_opcodes())

    def test_latencies_match_semantics(self, table):
        for entry in table.probed_entries():
            if is_chainable(entry.opcode):
                assert entry.latency_cycles == opcode_info(entry.opcode).latency, (
                    entry.opcode
                )
            else:
                assert entry.latency_cycles is None, entry.opcode

    def test_port_classes_match_semantics(self, table):
        for entry in table.probed_entries():
            assert entry.port_class == expected_port_class(entry.opcode), entry.opcode

    def test_slots_match_base_config(self, table):
        base = nehalem_2s_x5650()
        for entry in table.probed_entries():
            assert entry.slots == round(base.ports[entry.port_class]), entry.opcode

    def test_every_probe_converged_within_target(self, table):
        for entry in table.probed_entries():
            for reading in entry.readings:
                assert reading.converged, (entry.opcode, reading)
                assert reading.rciw is not None
                assert reading.rciw <= table.rciw_target

    def test_unprobed_entries_carry_reasons(self, table):
        for entry in table.entries.values():
            if not entry.probed:
                assert entry.reason, entry.opcode
                assert entry.latency_cycles is None
                assert entry.readings == ()


class TestOtherMachines:
    def test_sandy_bridge_subset_roundtrips(self):
        """The harness is machine-independent: a different preset (two
        load ports, different frequency) verifies just the same."""
        machine = sandy_bridge_e31240()
        result = run_characterization(
            machine, opcodes=("add", "addps", "mulps", "mov", "imul")
        )
        report = verify_table(result.table, machine)
        assert report.ok, report.render()
        assert table_drift(result.table, machine) == []


class TestTableSerialization:
    def test_json_roundtrip_is_byte_identical(self, table, tmp_path):
        path = table.save(tmp_path / "itable.json")
        reloaded = InstructionTable.load(path)
        assert reloaded.to_json() == table.to_json()
        assert reloaded == table

    def test_schema_is_validated(self, table, tmp_path):
        data = table.to_dict()
        data["schema"] = "repro-itable-v0"
        with pytest.raises(TableFormatError, match="unsupported"):
            InstructionTable.from_dict(data)
        with pytest.raises(TableFormatError, match="JSON object"):
            InstructionTable.from_dict([])

    def test_missing_file_and_bad_json(self, tmp_path):
        with pytest.raises(TableFormatError, match="no instruction table"):
            InstructionTable.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(TableFormatError, match="not valid JSON"):
            InstructionTable.load(bad)

    def test_missing_field_is_reported(self, table):
        data = table.to_dict()
        del data["machine_digest"]
        with pytest.raises(TableFormatError, match="missing"):
            InstructionTable.from_dict(data)
