"""Probe-generator unit suite: the dependence structure is the probe.

A latency probe only measures latency if its chain is the *single*
serial recurrence in the loop, and a throughput probe only measures
throughput if *nothing* is carried across iterations except the loop
counter.  Both properties are asserted here structurally, through
``analyze_kernel`` — the same analysis the cycle model uses — for every
probe the driver can generate.
"""

from __future__ import annotations

import pytest

from repro.characterize import (
    BLOCKERS,
    LATENCY_KS,
    ProbeSpec,
    all_probe_specs,
    build_probe,
    is_chainable,
    parse_probe_name,
    probe_exclusion,
    probe_specs_for,
    probeable_opcodes,
)
from repro.characterize.probes import COUNTER_REG
from repro.isa.operands import ImmediateOperand, MemoryOperand
from repro.isa.registers import PhysReg
from repro.isa.semantics import iter_opcodes, opcode_info
from repro.machine.kernel_model import analyze_kernel

CHAINABLE = tuple(op for op in probeable_opcodes() if is_chainable(op))
UNCHAINABLE = tuple(op for op in probeable_opcodes() if not is_chainable(op))


def _body(spec: ProbeSpec):
    _, body = build_probe(spec).kernel_loop()
    return body


def _body_without_counter(spec: ProbeSpec):
    """The probe's payload: loop body minus the counter update + branch."""
    body = _body(spec)
    assert body[-1].is_branch
    assert isinstance(body[-2].operands[0], ImmediateOperand)
    return body[:-2]


class TestProbePlan:
    def test_covers_the_probeable_isa(self):
        opcodes = {spec.opcode for spec in all_probe_specs()}
        assert opcodes == set(probeable_opcodes())

    def test_moves_and_flag_setters_are_not_chainable(self):
        assert "mov" in UNCHAINABLE
        assert "movaps" in UNCHAINABLE
        assert "cmp" in UNCHAINABLE
        assert "test" in UNCHAINABLE

    def test_rmw_alu_and_fp_are_chainable(self):
        for op in ("add", "imul", "inc", "neg", "addps", "mulsd", "xorps"):
            assert is_chainable(op), op

    def test_unprobeable_opcodes_have_reasons(self):
        for info in iter_opcodes():
            if info.name not in set(probeable_opcodes()):
                assert probe_exclusion(info.name), info.name

    def test_plan_order_is_deterministic(self):
        assert all_probe_specs() == all_probe_specs()
        names = [s.opcode for s in all_probe_specs()]
        assert names == sorted(names)

    @pytest.mark.parametrize("opcode", ("jge", "ret", "nop", "prefetcht0", "lea"))
    def test_excluded_opcodes_refuse_to_build(self, opcode):
        assert probe_specs_for(opcode) == ()
        with pytest.raises(ValueError, match="cannot probe"):
            build_probe(ProbeSpec(opcode, "throughput", 8))

    def test_latency_probe_refused_for_unchainable(self):
        with pytest.raises(ValueError, match="latency chain"):
            build_probe(ProbeSpec("mov", "latency", 8))


class TestNames:
    def test_every_spec_roundtrips_through_its_name(self):
        for spec in all_probe_specs():
            assert parse_probe_name(spec.name) == spec

    def test_non_probe_names_are_ignored(self):
        assert parse_probe_name("movaps_u4") is None
        assert parse_probe_name("charact__add__lat") is None

    def test_program_name_is_the_spec_name(self):
        spec = ProbeSpec("addps", "contention", 8, blocker="mulps")
        assert build_probe(spec).name == spec.name == "charact__addps__ct_mulps__k8"


class TestLatencyProbes:
    @pytest.mark.parametrize("opcode", CHAINABLE)
    @pytest.mark.parametrize("k", LATENCY_KS)
    def test_recurrence_is_k_times_latency(self, opcode, k):
        analysis = analyze_kernel(_body(ProbeSpec(opcode, "latency", k)))
        assert analysis.recurrence_cycles == k * opcode_info(opcode).latency

    @pytest.mark.parametrize("opcode", CHAINABLE)
    def test_chain_dominates_every_other_bound(self, opcode):
        """The recurrence must be the binding constraint at both k values,
        otherwise the slope would not be the latency."""
        from repro.machine import nehalem_2s_x5650
        from repro.machine.pipeline import estimate_iteration_time

        machine = nehalem_2s_x5650()
        for k in LATENCY_KS:
            analysis = analyze_kernel(_body(ProbeSpec(opcode, "latency", k)))
            breakdown = estimate_iteration_time(analysis, {}, machine)
            assert breakdown.pipe_cycles == analysis.recurrence_cycles, (opcode, k)


class TestStreamProbes:
    @pytest.mark.parametrize("kind", ("throughput", "contention"))
    @pytest.mark.parametrize("opcode", probeable_opcodes())
    def test_zero_loop_carried_dependences(self, opcode, kind):
        """Only the loop counter's own chain (1 cycle) is carried; the
        payload alone carries nothing at all."""
        blocker = BLOCKERS["alu"] if kind == "contention" else None
        spec = ProbeSpec(opcode, kind, 8, blocker=blocker)
        assert analyze_kernel(_body(spec)).recurrence_cycles == 1.0
        assert analyze_kernel(_body_without_counter(spec)).recurrence_cycles == 0.0


class TestProbeHygiene:
    @pytest.mark.parametrize("spec", all_probe_specs(), ids=lambda s: s.name)
    def test_no_memory_and_one_induction(self, spec):
        """Register operands only, and ``sub $1, %rdi`` stays the single
        immediate-ALU instruction the counter detection keys on."""
        body = _body(spec)
        assert not any(
            isinstance(op, MemoryOperand) for instr in body for op in instr.operands
        )
        imm_alu = [
            i for i in body
            if i.operands and isinstance(i.operands[0], ImmediateOperand)
        ]
        assert len(imm_alu) == 1
        analysis = analyze_kernel(body)
        assert analysis.counter_step == -1
        assert analysis.elements_per_iteration == 1
        assert not analysis.streams

    @pytest.mark.parametrize("spec", all_probe_specs(), ids=lambda s: s.name)
    def test_counter_register_untouched_by_payload(self, spec):
        counter = PhysReg(COUNTER_REG)
        for instr in _body_without_counter(spec):
            touched = set(instr.registers_read()) | set(instr.registers_written())
            assert counter not in {r.canonical64 for r in touched}

    @pytest.mark.parametrize("opcode", ("add", "inc", "addps", "movl"))
    @pytest.mark.parametrize("blocker", sorted(BLOCKERS.values()))
    def test_contention_streams_share_no_registers(self, opcode, blocker):
        """Op and blocker streams must not share registers, even when both
        live in the same class — otherwise contention would also carry a
        dependence.  Stream membership follows from construction: after
        the two init groups the payload alternates (op, blocker)."""
        from repro.characterize import N_STREAM_DESTS

        spec = ProbeSpec(opcode, "contention", 8, blocker=blocker)
        body = _body_without_counter(spec)
        inits, pairs = body[: 2 * N_STREAM_DESTS], body[2 * N_STREAM_DESTS :]
        op_stream = inits[:N_STREAM_DESTS] + pairs[0::2]
        blk_stream = inits[N_STREAM_DESTS:] + pairs[1::2]
        assert all(i.opcode == opcode for i in pairs[0::2])
        assert all(i.opcode == blocker for i in pairs[1::2])

        def regs(stream):
            return {
                r.canonical64
                for instr in stream
                for r in (*instr.registers_read(), *instr.registers_written())
            }

        assert regs(op_stream).isdisjoint(regs(blk_stream))

    def test_build_is_deterministic(self):
        from repro.isa.writer import write_program

        for spec in all_probe_specs()[:20]:
            assert write_program(build_probe(spec)) == write_program(build_probe(spec))
