"""Fortran-parser tests (the section-4.1 Fortran source input path)."""

import pytest

from repro.compiler.ast import Accumulate, ArrayRef, Assign
from repro.compiler.fparse import (
    FortranParseError,
    compile_fortran,
    parse_fortran,
)

SAXPY = """
subroutine saxpy(n, y, x)
  integer n, i
  real y(n), x(n)
  do i = 1, n
    y(i) = y(i) + x(i) * 2.0
  end do
end subroutine
"""

DOT = """
subroutine dot(n, a, b)
  integer n, k
  real*8 a(n), b(n)
  do k = 1, n
    s = s + a(k) * b(k)
  end do
end subroutine
"""


class TestParsing:
    def test_saxpy_shape(self):
        parsed = parse_fortran(SAXPY)
        assert parsed.name == "saxpy"
        assert parsed.loop_var == "i"
        assert parsed.trip_symbol == "n"
        assert list(parsed.arrays) == ["y", "x"]

    def test_element_sizes_from_types(self):
        assert parse_fortran(SAXPY).arrays["y"].element_size == 4
        assert parse_fortran(DOT).arrays["a"].element_size == 8

    def test_double_precision_spelling(self):
        source = DOT.replace("real*8", "double precision")
        assert parse_fortran(source).arrays["a"].element_size == 8

    def test_one_based_index_becomes_offset(self):
        stmt = parse_fortran(SAXPY).loop.body[0]
        assert isinstance(stmt, Assign)
        assert stmt.target.offset_elements == -1

    def test_accumulation_recognized(self):
        stmt = parse_fortran(DOT).loop.body[0]
        assert isinstance(stmt, Accumulate)
        assert stmt.target.name == "s"

    def test_openmp_sentinel(self):
        source = SAXPY.replace("do i", "!$omp parallel do\n  do i", 1)
        assert parse_fortran(source).openmp

    def test_comments_stripped(self):
        source = SAXPY.replace("end do", "end do  ! loop done")
        parse_fortran(source)

    def test_case_insensitive(self):
        parse_fortran(SAXPY.upper())

    @pytest.mark.parametrize(
        "index,stride,offset",
        [("i", 1, -1), ("i+1", 1, 0), ("i-1", 1, -2), ("i*n", "n", 0), ("3", 0, 2)],
    )
    def test_index_forms(self, index, stride, offset):
        source = f"""
subroutine f(n, a, b)
  integer n, i
  real a(n), b(n)
  do i = 1, n
    a(i) = b({index})
  end do
end subroutine
"""
        ref = parse_fortran(source).loop.body[0].expr
        assert ref.stride_elements == stride
        assert ref.offset_elements == offset


class TestRejections:
    def _expect(self, source, match):
        with pytest.raises(FortranParseError, match=match):
            parse_fortran(source)

    def test_do_must_start_at_one(self):
        self._expect(SAXPY.replace("do i = 1, n", "do i = 0, n"), "do var = 1, n")

    def test_unknown_bound(self):
        self._expect(SAXPY.replace("do i = 1, n", "do i = 1, m"), "not a parameter")

    def test_undeclared_array(self):
        self._expect(
            SAXPY.replace("x(i) * 2.0", "z(i) * 2.0"), "not a declared array"
        )

    def test_missing_end(self):
        self._expect(SAXPY.replace("end subroutine", ""), "incomplete")

    def test_unsupported_directive(self):
        self._expect("!$omp critical\n" + SAXPY, "unsupported directive")

    def test_statement_without_assignment(self):
        self._expect(SAXPY.replace("y(i) = y(i) + x(i) * 2.0", "call foo(i)"),
                     "assignment")


class TestCompile:
    def test_saxpy_lowers_single_precision(self):
        kernel = compile_fortran(SAXPY, n=1024)
        opcodes = {i.opcode for i in kernel.program.instructions()}
        assert "movss" in opcodes and "addss" in opcodes and "mulss" in opcodes

    def test_dot_keeps_accumulator_in_register(self):
        kernel = compile_fortran(DOT, n=1024)
        assert not any(i.is_store for i in kernel.program.instructions())

    def test_fortran_and_c_saxpy_agree(self):
        """The same kernel through both language front doors lowers to
        identical per-iteration structure."""
        from repro.compiler import compile_c
        from repro.machine.kernel_model import analyze_kernel

        c_source = """
void saxpy(int n, float *y, float *x)
{
    int i;
    for (i = 0; i < n; i++) { y[i] = y[i] + x[i] * 2.0; }
}
"""
        f_kernel = compile_fortran(SAXPY, n=1024)
        c_kernel = compile_c(c_source, n=1024)
        _, f_body = f_kernel.program.kernel_loop()
        _, c_body = c_kernel.program.kernel_loop()
        fa, ca = analyze_kernel(f_body), analyze_kernel(c_body)
        assert fa.port_demand == ca.port_demand
        assert fa.n_loads == ca.n_loads and fa.n_stores == ca.n_stores


class TestLauncherIntegration:
    def test_fortran_text_through_launcher(self, launcher, fast_options):
        m = launcher.run(SAXPY, fast_options)
        assert m.cycles_per_iteration > 0
        assert m.kernel_name.startswith("saxpy")

    def test_f90_file_through_launcher(self, launcher, fast_options, tmp_path):
        path = tmp_path / "kernel.f90"
        path.write_text(DOT)
        m = launcher.run(path, fast_options)
        assert m.cycles_per_iteration > 0

    def test_parse_error_surfaces(self, launcher, fast_options):
        from repro.launcher import KernelInputError

        with pytest.raises(KernelInputError, match="cannot compile Fortran"):
            launcher.run("subroutine broken(n)\nend subroutine", fast_options)
