"""Mini C front-end tests: AST validation and lowering fidelity."""

import pytest

from repro.compiler.ast import (
    Accumulate,
    Add,
    ArrayDecl,
    ArrayRef,
    Assign,
    InnerLoop,
    LoweringError,
    Mul,
    ScalarVar,
)
from repro.compiler.lower import lower_loop
from repro.isa.writer import format_instruction
from repro.kernels.matmul import matmul_kernel, matmul_source


class TestAst:
    def test_array_element_sizes(self):
        ArrayDecl("a", 4)
        ArrayDecl("b", 8)
        with pytest.raises(LoweringError):
            ArrayDecl("c", 2)

    def test_empty_loop_rejected(self):
        with pytest.raises(LoweringError, match="empty"):
            InnerLoop(trip_var="k", body=())

    def test_symbolic_stride_resolves(self):
        ref = ArrayRef(ArrayDecl("a"), stride_elements="n")
        assert ref.resolved_stride(200) == 200

    def test_unknown_symbolic_stride(self):
        ref = ArrayRef(ArrayDecl("a"), stride_elements="m")
        with pytest.raises(LoweringError, match="unknown symbolic"):
            ref.resolved_stride(10)

    def test_arrays_discovered_in_order(self):
        loop = matmul_source()
        assert [a.name for a in loop.arrays()] == ["res", "second", "third"]


class TestMatmulLowering:
    def test_fig2_instruction_mix(self):
        """The lowered inner loop carries Fig. 2's mix: load, multiply
        with memory operand, accumulate, store, updates, branch."""
        kernel = matmul_kernel(200, 1)
        _, body = kernel.program.kernel_loop()
        opcodes = [i.opcode for i in body]
        assert opcodes == ["movsd", "mulsd", "addsd", "movsd", "add", "add", "sub", "jge"]

    def test_memory_operand_folding(self):
        kernel = matmul_kernel(200, 1)
        texts = [format_instruction(i) for i in kernel.program.instructions()]
        assert any(t.startswith("mulsd (") for t in texts)

    def test_column_stride_scales_with_n(self):
        k200 = matmul_kernel(200, 1)
        k500 = matmul_kernel(500, 1)
        def stride_of(kernel, array):
            regs = kernel.stream_for_array(array)
            return kernel.streams[regs[0]].stride_bytes
        assert stride_of(k200, "third") == 1600
        assert stride_of(k500, "third") == 4000
        assert stride_of(k200, "second") == 8

    def test_accumulator_store_each_iteration(self):
        kernel = matmul_kernel(100, 1)
        stores = [i for i in kernel.program.instructions() if i.is_store]
        assert len(stores) == 1

    def test_scalarized_variant_skips_store(self):
        loop = InnerLoop(
            trip_var="k",
            body=matmul_source().body,
            store_target_each_iteration=False,
        )
        kernel = lower_loop(loop, n=100, name="scalarized")
        assert not any(i.is_store for i in kernel.program.instructions())

    def test_unroll_replicates_and_rotates_temps(self):
        kernel = matmul_kernel(200, 4)
        _, body = kernel.program.kernel_loop()
        loads = [i for i in body if i.opcode == "movsd" and i.is_load]
        assert len(loads) == 4
        temps = {str(i.operands[1].reg) for i in loads}
        assert len(temps) == 4

    def test_unroll_scales_inductions(self):
        kernel = matmul_kernel(200, 4)
        updates = [
            i for i in kernel.program.instructions()
            if i.opcode in ("add", "sub") and not i.is_branch
        ]
        values = {str(i.operands[1].reg): i.operands[0].value for i in updates}
        assert values["%rsi"] == 32      # 8 bytes * 4
        assert values["%rdx"] == 6400    # 1600 * 4
        assert values["%rdi"] == 4

    def test_counter_counts_source_iterations(self):
        kernel = matmul_kernel(200, 4)
        _, body = kernel.program.kernel_loop()
        from repro.machine.kernel_model import analyze_kernel

        assert analyze_kernel(body).elements_per_iteration == 4

    def test_bad_unroll_rejected(self):
        with pytest.raises(LoweringError):
            matmul_kernel(200, 0)


class TestGeneralLowering:
    def test_assign_to_moving_array(self):
        a = ArrayDecl("a", 4)
        b = ArrayDecl("b", 4)
        loop = InnerLoop(
            trip_var="k",
            body=(Assign(ArrayRef(a), ArrayRef(b)),),
        )
        kernel = lower_loop(loop, n=64, name="copy")
        ops = [i.opcode for i in kernel.program.instructions()]
        assert ops.count("movss") == 2  # load + store

    def test_float_arrays_use_ss_forms(self):
        a = ArrayDecl("a", 4)
        loop = InnerLoop(
            trip_var="k",
            body=(Accumulate(ScalarVar("acc"), Mul(ArrayRef(a), ArrayRef(a))),),
        )
        kernel = lower_loop(loop, n=64, name="ssq")
        ops = {i.opcode for i in kernel.program.instructions()}
        assert "mulss" in ops and "addss" in ops

    def test_accumulate_into_moving_ref_rejected(self):
        a = ArrayDecl("a", 8)
        loop = InnerLoop(
            trip_var="k",
            body=(Accumulate(ArrayRef(a, stride_elements=1), ArrayRef(a)),),
        )
        with pytest.raises(LoweringError, match="loop-carried reduction"):
            lower_loop(loop, n=64)

    def test_launchable_by_microlauncher(self, launcher, fast_options):
        """CompiledKernel satisfies the launcher's duck-typed input."""
        kernel = matmul_kernel(100, 2)
        m = launcher.run(kernel, fast_options)
        assert m.cycles_per_iteration > 0
