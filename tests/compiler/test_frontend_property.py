"""Differential property tests across the compiler's three front doors.

For randomly generated affine kernels we render equivalent C and Fortran
sources, parse them, and lower all three representations (direct AST, C,
Fortran).  The machine-facing analysis must agree — same loads, stores,
port demand, and stream steps — no matter which door the kernel came in
through.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import compile_c, compile_fortran, lower_loop
from repro.compiler.ast import (
    Accumulate,
    Add,
    ArrayDecl,
    ArrayRef,
    Assign,
    InnerLoop,
    Mul,
    ScalarVar,
)
from repro.machine.kernel_model import analyze_kernel

ARRAY_NAMES = ("aa", "bb", "cc")


@st.composite
def affine_kernels(draw):
    """(AST, C source, Fortran source, n) for one random kernel."""
    element_size = draw(st.sampled_from([4, 8]))
    ctype = "float" if element_size == 4 else "double"
    ftype = "real" if element_size == 4 else "real*8"
    n_arrays = draw(st.integers(2, 3))
    arrays = {
        name: ArrayDecl(name, element_size) for name in ARRAY_NAMES[:n_arrays]
    }
    names = list(arrays)
    dst = names[0]
    srcs = names[1:]
    offsets = [draw(st.integers(0, 3)) for _ in srcs]
    accumulate = draw(st.booleans())

    # AST form -------------------------------------------------------------
    expr = ArrayRef(arrays[srcs[0]], offset_elements=offsets[0])
    c_expr = f"{srcs[0]}[k + {offsets[0]}]" if offsets[0] else f"{srcs[0]}[k]"
    f_expr = f"{srcs[0]}(k+{offsets[0] + 1})" if offsets[0] else f"{srcs[0]}(k+1)"
    if len(srcs) > 1:
        op = draw(st.sampled_from(["+", "*"]))
        rhs = ArrayRef(arrays[srcs[1]], offset_elements=offsets[1])
        expr = (Add if op == "+" else Mul)(expr, rhs)
        c_rhs = f"{srcs[1]}[k + {offsets[1]}]" if offsets[1] else f"{srcs[1]}[k]"
        f_rhs = f"{srcs[1]}(k+{offsets[1] + 1})" if offsets[1] else f"{srcs[1]}(k+1)"
        c_expr = f"{c_expr} {op} {c_rhs}"
        f_expr = f"{f_expr} {op} {f_rhs}"

    if accumulate:
        ast_stmt = Accumulate(ScalarVar("s"), expr)
        c_stmt = f"s += {c_expr};"
        f_stmt = f"s = s + {f_expr}"
    else:
        ast_stmt = Assign(ArrayRef(arrays[dst]), expr)
        c_stmt = f"{dst}[k] = {c_expr};"
        f_stmt = f"{dst}(k+1) = {f_expr}"
        # NB: Fortran is 1-based; dst(k+1) matches C's dst[k] shifted by a
        # constant, which the analysis is insensitive to.

    loop = InnerLoop(
        trip_var="k", body=(ast_stmt,), store_target_each_iteration=True
    )

    params = ", ".join(f"{ctype} *{name}" for name in names)
    c_source = (
        f"void kern(int n, {params})\n"
        "{\n    int k;\n"
        f"    for (k = 0; k < n; k++) {{ {c_stmt} }}\n"
        "}\n"
    )
    decls = ", ".join(f"{name}(n)" for name in names)
    f_source = (
        "subroutine kern(n, " + ", ".join(names) + ")\n"
        "  integer n, k\n"
        f"  {ftype} {decls}\n"
        "  do k = 1, n\n"
        f"    {f_stmt}\n"
        "  end do\n"
        "end subroutine\n"
    )
    n = draw(st.sampled_from([64, 200, 1000]))
    return loop, c_source, f_source, n


def analysis_of(kernel):
    _, body = kernel.program.kernel_loop()
    return analyze_kernel(body)


@given(affine_kernels())
@settings(max_examples=60, deadline=None)
def test_three_front_doors_agree(data):
    loop, c_source, f_source, n = data
    direct = analysis_of(lower_loop(loop, n=n, name="direct"))
    via_c = analysis_of(compile_c(c_source, n=n))
    via_f = analysis_of(compile_fortran(f_source, n=n))

    for other in (via_c, via_f):
        assert other.n_loads == direct.n_loads
        assert other.n_stores == direct.n_stores
        assert other.port_demand == direct.port_demand
        assert other.recurrence_cycles == direct.recurrence_cycles
        assert {s.step_bytes for s in other.streams.values()} == {
            s.step_bytes for s in direct.streams.values()
        }


@given(affine_kernels(), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_unroll_scales_all_front_doors_equally(data, unroll):
    loop, c_source, f_source, n = data
    base = analysis_of(compile_c(c_source, n=n))
    unrolled_c = analysis_of(compile_c(c_source, n=n, unroll=unroll))
    unrolled_f = analysis_of(compile_fortran(f_source, n=n, unroll=unroll))
    assert unrolled_c.n_loads == base.n_loads * unroll
    assert unrolled_f.n_loads == base.n_loads * unroll
    assert unrolled_c.elements_per_iteration == unroll
