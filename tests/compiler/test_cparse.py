"""C-parser tests (the section-4.1 C source input path)."""

import pytest

from repro.compiler import CParseError, compile_c, parse_c
from repro.compiler.ast import Accumulate, ArrayRef, Assign, Mul

#: The paper's Fig. 1 inner loop, as C source.
FIG1 = """
void multiplySingle(int n, double *res, double *second, double *third)
{
    int k;
    for (k = 0; k < n; k++) {
        *res += second[k] * third[k * n];
    }
}
"""

SAXPY = """
/* classic saxpy, single precision */
void saxpy(int n, float *y, float *x)
{
    int i;
    for (i = 0; i < n; i++) {
        y[i] = y[i] + x[i] * 2.0;   // alpha folded as a constant
    }
}
"""


class TestParsing:
    def test_fig1_shape(self):
        parsed = parse_c(FIG1)
        assert parsed.name == "multiplySingle"
        assert parsed.trip_symbol == "n"
        assert parsed.loop_var == "k"
        assert list(parsed.arrays) == ["res", "second", "third"]
        assert not parsed.openmp

    def test_fig1_statement(self):
        stmt = parse_c(FIG1).loop.body[0]
        assert isinstance(stmt, Accumulate)
        assert isinstance(stmt.target, ArrayRef)
        assert stmt.target.stride_elements == 0  # *res is stationary
        assert isinstance(stmt.expr, Mul)
        assert stmt.expr.right.stride_elements == "n"  # the column walk

    def test_element_sizes_from_types(self):
        parsed = parse_c(SAXPY)
        assert parsed.arrays["y"].element_size == 4
        parsed2 = parse_c(FIG1)
        assert parsed2.arrays["res"].element_size == 8

    def test_comments_stripped(self):
        parsed = parse_c(SAXPY)
        assert isinstance(parsed.loop.body[0], Assign)

    def test_openmp_pragma_detected(self):
        source = SAXPY.replace("for (i", "#pragma omp parallel for\n    for (i")
        assert parse_c(source).openmp

    def test_plusplus_prefix_increment(self):
        source = FIG1.replace("k++", "++k")
        assert parse_c(source).loop_var == "k"

    def test_plus_equals_increment(self):
        source = FIG1.replace("k++", "k += 1")
        parse_c(source)

    @pytest.mark.parametrize(
        "index,stride,offset",
        [
            ("k", 1, 0), ("k + 2", 1, 2), ("k - 1", 1, -1),
            ("k * 4", 4, 0), ("k * n", "n", 0), ("n * k", "n", 0), ("3", 0, 3),
        ],
    )
    def test_index_forms(self, index, stride, offset):
        source = f"""
void f(int n, float *a, float *b)
{{
    int k;
    for (k = 0; k < n; k++) {{ a[k] = b[{index}]; }}
}}
"""
        ref = parse_c(source).loop.body[0].expr
        assert ref.stride_elements == stride
        assert ref.offset_elements == offset


class TestRejections:
    def _expect_error(self, source, match):
        with pytest.raises(CParseError, match=match):
            parse_c(source)

    def test_nonzero_start(self):
        self._expect_error(
            FIG1.replace("k = 0", "k = 1"), "must start at 0"
        )

    def test_wrong_bound(self):
        self._expect_error(
            FIG1.replace("k < n", "k < m"), "loop bound"
        )

    def test_step_two(self):
        self._expect_error(
            FIG1.replace("k++", "k += 2"), "increment by one"
        )

    def test_unknown_pointer_deref(self):
        self._expect_error(
            FIG1.replace("*res +=", "*bogus +="), "not an array parameter"
        )

    def test_unsupported_pragma(self):
        self._expect_error(
            "#pragma once\n" + FIG1, "only '#pragma omp parallel for'"
        )

    def test_division_rejected(self):
        self._expect_error(
            SAXPY.replace("x[i] * 2.0", "x[i] / 2.0"),
            "expected ';'",
        )

    def test_struct_param_rejected(self):
        self._expect_error(
            FIG1.replace("double *res", "struct s *res"),
            "unsupported parameter type",
        )

    def test_garbage_character(self):
        self._expect_error(FIG1.replace("*res", "@res"), "unexpected character")

    def test_truncated_source(self):
        self._expect_error(FIG1[: FIG1.index("+=")], "unexpected end")

    def test_trailing_tokens(self):
        self._expect_error(FIG1 + "\nint global;", "trailing tokens")


class TestCompile:
    def test_fig1_matches_handbuilt_matmul(self):
        """The parsed Fig. 1 lowers to the same assembly as the
        programmatically-built matmul of repro.kernels.matmul."""
        from repro.kernels.matmul import matmul_kernel

        parsed = compile_c(FIG1, n=200, name="matmul_n200_u1")
        hand = matmul_kernel(200, 1)
        assert parsed.asm_text() == hand.asm_text()

    def test_unroll_hint(self):
        kernel = compile_c(FIG1, n=200, unroll=4)
        from repro.machine.kernel_model import analyze_kernel

        _, body = kernel.program.kernel_loop()
        assert analyze_kernel(body).elements_per_iteration == 4

    def test_openmp_metadata(self):
        source = SAXPY.replace("for (i", "#pragma omp parallel for\n    for (i")
        kernel = compile_c(source, n=1024)
        assert kernel.metadata["openmp"] is True

    def test_float_arithmetic_stays_single_precision(self):
        kernel = compile_c(SAXPY, n=1024)
        opcodes = {i.opcode for i in kernel.program.instructions()}
        assert "mulss" in opcodes and "addss" in opcodes
        assert "mulsd" not in opcodes


class TestLauncherIntegration:
    def test_c_text_through_launcher(self, launcher, fast_options):
        m = launcher.run(FIG1, fast_options)
        assert m.cycles_per_iteration > 0
        assert m.kernel_name.startswith("multiplySingle")

    def test_c_file_through_launcher(self, launcher, fast_options, tmp_path):
        path = tmp_path / "kernel.c"
        path.write_text(FIG1)
        m = launcher.run(path, fast_options)
        assert m.cycles_per_iteration > 0

    def test_c_file_through_cli(self, tmp_path, capsys):
        from repro.cli.launcher_cli import main

        path = tmp_path / "kernel.c"
        path.write_text(FIG1)
        assert main([str(path), "--trip", "200"]) == 0
        assert "cycles/iteration" in capsys.readouterr().out

    def test_parse_error_surfaces_as_input_error(self, launcher, fast_options):
        from repro.launcher import KernelInputError

        with pytest.raises(KernelInputError, match="cannot compile C"):
            launcher.run("void broken(int n) { }", fast_options)
