"""Plugin-system tests (paper section 3.3)."""

import types

import pytest

from repro.creator import MicroCreator, PluginError
from repro.creator.pass_manager import Pass, default_pass_pipeline
from repro.creator.plugins import load_plugin, load_plugin_file
from repro.spec.builders import load_kernel


def module_with(init) -> types.ModuleType:
    mod = types.ModuleType("test_plugin")
    mod.pluginInit = init
    return mod


class TestLoadPlugin:
    def test_plugin_init_receives_pass_manager(self):
        seen = {}
        pm = default_pass_pipeline()
        load_plugin(module_with(lambda p: seen.setdefault("pm", p)), pm)
        assert seen["pm"] is pm

    def test_missing_init_rejected(self):
        with pytest.raises(PluginError, match="pluginInit"):
            load_plugin(types.ModuleType("empty"), default_pass_pipeline())

    def test_failing_init_wrapped(self):
        def boom(pm):
            raise RuntimeError("nope")

        with pytest.raises(PluginError, match="failed"):
            load_plugin(module_with(boom), default_pass_pipeline())


class TestPluginEffects:
    def test_plugin_can_add_a_pass(self):
        class CountingPass(Pass):
            name = "counting"
            seen = 0

            def run(self, variants, ctx):
                CountingPass.seen = len(variants)
                return list(variants)

        def init(pm):
            pm.insert_pass_before("code_generation", CountingPass())

        creator = MicroCreator(plugins=[module_with(init)])
        creator.generate(load_kernel("movaps"))
        assert CountingPass.seen == 8

    def test_plugin_can_disable_a_pass_via_gate(self):
        """Re-gating unrolling off yields one variant per unroll factor
        whose body was never replicated."""

        def init(pm):
            pm.set_gate("operand_swap_after", lambda ctx: False)

        creator = MicroCreator(plugins=[module_with(init)])
        kernels = creator.generate(load_kernel("movaps", swap_after_unroll=True))
        # Without the swap pass the 510-variant family collapses to 8.
        assert len(kernels) == 8

    def test_plugin_can_replace_a_pass(self):
        from repro.creator.passes.finalize import PeepholePass

        class RecordingPeephole(PeepholePass):
            ran = False

            def run(self, variants, ctx):
                RecordingPeephole.ran = True
                return super().run(variants, ctx)

        def init(pm):
            pm.replace_pass("peephole", RecordingPeephole())

        creator = MicroCreator(plugins=[module_with(init)])
        creator.generate(load_kernel("movaps", unroll=(1, 1)))
        assert RecordingPeephole.ran


class TestPluginFiles:
    PLUGIN_SOURCE = '''
"""A file-based MicroCreator plugin."""

from repro.creator.pass_manager import Pass


class StampPass(Pass):
    name = "stamp"

    def run(self, variants, ctx):
        return [v.noting(stamped=True) for v in variants]


def pluginInit(pm):
    pm.insert_pass_before("code_generation", StampPass())
'''

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "stamp_plugin.py"
        path.write_text(self.PLUGIN_SOURCE)
        creator = MicroCreator(plugins=[path])
        kernels = creator.generate(load_kernel("movaps", unroll=(1, 1)))
        assert kernels[0].metadata.get("stamped") is True

    def test_missing_file(self, tmp_path):
        with pytest.raises(PluginError, match="not found"):
            load_plugin_file(tmp_path / "ghost.py", default_pass_pipeline())

    def test_broken_file(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("this is not python ][")
        with pytest.raises(PluginError, match="failed to import"):
            load_plugin_file(path, default_pass_pipeline())
