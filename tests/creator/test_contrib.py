"""Contrib-pass tests (the plugin standard library)."""

import pytest

from repro.creator import MicroCreator
from repro.creator.contrib import SoftwarePrefetchPass, software_prefetch_plugin
from repro.kernels import strided_kernel
from repro.spec import load_kernel


def generate_hinted(spec, distance=8):
    creator = MicroCreator(plugins=[software_prefetch_plugin(distance=distance)])
    return creator.generate(spec)


class TestSoftwarePrefetchPass:
    def test_hint_inserted_per_pointer_stream(self):
        kernels = generate_hinted(load_kernel("movaps", unroll=(2, 2)))
        opcodes = [i.opcode for i in kernels[0].program.instructions()]
        assert opcodes.count("prefetcht0") == 1

    def test_hint_targets_distance_iterations_ahead(self):
        kernels = generate_hinted(load_kernel("movaps", unroll=(2, 2)), distance=4)
        hint = next(
            i for i in kernels[0].program.instructions()
            if i.opcode == "prefetcht0"
        )
        # Loop step is 32 bytes (2 x 16); 4 iterations ahead = 128.
        assert hint.operands[0].offset == 128

    def test_hint_lands_before_induction_updates(self):
        kernels = generate_hinted(load_kernel("movaps", unroll=(3, 3)))
        opcodes = [i.opcode for i in kernels[0].program.instructions()]
        assert opcodes.index("prefetcht0") < opcodes.index("add")

    def test_metadata_recorded(self):
        kernels = generate_hinted(load_kernel("movaps", unroll=(1, 1)), distance=6)
        assert kernels[0].metadata["sw_prefetch"] == 6

    def test_multi_stream_kernels_get_one_hint_each(self, creator):
        from repro.kernels import multi_array_traversal

        spec = multi_array_traversal(3, "movss", unroll=(1, 1))
        kernels = generate_hinted(spec)
        opcodes = [i.opcode for i in kernels[0].program.instructions()]
        assert opcodes.count("prefetcht0") == 3

    def test_prefetches_do_not_count_as_loads(self):
        kernels = generate_hinted(load_kernel("movaps", unroll=(2, 2)))
        assert kernels[0].n_loads == 2

    def test_bad_distance_rejected(self):
        with pytest.raises(ValueError, match="distance"):
            SoftwarePrefetchPass(distance=0)


class TestEffect:
    def test_wide_stride_recovery(self, launcher, nehalem):
        from repro.launcher import LauncherOptions
        from repro.machine import MemLevel

        spec = strided_kernel("movsd", strides=(128,), unroll=(1, 1))
        plain = MicroCreator().generate(spec)[0]
        hinted = generate_hinted(spec)[0]
        options = LauncherOptions(
            array_bytes=nehalem.footprint_for(MemLevel.RAM),
            trip_count=1 << 14,
            experiments=3,
            repetitions=4,
        )
        plain_c = launcher.run(plain, options).cycles_per_iteration
        hinted_c = launcher.run(hinted, options).cycles_per_iteration
        assert hinted_c < 0.6 * plain_c

    def test_no_effect_on_dense_streams(self, launcher, nehalem):
        """Unit-stride kernels are hardware-prefetched already: the hint
        adds a load-port slot and buys nothing."""
        from repro.launcher import LauncherOptions
        from repro.machine import MemLevel

        spec = load_kernel("movaps", unroll=(8, 8))
        plain = MicroCreator().generate(spec)[0]
        hinted = generate_hinted(spec)[0]
        options = LauncherOptions(
            array_bytes=nehalem.footprint_for(MemLevel.RAM),
            trip_count=1 << 14,
            experiments=3,
            repetitions=4,
        )
        plain_c = launcher.run(plain, options).cycles_per_iteration
        hinted_c = launcher.run(hinted, options).cycles_per_iteration
        assert hinted_c >= plain_c * 0.99
