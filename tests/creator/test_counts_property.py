"""Property-based tests on MicroCreator's variant algebra.

The pipeline's expansion factors compose multiplicatively and
predictably; these properties pin the algebra down over the whole input
space rather than at hand-picked points.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.creator import MicroCreator
from repro.spec.builders import KernelBuilder
from repro.spec.schema import ImmediateSpec, InstructionSpec, RegisterRef


def family(ops, unroll_lo, unroll_hi, swap_after, strides):
    builder = KernelBuilder("prop")
    builder.load(*ops, base="r1", swap_after_unroll=swap_after)
    builder.unroll(unroll_lo, unroll_hi)
    builder.pointer_induction("r1", step=16, stride_choices=strides)
    builder.counter_induction("r0", linked_to="r1")
    builder.iteration_counter("%eax")
    builder.branch()
    return builder.build()


ops_strategy = st.lists(
    st.sampled_from(["movss", "movsd", "movaps", "movapd"]),
    min_size=1,
    max_size=4,
    unique=True,
).map(tuple)

unroll_strategy = st.tuples(st.integers(1, 3), st.integers(0, 4)).map(
    lambda t: (t[0], t[0] + t[1])
)

strides_strategy = st.lists(
    st.integers(1, 8), min_size=0, max_size=3, unique=True
).map(tuple)


@given(ops=ops_strategy, unroll=unroll_strategy, strides=strides_strategy)
@settings(max_examples=40, deadline=None)
def test_variant_count_formula(ops, unroll, strides):
    """count = |ops| * |strides or 1| * sum over unroll range of
    (2^u if swap_after else 1)."""
    lo, hi = unroll
    spec = family(ops, lo, hi, swap_after=True, strides=strides)
    kernels = MicroCreator().generate(spec)
    expected = len(ops) * max(1, len(strides)) * sum(2**u for u in range(lo, hi + 1))
    assert len(kernels) == expected


@given(ops=ops_strategy, unroll=unroll_strategy)
@settings(max_examples=30, deadline=None)
def test_no_swap_is_linear_in_unroll(ops, unroll):
    lo, hi = unroll
    spec = family(ops, lo, hi, swap_after=False, strides=())
    kernels = MicroCreator().generate(spec)
    assert len(kernels) == len(ops) * (hi - lo + 1)


@given(unroll=unroll_strategy)
@settings(max_examples=20, deadline=None)
def test_every_variant_has_consistent_metadata(unroll):
    lo, hi = unroll
    spec = family(("movaps",), lo, hi, swap_after=True, strides=())
    for k in MicroCreator().generate(spec):
        assert lo <= k.unroll <= hi
        assert len(k.mix) == k.unroll
        assert k.n_loads + k.n_stores == k.unroll
        # Fig. 8 invariant: pointer step = 16 bytes * unroll.
        add = next(
            i
            for i in k.program.instructions()
            if i.opcode == "add" and str(i.operands[1].reg) == "%rsi"
        )
        assert add.operands[0].value == 16 * k.unroll


@given(values=st.lists(st.integers(1, 100), min_size=1, max_size=5, unique=True))
@settings(max_examples=25, deadline=None)
def test_immediate_expansion_count(values):
    spec = (
        KernelBuilder("imm")
        .instruction(
            InstructionSpec(
                operations=("add",),
                operands=(ImmediateSpec(tuple(values)), RegisterRef("r1")),
            )
        )
        .pointer_induction("r1", step=8)
        .counter_induction("r0", linked_to="r1")
        .branch()
        .build()
    )
    kernels = MicroCreator().generate(spec)
    assert len(kernels) == len(values)
