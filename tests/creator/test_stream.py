"""Streaming-pipeline tests: laziness and run()/stream() equivalence."""

from repro.creator import CreatorOptions, MicroCreator
from repro.creator.pass_manager import (
    CreatorContext,
    Pass,
    default_pass_pipeline,
)
from repro.kernels import loadstore_family
from repro.spec.builders import load_kernel


class CountingPass(Pass):
    """Streamable pass-through that counts how many variants reached it."""

    name = "counting"
    streamable = True

    def __init__(self):
        self.seen = 0

    def run(self, variants, ctx):
        self.seen += len(variants)
        return list(variants)


class TestLaziness:
    def test_first_variant_before_full_expansion(self):
        """stream() is incremental: consuming one variant must not force
        the whole 510-variant family through the tail of the pipeline."""
        counter = CountingPass()
        pm = default_pass_pipeline()
        pm.insert_pass_before("code_generation", counter)
        ctx = CreatorContext(spec=loadstore_family("movaps"))
        stream = pm.stream(ctx)
        first = next(stream)
        assert first.program is not None
        total = 1 + sum(1 for _ in stream)
        assert counter.seen == total  # sanity: every variant passed through
        # Now re-run, consuming only the first variant.
        counter2 = CountingPass()
        pm2 = default_pass_pipeline()
        pm2.insert_pass_before("code_generation", counter2)
        next(pm2.stream(CreatorContext(spec=loadstore_family("movaps"))))
        assert counter2.seen < total
        assert counter2.seen <= 2  # the tail saw at most a couple of variants

    def test_generator_stream_is_lazy_too(self):
        creator = MicroCreator()
        stream = creator.stream(loadstore_family("movaps"))
        first = next(stream)
        assert first.variant_id == 0
        assert first.program is not None


class TestEquivalence:
    def test_run_equals_stream(self):
        ctx = CreatorContext(spec=loadstore_family("movaps"))
        eager = default_pass_pipeline().run(ctx)
        lazy = list(default_pass_pipeline().stream(ctx))
        assert len(eager) == len(lazy)
        assert [v.metadata for v in eager] == [v.metadata for v in lazy]

    def test_generate_equals_stream(self):
        spec = loadstore_family("movaps")
        eager = MicroCreator().generate(spec)
        lazy = list(MicroCreator().stream(spec))
        assert [k.name for k in eager] == [k.name for k in lazy]
        assert [k.asm_text() for k in eager] == [k.asm_text() for k in lazy]

    def test_equivalence_under_benchmark_limit(self):
        """The limit forces per-stage materialization; results must still
        match the eager pipeline exactly."""
        spec = loadstore_family("movaps")
        options = CreatorOptions(max_benchmarks=40)
        eager = MicroCreator(options).generate(spec)
        lazy = list(MicroCreator(options).stream(spec))
        assert len(eager) == len(lazy) <= 40
        assert [k.asm_text() for k in eager] == [k.asm_text() for k in lazy]

    def test_equivalence_with_random_selection(self):
        """random_selection is a whole-list pass: stream() must produce
        the same sample as run() (same RNG, same input order)."""
        spec = loadstore_family("movaps")
        options = CreatorOptions(random_selection=5, seed=42)
        eager = MicroCreator(options).generate(spec)
        lazy = list(MicroCreator(options).stream(spec))
        assert [k.asm_text() for k in eager] == [k.asm_text() for k in lazy]

    def test_dedup_spans_stream(self):
        """Code generation dedups across the whole stream, not per variant."""
        creator = MicroCreator()
        texts = [k.asm_text() for k in creator.stream(load_kernel("movaps"))]
        assert len(texts) == len(set(texts))
